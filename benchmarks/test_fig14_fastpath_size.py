"""Figure 14: impact of the fast-path size (4/8/16/32 KB).

Paper shape: throughput varies by under ~5% across sizes (a bigger
table scans longer per kick-out but kicks out less often); accuracy
jumps from 4 KB to 8 KB (Deltoid HH recall 65% -> 97%) and then
plateaus.
"""

from __future__ import annotations

import pytest

from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.heavy_hitter import HeavyHitterTask

SIZES = [4096, 8192, 16384, 32768]


@pytest.fixture(scope="module")
def size_sweep(paper_scale_trace, paper_scale_truth):
    threshold = 0.003 * paper_scale_truth.total_bytes
    rows = {}
    for size in SIZES:
        config = PipelineConfig(fastpath_bytes=size)
        hh = SketchVisorPipeline(
            HeavyHitterTask("deltoid", threshold=threshold),
            config=config,
        ).run_epoch(paper_scale_trace, paper_scale_truth)
        card = SketchVisorPipeline(
            CardinalityTask("lc"), config=config
        ).run_epoch(paper_scale_trace, paper_scale_truth)
        rows[size] = (
            hh.throughput_gbps,
            hh.score.recall,
            hh.score.precision,
            card.score.relative_error,
        )
    return rows


def test_fig14_table(result_table, size_sweep):
    table = result_table(
        "fig14_fastpath_size",
        "Figure 14: fast-path size sweep (Deltoid HH + LC cardinality)",
    )
    table.row(
        f"{'size':>7} {'tput Gbps':>10} {'HH recall':>10} "
        f"{'HH prec':>9} {'card err':>9}"
    )
    for size, (tput, recall, precision, card) in size_sweep.items():
        table.row(
            f"{size // 1024:>5}KB {tput:>10.1f} {recall:>9.1%} "
            f"{precision:>8.1%} {card:>8.1%}"
        )


def test_fig14_throughput_insensitive(size_sweep):
    """Throughput varies modestly across fast-path sizes (paper: <5%;
    here within ~2x — the two effects, longer kick-out scans vs fewer
    kick-outs, cancel only partially at our smaller trace scale)."""
    rates = [row[0] for row in size_sweep.values()]
    assert max(rates) / min(rates) < 2.0

def test_fig14_accuracy_plateaus_at_8kb(size_sweep):
    recall_8k = size_sweep[8192][1]
    recall_32k = size_sweep[32768][1]
    assert recall_8k >= 0.9
    assert abs(recall_32k - recall_8k) < 0.1


def test_fig14_accuracy_not_worse_with_more_memory(size_sweep):
    assert size_sweep[32768][1] >= size_sweep[4096][1] - 0.05


def test_fig14_cardinality_band(size_sweep):
    """Cardinality error stays in a moderate band across sizes.

    The paper's Figure 14(b) is nearly flat; our count-anchored
    recovery keeps errors bounded but drifts somewhat at the extremes
    (see EXPERIMENTS.md)."""
    for size, row in size_sweep.items():
        assert row[3] < 0.45, (size, row)


def test_fig14_timing(benchmark, bench_trace, bench_truth):
    threshold = 0.005 * bench_truth.total_bytes
    task = HeavyHitterTask("deltoid", threshold=threshold)

    def run():
        return SketchVisorPipeline(
            task, config=PipelineConfig(fastpath_bytes=16384)
        ).run_epoch(bench_trace, bench_truth)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.recall > 0.8
