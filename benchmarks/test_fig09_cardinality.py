"""Figure 9: cardinality estimation error across recovery arms.

Paper shape: NR/LR/UR roughly double Ideal's error for FM and kMin
(~17% for LC) because the fast path's flows leave counters at zero;
SketchVisor restores the non-zero counters and lands near Ideal.
"""

from __future__ import annotations

import pytest

from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import SketchVisorPipeline
from repro.tasks.cardinality import CardinalityTask

SOLUTIONS = ["fm", "kmin", "lc"]

ARMS: list[tuple[str, DataPlaneMode, RecoveryMode]] = [
    ("NR", DataPlaneMode.SKETCHVISOR, RecoveryMode.NO_RECOVERY),
    ("LR", DataPlaneMode.SKETCHVISOR, RecoveryMode.LOWER),
    ("UR", DataPlaneMode.SKETCHVISOR, RecoveryMode.UPPER),
    ("SketchVisor", DataPlaneMode.SKETCHVISOR, RecoveryMode.SKETCHVISOR),
    ("Ideal", DataPlaneMode.IDEAL, RecoveryMode.NO_RECOVERY),
]


@pytest.fixture(scope="module")
def cardinality_errors(bench_trace, bench_truth):
    errors = {}
    for solution in SOLUTIONS:
        task = CardinalityTask(solution)
        for arm, dataplane, recovery in ARMS:
            pipeline = SketchVisorPipeline(
                task, dataplane=dataplane, recovery=recovery
            )
            result = pipeline.run_epoch(bench_trace, bench_truth)
            errors[(solution, arm)] = result.score.relative_error
    return errors


def test_fig09_table(result_table, cardinality_errors, bench_truth):
    table = result_table(
        "fig09_cardinality",
        f"Figure 9: cardinality relative error "
        f"(true = {bench_truth.cardinality} flows)",
    )
    table.row(
        f"{'solution':<8}"
        + "".join(f"{arm:>13}" for arm, _d, _r in ARMS)
    )
    for solution in SOLUTIONS:
        table.row(
            f"{solution:<8}"
            + "".join(
                f"{cardinality_errors[(solution, arm)]:>12.1%} "
                for arm, _d, _r in ARMS
            )
        )


@pytest.mark.parametrize("solution", SOLUTIONS)
def test_fig09_shape(cardinality_errors, solution):
    nr = cardinality_errors[(solution, "NR")]
    sketchvisor = cardinality_errors[(solution, "SketchVisor")]
    ideal = cardinality_errors[(solution, "Ideal")]
    # Recovery beats discarding, and lands in Ideal's neighborhood.
    assert sketchvisor <= nr
    assert sketchvisor <= max(2.5 * ideal, 0.25)


def test_fig09_nr_misses_flows(cardinality_errors):
    """Dropping fast-path flows must underestimate substantially for
    at least the zero-counting estimators."""
    assert cardinality_errors[("lc", "NR")] > 0.2


def test_fig09_timing(benchmark, bench_trace, bench_truth):
    task = CardinalityTask("lc")

    def run():
        return SketchVisorPipeline(task).run_epoch(
            bench_trace, bench_truth
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.relative_error < 0.5
