"""Ablations of the recovery design (DESIGN.md).

What does each ingredient of the network-wide recovery buy?

* **box constraints (Eq. 3)** — drop the Lemma 4.1 bounds and the
  per-flow estimates lose their anchor;
* **volume constraint (Eq. 2)** — determines the small-flow mass;
* **sparse y realization** — synthetic-flow injection vs nothing
  (cardinality collapses without it);
* **count anchoring** — the insert/evict-counter extension vs the
  mass-only Pareto estimate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.controlplane.lens import LensConfig, lens_interpolate
from repro.controlplane.recovery import (
    RecoveryMode,
    _inject_synthetic_small_flows,
    _tracking_boundary,
    recover,
)
from repro.dataplane.host import Host
from repro.metrics import recall
from repro.sketches.cardinality import LinearCounting
from repro.sketches.deltoid import Deltoid


@pytest.fixture(scope="module")
def deltoid_report(bench_trace):
    host = Host(0, Deltoid(width=512, depth=4, seed=9), fastpath_bytes=8192)
    return host.run_epoch(bench_trace), bench_trace


@pytest.fixture(scope="module")
def lc_report(bench_trace):
    host = Host(0, LinearCounting(seed=9), fastpath_bytes=8192)
    return host.run_epoch(bench_trace), bench_trace


def test_ablation_box_constraints(result_table, deltoid_report):
    """Without Eq. 3 the solver has no per-flow anchor: estimates for
    tracked flows drift far from truth."""
    report, trace = deltoid_report
    truth = trace.flow_sizes()
    snapshot = report.fastpath
    flows = list(snapshot.entries)
    positions = [report.sketch.matrix_positions(f) for f in flows]
    tight_lower = np.array(
        [snapshot.entries[f].lower_bound for f in flows]
    )
    tight_upper = np.array(
        [snapshot.entries[f].upper_bound for f in flows]
    )
    loose_lower = np.zeros(len(flows))
    loose_upper = np.full(len(flows), snapshot.total_bytes)

    config = LensConfig(max_iterations=15)
    table = result_table(
        "ablation_box",
        "Ablation: Eq. 3 box constraints on tracked-flow estimates",
    )
    table.row(f"{'constraints':<10} {'mean rel. estimate error':>25}")
    errors = {}
    for label, lower, upper in (
        ("tight", tight_lower, tight_upper),
        ("loose", loose_lower, loose_upper),
    ):
        result = lens_interpolate(
            report.sketch.to_matrix(),
            positions,
            lower,
            upper,
            snapshot.total_bytes,
            low_rank=True,
            config=config,
        )
        # Score the top-50 tracked flows — small tracked flows carry
        # Lemma 4.1 slack comparable to their size by construction.
        ranked = sorted(
            zip(flows, result.x, tight_lower),
            key=lambda item: item[2],
            reverse=True,
        )[:50]
        per_flow = [
            abs(estimate - truth.get(flow, 0.0))
            / max(truth.get(flow, 1.0), 1.0)
            for flow, estimate, _low in ranked
        ]
        errors[label] = float(np.mean(per_flow))
        table.row(f"{label:<10} {errors[label]:>25.2%}")
    assert errors["tight"] < errors["loose"]
    assert errors["tight"] < 0.2


def test_ablation_sparse_y(result_table, lc_report):
    """Cardinality with vs without the synthetic small-flow component."""
    report, trace = lc_report
    true_cardinality = len(trace.flows())
    snapshot = report.fastpath

    with_y = recover(report.sketch, snapshot, RecoveryMode.SKETCHVISOR)
    # Without y: inject tracked flows only (the LR arm).
    without_y = recover(report.sketch, snapshot, RecoveryMode.LOWER)

    table = result_table(
        "ablation_sparse_y",
        f"Ablation: small-flow realization "
        f"(true cardinality {true_cardinality})",
    )
    rows = {
        "with synthetic y": with_y.sketch.estimate(),
        "without y (LR)": without_y.sketch.estimate(),
        "NR": report.sketch.estimate(),
    }
    table.row(f"{'variant':<18} {'estimate':>9} {'rel.err':>9}")
    errs = {}
    for label, estimate in rows.items():
        errs[label] = abs(estimate - true_cardinality) / true_cardinality
        table.row(f"{label:<18} {estimate:>9.0f} {errs[label]:>8.1%}")
    assert errs["with synthetic y"] < errs["without y (LR)"]
    assert errs["with synthetic y"] < errs["NR"]


def test_ablation_count_anchor(result_table, lc_report):
    """Count-anchored injection (insert/evict counters) vs the
    mass-anchored Pareto estimate."""
    report, trace = lc_report
    true_cardinality = len(trace.flows())
    snapshot = report.fastpath
    boundary = _tracking_boundary(snapshot)
    remaining = max(
        0.0,
        snapshot.total_bytes
        - sum(e.estimate for e in snapshot.entries.values()),
    )

    def rebuild(count):
        sketch = report.sketch.clone_empty()
        sketch.merge(report.sketch)
        for flow, entry in snapshot.entries.items():
            sketch.inject(flow, int(round(entry.estimate)))
        _inject_synthetic_small_flows(
            sketch, remaining, boundary, count=count
        )
        return sketch.estimate()

    from repro.controlplane.recovery import _missing_flow_count

    anchored = rebuild(_missing_flow_count(snapshot))
    mass_only = rebuild(None)
    table = result_table(
        "ablation_count_anchor",
        f"Ablation: count anchoring (true cardinality "
        f"{true_cardinality})",
    )
    table.row(f"{'variant':<14} {'estimate':>9} {'rel.err':>9}")
    for label, estimate in (
        ("count-anchored", anchored),
        ("mass-only", mass_only),
    ):
        error = abs(estimate - true_cardinality) / true_cardinality
        table.row(f"{label:<14} {estimate:>9.0f} {error:>8.1%}")
    anchored_error = abs(anchored - true_cardinality) / true_cardinality
    assert anchored_error < 0.25


def test_ablation_timing(benchmark, deltoid_report):
    report, _trace = deltoid_report

    def run():
        return recover(
            report.sketch,
            report.fastpath,
            RecoveryMode.SKETCHVISOR,
            lens_config=LensConfig(max_iterations=10),
        )

    state = benchmark.pedantic(run, rounds=1, iterations=1)
    assert state.flow_estimates
