"""Figure 13: percentage of flows and bytes handled by the fast path.

Paper shape: with everything saturating, the fast path sees a large
share of flows and >50% of bytes for most solutions — but a *small*
share for MRAC, which is cheap enough to keep up.  The 8 KB fast path
table itself only ever *tracks* a fraction of a percent of flows while
covering >20% of bytes (traffic skew).
"""

from __future__ import annotations

import pytest

from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.topk import FastPath
from repro.sketches.cardinality import FMSketch, KMinSketch, LinearCounting
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch
from repro.sketches.univmon import UnivMon

SOLUTIONS = {
    "deltoid": lambda: Deltoid(width=1024, depth=4),
    "univmon": lambda: UnivMon(
        level_widths=(2048, 1024, 512, 256), heap_size=200
    ),
    "twolevel": lambda: TwoLevelSketch(),
    "revsketch": lambda: ReversibleSketch(depth=6),
    "flowradar": lambda: FlowRadar(bloom_bits=60_000, num_cells=24_000),
    "fm": lambda: FMSketch(),
    "kmin": lambda: KMinSketch(),
    "lc": lambda: LinearCounting(),
    "mrac": lambda: MRAC(),
}


@pytest.fixture(scope="module")
def share_matrix(bench_trace):
    model = CostModel.in_memory()
    shares = {}
    for name, build in SOLUTIONS.items():
        fastpath = FastPath(8192)
        switch = SoftwareSwitch(
            build(), fastpath=fastpath, cost_model=model
        )
        report = switch.process(bench_trace)
        tracked_bytes = sum(
            entry.lower_bound for entry in fastpath.table.values()
        )
        shares[name] = (
            report.fastpath_flow_fraction,
            report.fastpath_byte_fraction,
            len(fastpath.table) / max(len(report.normal_flows
                                          | report.fastpath_flows), 1),
            tracked_bytes / max(report.total_bytes, 1),
        )
    return shares


def test_fig13_table(result_table, share_matrix):
    table = result_table(
        "fig13_fastpath_share",
        "Figure 13: traffic share of the fast path (in-memory tester)",
    )
    table.row(
        f"{'solution':<10} {'flows%':>8} {'bytes%':>8} "
        f"{'tracked flows%':>15} {'tracked bytes%':>15}"
    )
    for name, (flows, bytes_, tracked_f, tracked_b) in (
        share_matrix.items()
    ):
        table.row(
            f"{name:<10} {flows:>7.0%} {bytes_:>7.0%} "
            f"{tracked_f:>14.2%} {tracked_b:>14.0%}"
        )


def test_fig13_heavy_sketches_divert_most_bytes(share_matrix):
    for name in ("deltoid", "univmon", "twolevel", "revsketch"):
        assert share_matrix[name][1] > 0.5


def test_fig13_mrac_negligible(share_matrix):
    assert share_matrix["mrac"][1] < max(
        0.5, share_matrix["deltoid"][1] - 0.3
    )


def test_fig13_tiny_table_covers_disproportionate_bytes(share_matrix):
    """~200-entry table tracks few % of flows but a big byte share."""
    flows_tracked = share_matrix["deltoid"][2]
    bytes_tracked = share_matrix["deltoid"][3]
    assert flows_tracked < 0.15
    assert bytes_tracked > 2 * flows_tracked


def test_fig13_top_tracked_flows_dominate(bench_trace):
    """§7.5 text: 'the top 10% of flows tracked by the fast path
    account for over 90% of byte counts' — skew inside the table."""
    fastpath = FastPath(8192)
    switch = SoftwareSwitch(
        Deltoid(width=1024, depth=4),
        fastpath=fastpath,
        cost_model=CostModel.in_memory(),
    )
    switch.process(bench_trace)
    tracked = sorted(
        (entry.lower_bound for entry in fastpath.table.values()),
        reverse=True,
    )
    assert tracked, "fast path tracked nothing"
    top = max(1, len(tracked) // 10)
    share = sum(tracked[:top]) / max(sum(tracked), 1.0)
    assert share > 0.5  # paper: >0.9 on CAIDA's deeper heavy tail


def test_fig13_timing(benchmark, bench_trace):
    model = CostModel.in_memory()

    def run():
        switch = SoftwareSwitch(
            UnivMon(level_widths=(1024, 512, 256), heap_size=100),
            fastpath=FastPath(8192),
            cost_model=model,
        )
        return switch.process(bench_trace)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.total_packets == len(bench_trace)
