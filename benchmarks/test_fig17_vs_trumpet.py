"""Figure 17: SketchVisor vs Trumpet (hash-table per-flow monitoring).

Paper shape: throughput is comparable (Trumpet's per-packet work is a
hash plus a short chain walk), but Trumpet's memory grows with the flow
count and far exceeds every sketch except Deltoid.
"""

from __future__ import annotations

import pytest

from repro.baselines.trumpet import TrumpetMonitor
from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.topk import FastPath
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.univmon import UnivMon

SKETCHES = {
    "flowradar": lambda: FlowRadar(bloom_bits=60_000, num_cells=24_000),
    "revsketch": lambda: ReversibleSketch(depth=6),
    "univmon": lambda: UnivMon(
        level_widths=(2048, 1024, 512, 256), heap_size=200
    ),
    "deltoid": lambda: Deltoid(width=1024, depth=4),
}


@pytest.fixture(scope="module")
def comparison(bench_trace):
    model = CostModel.in_memory()
    rows = {}
    for name, build in SKETCHES.items():
        sketch = build()
        switch = SoftwareSwitch(
            sketch, fastpath=FastPath(8192), cost_model=model
        )
        report = switch.process(bench_trace)
        rows[name] = (report.throughput_gbps, sketch.memory_bytes())
    flows = len(bench_trace.flows())
    for factor in (3, 7):
        monitor = TrumpetMonitor(
            expected_flows=flows, overprovision=factor
        )
        switch = SoftwareSwitch(monitor, fastpath=None, cost_model=model)
        report = switch.process(bench_trace)
        rows[f"trumpet{factor}x"] = (
            report.throughput_gbps,
            monitor.memory_bytes(),
        )
    return rows


def test_fig17_table(result_table, comparison, bench_trace):
    flows = len(bench_trace.flows())
    table = result_table(
        "fig17_vs_trumpet",
        f"Figure 17: throughput and memory vs Trumpet "
        f"({flows} flows this epoch)",
    )
    table.row(f"{'system':<12} {'tput Gbps':>10} {'memory KB':>10}")
    for name, (tput, memory) in comparison.items():
        table.row(f"{name:<12} {tput:>10.1f} {memory / 1024:>10.0f}")


def test_fig17_throughput_comparable(comparison):
    """Trumpet's throughput is in the same band as SketchVisor's."""
    sketch_rates = [
        comparison[name][0] for name in SKETCHES
    ]
    trumpet_rate = comparison["trumpet3x"][0]
    assert trumpet_rate > 0.3 * min(sketch_rates)


def test_fig17_memory_contrast(comparison, result_table):
    """Figure 17(b)'s point is the *scaling*: sketch memory is fixed
    while Trumpet's grows with the flow count.  At the paper's scale
    (30-70k flows per host-epoch), Trumpet dwarfs every sketch except
    Deltoid; we compute Trumpet's footprint analytically at 50k flows
    (bucket array + one chained entry per flow)."""
    trumpet3x = comparison["trumpet3x"][1]
    trumpet7x = comparison["trumpet7x"][1]
    assert trumpet7x > trumpet3x

    flows_paper_scale = 50_000
    paper_monitor = TrumpetMonitor(
        expected_flows=flows_paper_scale, overprovision=3
    )
    from tests.conftest import make_flow

    # Account per-flow entries without replaying 50k packets: memory
    # is bucket pointers + live entries.
    paper_trumpet_bytes = (
        paper_monitor.num_buckets * 8 + flows_paper_scale * 32
    )
    table = result_table(
        "fig17b_paper_scale_memory",
        "Figure 17(b) at paper scale (50k flows): memory (KB)",
    )
    table.row(f"{'trumpet3x':<12} {paper_trumpet_bytes / 1024:>8.0f}")
    for name in SKETCHES:
        table.row(
            f"{name:<12} {comparison[name][1] / 1024:>8.0f}"
        )
        if name != "deltoid":
            assert paper_trumpet_bytes > comparison[name][1]
    # Deltoid is the paper's exception: its header counters are huge.
    assert comparison["deltoid"][1] > comparison["revsketch"][1]


def test_fig17_trumpet_is_exact(bench_trace):
    monitor = TrumpetMonitor(
        expected_flows=len(bench_trace.flows()), overprovision=3
    )
    for packet in bench_trace:
        monitor.update(packet.flow, packet.size)
    truth = bench_trace.flow_sizes()
    threshold = 0.005 * bench_trace.total_bytes
    found = monitor.heavy_hitters(threshold)
    expected = {f for f, s in truth.items() if s > threshold}
    assert set(found) == expected


def test_fig17_timing(benchmark, bench_trace):
    flows = len(bench_trace.flows())

    def run():
        monitor = TrumpetMonitor(expected_flows=flows, overprovision=3)
        for packet in bench_trace:
            monitor.update(packet.flow, packet.size)
        return monitor

    monitor = benchmark.pedantic(run, rounds=1, iterations=1)
    assert monitor.memory_bytes() > 0
