"""Table 1: the task x solution support matrix, exercised end to end.

Every (measurement task, sketch-based solution) pair from Table 1 runs
through the full SketchVisor pipeline on the same epoch; the benchmark
records the support matrix plus a per-pair headline accuracy number.
"""

from __future__ import annotations

import pytest

from repro.framework.pipeline import SketchVisorPipeline
from repro.framework.registry import TASK_REGISTRY, create_task
from repro.traffic.anomalies import (
    inject_ddos_victims,
    inject_heavy_changes,
    inject_superspreaders,
)
from repro.traffic.groundtruth import GroundTruth


def _headline(score):
    if score.recall is not None:
        return f"recall {score.recall:.0%}"
    if score.mrd is not None:
        return f"MRD {score.mrd:.4f}"
    return f"rel.err {score.relative_error:.1%}"


@pytest.fixture(scope="module")
def matrix_results(bench_trace, bench_truth):
    threshold_bytes = 0.005 * bench_truth.total_bytes
    results = {}
    for task_name, (_cls, solutions) in TASK_REGISTRY.items():
        for solution in solutions:
            kwargs = {}
            if task_name in ("heavy_hitter", "heavy_changer"):
                kwargs["threshold"] = threshold_bytes
            if task_name in ("ddos", "superspreader"):
                kwargs["threshold"] = 120
                kwargs["sketch_params"] = {"inner_width": 256}
            task = create_task(task_name, solution, **kwargs)
            pipeline = SketchVisorPipeline(task)
            if task_name == "heavy_changer":
                epoch_a, epoch_b, _ = inject_heavy_changes(
                    bench_trace, bench_trace, 5, 400_000
                )
                task.threshold = 150_000
                result = pipeline.run_epoch_pair(epoch_a, epoch_b)
            elif task_name == "ddos":
                trace, _ = inject_ddos_victims(bench_trace, 2, 300)
                result = pipeline.run_epoch(
                    trace, GroundTruth.from_trace(trace)
                )
            elif task_name == "superspreader":
                trace, _ = inject_superspreaders(bench_trace, 2, 300)
                result = pipeline.run_epoch(
                    trace, GroundTruth.from_trace(trace)
                )
            else:
                result = pipeline.run_epoch(bench_trace, bench_truth)
            results[(task_name, solution)] = result.score
    return results


def test_table1_matrix(result_table, matrix_results):
    table = result_table(
        "table1_matrix",
        "Table 1: measurement tasks x sketch-based solutions "
        "(full pipeline, SketchVisor arm)",
    )
    table.row(f"{'task':<24} {'solution':<12} {'headline':<20}")
    for (task_name, solution), score in matrix_results.items():
        table.row(
            f"{task_name:<24} {solution:<12} {_headline(score):<20}"
        )
    assert len(matrix_results) == 17  # 4+4+1+1+3+2+2 Table 1 pairs


def test_table1_every_pair_functional(matrix_results):
    """Every supported pair produces a sane score, none crash."""
    for (task_name, _solution), score in matrix_results.items():
        if score.recall is not None:
            assert 0.0 <= score.recall <= 1.0
        if score.mrd is not None:
            assert score.mrd >= 0.0


def test_table1_detection_pairs_accurate(matrix_results):
    for (task_name, solution), score in matrix_results.items():
        if task_name in ("heavy_hitter", "ddos", "superspreader"):
            assert score.recall >= 0.8, (task_name, solution)


def test_table1_timing(benchmark, bench_trace, bench_truth):
    task = create_task(
        "heavy_hitter",
        "univmon",
        threshold=0.005 * bench_truth.total_bytes,
    )

    def run():
        return SketchVisorPipeline(task).run_epoch(
            bench_trace, bench_truth
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.recall > 0.8
