"""Figure 15: CPU cycles per packet, all nine solutions + fast path.

Paper numbers: Deltoid 10,454 / UnivMon 4,382 / TwoLevel 4,292 /
RevSketch 3,858 / FlowRadar 2,584 / FM 2,403 / kMin 2,388 / LC 2,276 /
MRAC 404; fast-path update 47; fast-path kick-out 12,332.
"""

from __future__ import annotations

import pytest

from repro.dataplane.cost_model import (
    FASTPATH_UPDATE_CYCLES,
    PAPER_CYCLES_PER_PACKET,
    CostModel,
)
from repro.fastpath.topk import FastPath
from repro.sketches.cardinality import FMSketch, KMinSketch, LinearCounting
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch
from repro.sketches.univmon import UnivMon

PAPER_CONFIGS = {
    "deltoid": lambda: Deltoid(width=4000, depth=4),
    "univmon": lambda: UnivMon(),
    "twolevel": lambda: TwoLevelSketch.paper_config(),
    "revsketch": lambda: ReversibleSketch(
        word_bits=16, num_words=7, subindex_bits=2, depth=4
    ),
    "flowradar": lambda: FlowRadar(),
    "fm": lambda: FMSketch(num_registers=65_536, depth=4),
    "kmin": lambda: KMinSketch(k=65_536, depth=4),
    "lc": lambda: LinearCounting(width=10_000, depth=4),
    "mrac": lambda: MRAC(width=4000),
}


def test_fig15_cycles_table(result_table):
    table = result_table(
        "fig15_cpu_breakdown",
        "Figure 15: CPU cycles per packet (paper configs + fast path)",
    )
    model = CostModel.in_memory()
    table.row(f"{'component':<12} {'cycles':>8} {'paper':>8}")
    for name, build in PAPER_CONFIGS.items():
        cycles = model.sketch_cycles(build())
        table.row(
            f"{name:<12} {cycles:>8.0f} "
            f"{PAPER_CYCLES_PER_PACKET[name]:>8.0f}"
        )
        assert cycles == pytest.approx(
            PAPER_CYCLES_PER_PACKET[name], rel=1e-6
        )
    update = FASTPATH_UPDATE_CYCLES
    kickout = model.fastpath_kickout_cycles(8192)
    table.row(f"{'FP update':<12} {update:>8.0f} {47:>8}")
    table.row(f"{'FP kickout':<12} {kickout:>8.0f} {12332:>8}")
    assert update == 47.0
    assert kickout == pytest.approx(12_332, rel=0.05)


def test_fig15_breakdown_structure(result_table):
    """§2.2's bottleneck breakdown: who spends cycles on what."""
    table = result_table(
        "fig15_op_breakdown",
        "Operation breakdown per packet (op counts from cost profiles)",
    )
    table.row(
        f"{'solution':<12} {'hashes':>8} {'ctr upd':>8} "
        f"{'heap':>6} {'mem':>6}"
    )
    profiles = {
        name: build().cost_profile()
        for name, build in PAPER_CONFIGS.items()
    }
    for name, profile in profiles.items():
        table.row(
            f"{name:<12} {profile.hashes:>8.0f} "
            f"{profile.counter_updates:>8.0f} "
            f"{profile.heap_ops:>6.0f} {profile.memory_words:>6.0f}"
        )
    # Deltoid: counter updates dominate (86% of cycles, §2.2).
    assert (
        profiles["deltoid"].counter_updates
        > 10 * profiles["deltoid"].hashes
    )
    # RevSketch / FlowRadar: hashing dominates (95% / 67%, §2.2).
    assert (
        profiles["revsketch"].hashes
        > 2 * profiles["revsketch"].counter_updates
    )
    # UnivMon splits between hashing and heap maintenance.
    assert profiles["univmon"].heap_ops > 0


def test_fig15_fastpath_update_timing(benchmark):
    """Real wall-clock of the fast-path update (hit path)."""
    from tests.conftest import make_flow

    fastpath = FastPath(8192)
    flows = [make_flow(i) for i in range(100)]
    for flow in flows:
        fastpath.update(flow, 1000)

    def hits():
        for flow in flows:
            fastpath.update(flow, 64)

    benchmark(hits)


def test_fig15_fastpath_kickout_timing(benchmark):
    """Real wall-clock of a forced kick-out pass (O(k) scan)."""
    from tests.conftest import make_flow

    def kickout_round():
        fastpath = FastPath(8192)
        for i in range(fastpath.capacity):
            fastpath.update(make_flow(i), 10_000)
        fastpath.update(make_flow(99_999), 64)  # the O(k) pass
        return fastpath

    fastpath = benchmark.pedantic(kickout_round, rounds=3, iterations=1)
    assert fastpath.num_kickouts >= 1
