#!/usr/bin/env python
"""Bench-regression gate: fresh run vs the committed trajectory.

Compares machine-independent *speedup ratios* (scalar/batch, serial/
parallel) from a fresh benchmark run against the best committed
non-smoke entry in the trajectory file.  Raw packets/sec depends on
the runner's hardware, so only the ratios are gated; a fresh ratio
more than ``--tolerance`` (default 15%) below the committed baseline
fails the build.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --output /tmp/fresh.json
    python benchmarks/check_regression.py /tmp/fresh.json \
        --baseline BENCH_dataplane.json

Exit codes: 0 = within tolerance (or vacuous pass — no comparable
baseline), 1 = regression detected, 2 = usage / malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# (human label, path into a trajectory entry) for each gated ratio.
GATED_RATIOS = (
    ("ideal batch speedup", ("switch", "ideal", "speedup")),
    ("sketchvisor batch speedup", ("switch", "sketchvisor", "speedup")),
    ("multi-host parallel speedup", ("parallel", "speedup")),
)


def _load_runs(path: Path) -> list[dict]:
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    runs = loaded.get("runs") if isinstance(loaded, dict) else None
    if not isinstance(runs, list):
        raise SystemExit(f"error: {path} has no 'runs' list")
    return runs


def _extract(entry: dict, path: tuple[str, ...]) -> float | None:
    node = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _baseline_ratio(runs: list[dict], path: tuple[str, ...]) -> float | None:
    """Best non-smoke committed value — tolerant of partial entries."""
    values = [
        v for entry in runs
        if not entry.get("smoke")
        if (v := _extract(entry, path)) is not None
    ]
    return max(values) if values else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path,
        help="trajectory file produced by the fresh benchmark run",
    )
    parser.add_argument(
        "--baseline", type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="committed trajectory file to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed fractional drop below baseline (default 0.15)",
    )
    parser.add_argument(
        "--smoke-tolerance", type=float, default=0.5,
        help="tolerance applied when the fresh run is a --smoke pass "
        "(tiny trace, one repeat: ratios are noisy; default 0.5)",
    )
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if not 0.0 <= args.smoke_tolerance < 1.0:
        parser.error("--smoke-tolerance must be in [0, 1)")

    fresh_runs = _load_runs(args.fresh)
    if not fresh_runs:
        raise SystemExit(f"error: {args.fresh} contains no runs")
    fresh = fresh_runs[-1]
    tolerance = args.tolerance
    if fresh.get("smoke"):
        tolerance = max(tolerance, args.smoke_tolerance)
        print(
            f"note: fresh run is a smoke pass; widening tolerance "
            f"to {tolerance:.0%}"
        )

    if not args.baseline.exists():
        print(
            f"PASS (vacuous): no committed baseline at {args.baseline}; "
            "nothing to compare against"
        )
        return 0
    baseline_runs = _load_runs(args.baseline)

    failures = []
    compared = 0
    for label, path in GATED_RATIOS:
        fresh_value = _extract(fresh, path)
        base_value = _baseline_ratio(baseline_runs, path)
        if fresh_value is None or base_value is None:
            print(f"  {label}: skipped (no comparable data)")
            continue
        compared += 1
        floor = base_value * (1.0 - tolerance)
        status = "OK" if fresh_value >= floor else "REGRESSION"
        print(
            f"  {label}: fresh {fresh_value:.2f}x vs baseline "
            f"{base_value:.2f}x (floor {floor:.2f}x) -> {status}"
        )
        if fresh_value < floor:
            failures.append(label)

    # Accuracy-telemetry overhead has a fixed ceiling rather than a
    # trajectory baseline: the fresh run must stay under 5% + tolerance
    # headroom (smoke traces are noisy, so the gate is advisory there).
    overhead = _extract(fresh, ("accuracy_overhead", "overhead_pct"))
    if overhead is not None and not fresh.get("smoke"):
        compared += 1
        ceiling = 5.0
        status = "OK" if overhead <= ceiling else "REGRESSION"
        print(
            f"  accuracy telemetry overhead: {overhead:+.1f}% "
            f"(ceiling {ceiling:.0f}%) -> {status}"
        )
        if overhead > ceiling:
            failures.append("accuracy telemetry overhead")

    if failures:
        print(f"FAIL: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    if compared == 0:
        print("PASS (vacuous): no comparable ratios between fresh and baseline")
    else:
        print(f"PASS: {compared} ratio(s) within {tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
