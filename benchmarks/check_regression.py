#!/usr/bin/env python
"""Bench-regression gate: fresh run vs the committed trajectory.

Compares machine-independent *speedup ratios* (scalar/batch, serial/
parallel) from a fresh benchmark run against the best committed
non-smoke entry in the trajectory file.  Raw packets/sec depends on
the runner's hardware, so only the ratios are gated; a fresh ratio
more than ``--tolerance`` (default 15%) below the committed baseline
fails the build.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --output /tmp/fresh.json
    python benchmarks/check_regression.py /tmp/fresh.json \
        --baseline BENCH_dataplane.json

Exit codes: 0 = within tolerance (or vacuous pass — no comparable
baseline), 1 = regression detected, 2 = usage / malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# (human label, path into a trajectory entry) for each gated ratio.
GATED_RATIOS = (
    ("ideal batch speedup", ("switch", "ideal", "speedup")),
    ("sketchvisor batch speedup", ("switch", "sketchvisor", "speedup")),
    ("multi-host parallel speedup", ("parallel", "speedup")),
)


def _load_runs(path: Path) -> list[dict]:
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    runs = loaded.get("runs") if isinstance(loaded, dict) else None
    if not isinstance(runs, list):
        raise SystemExit(f"error: {path} has no 'runs' list")
    _warn_unstamped(path, runs)
    return runs


def _warn_unstamped(path: Path, runs: list[dict]) -> None:
    """Flag entries without git provenance (git_sha missing/unknown)."""
    unstamped = [
        index
        for index, entry in enumerate(runs)
        if isinstance(entry, dict)
        and (
            not isinstance(entry.get("git_sha"), str)
            or not entry.get("git_sha")
            or entry.get("git_sha") == "unknown"
        )
    ]
    if unstamped:
        print(
            f"warning: {path.name} has {len(unstamped)} unstamped "
            f"run(s) (no git_sha) at index(es) "
            f"{', '.join(map(str, unstamped))} — provenance unknown"
        )


def _extract(entry: dict, path: tuple[str, ...]) -> float | None:
    node = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _baseline_ratio(runs: list[dict], path: tuple[str, ...]) -> float | None:
    """Best non-smoke committed value — tolerant of partial entries."""
    values = [
        v for entry in runs
        if not entry.get("smoke")
        if (v := _extract(entry, path)) is not None
    ]
    return max(values) if values else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path,
        help="trajectory file produced by the fresh benchmark run",
    )
    parser.add_argument(
        "--baseline", type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="committed trajectory file to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed fractional drop below baseline (default 0.15)",
    )
    parser.add_argument(
        "--smoke-tolerance", type=float, default=0.5,
        help="tolerance applied when the fresh run is a --smoke pass "
        "(tiny trace, one repeat: ratios are noisy; default 0.5)",
    )
    parser.add_argument(
        "--checkpoint-fresh", type=Path, default=None,
        help="trajectory file from a fresh bench_checkpoint.py run; "
        "gates the default checkpoint overhead against the committed "
        "BENCH_checkpoint.json baseline and the 10%% absolute budget",
    )
    parser.add_argument(
        "--checkpoint-baseline", type=Path,
        default=REPO_ROOT / "BENCH_checkpoint.json",
        help="committed checkpoint trajectory to compare against",
    )
    parser.add_argument(
        "--cluster-fresh", type=Path, default=None,
        help="trajectory file from a fresh bench_cluster.py run; "
        "gates the hierarchical controller's memory scaling "
        "(hier/flat peak ratio and log-log growth exponent) against "
        "fixed ceilings",
    )
    parser.add_argument(
        "--cluster-baseline", type=Path,
        default=REPO_ROOT / "BENCH_cluster.json",
        help="committed cluster trajectory to compare against",
    )
    parser.add_argument(
        "--failover-fresh", type=Path, default=None,
        help="trajectory file from a fresh bench_failover.py soak; "
        "gates report conservation (zero unaccounted host-epochs) "
        "and the redelivery overhead of aggregator fail-over against "
        "fixed ceilings",
    )
    parser.add_argument(
        "--failover-baseline", type=Path,
        default=REPO_ROOT / "BENCH_failover.json",
        help="committed failover trajectory to compare against",
    )
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if not 0.0 <= args.smoke_tolerance < 1.0:
        parser.error("--smoke-tolerance must be in [0, 1)")

    fresh_runs = _load_runs(args.fresh)
    if not fresh_runs:
        raise SystemExit(f"error: {args.fresh} contains no runs")
    fresh = fresh_runs[-1]
    tolerance = args.tolerance
    if fresh.get("smoke"):
        tolerance = max(tolerance, args.smoke_tolerance)
        print(
            f"note: fresh run is a smoke pass; widening tolerance "
            f"to {tolerance:.0%}"
        )

    if not args.baseline.exists():
        print(
            f"PASS (vacuous): no committed baseline at {args.baseline}; "
            "nothing to compare against"
        )
        return 0
    baseline_runs = _load_runs(args.baseline)

    failures = []
    compared = 0
    for label, path in GATED_RATIOS:
        fresh_value = _extract(fresh, path)
        base_value = _baseline_ratio(baseline_runs, path)
        if fresh_value is None or base_value is None:
            print(f"  {label}: skipped (no comparable data)")
            continue
        compared += 1
        floor = base_value * (1.0 - tolerance)
        status = "OK" if fresh_value >= floor else "REGRESSION"
        print(
            f"  {label}: fresh {fresh_value:.2f}x vs baseline "
            f"{base_value:.2f}x (floor {floor:.2f}x) -> {status}"
        )
        if fresh_value < floor:
            failures.append(label)

    # Accuracy-telemetry overhead has a fixed ceiling rather than a
    # trajectory baseline: the fresh run must stay under 5% + tolerance
    # headroom (smoke traces are noisy, so the gate is advisory there).
    overhead = _extract(fresh, ("accuracy_overhead", "overhead_pct"))
    if overhead is not None and not fresh.get("smoke"):
        compared += 1
        ceiling = 5.0
        status = "OK" if overhead <= ceiling else "REGRESSION"
        print(
            f"  accuracy telemetry overhead: {overhead:+.1f}% "
            f"(ceiling {ceiling:.0f}%) -> {status}"
        )
        if overhead > ceiling:
            failures.append("accuracy telemetry overhead")

    # Profiling overhead likewise has a fixed ceiling: stage timers +
    # stack sampler + hash instrumentation must stay within 10% of the
    # unprofiled pipeline (smoke traces are too noisy to gate).
    prof_overhead = _extract(fresh, ("profiling", "overhead_pct"))
    if prof_overhead is not None and not fresh.get("smoke"):
        compared += 1
        ceiling = 10.0
        status = "OK" if prof_overhead <= ceiling else "REGRESSION"
        print(
            f"  profiling overhead: {prof_overhead:+.1f}% "
            f"(ceiling {ceiling:.0f}%) -> {status}"
        )
        if prof_overhead > ceiling:
            failures.append("profiling overhead")

    # Checkpoint overhead gates both relative to the committed
    # baseline (with tolerance headroom) and against the absolute 10%
    # budget the durability docs promise.
    if args.checkpoint_fresh is not None:
        ck_runs = _load_runs(args.checkpoint_fresh)
        if not ck_runs:
            raise SystemExit(
                f"error: {args.checkpoint_fresh} contains no runs"
            )
        ck_fresh = ck_runs[-1]
        ck_value = _extract(ck_fresh, ("default_overhead",))
        ck_tolerance = tolerance
        if ck_fresh.get("smoke"):
            ck_tolerance = max(args.tolerance, args.smoke_tolerance)
        if ck_value is None:
            print("  checkpoint overhead: skipped (no default_overhead)")
        elif ck_fresh.get("smoke"):
            print(
                f"  checkpoint overhead: {ck_value:.3f} "
                "(smoke run — advisory only)"
            )
        else:
            compared += 1
            budget = 0.10
            ceiling = budget
            if args.checkpoint_baseline.exists():
                ck_base = [
                    v for entry in _load_runs(args.checkpoint_baseline)
                    if not entry.get("smoke")
                    if (v := _extract(entry, ("default_overhead",)))
                    is not None
                ]
                if ck_base:
                    # Allow the committed baseline plus headroom, but
                    # never past the absolute budget.
                    ceiling = min(
                        budget,
                        max(min(ck_base) * (1.0 + ck_tolerance), 0.02),
                    )
            status = "OK" if ck_value <= ceiling else "REGRESSION"
            print(
                f"  checkpoint overhead (default interval): "
                f"{ck_value:.3f} (ceiling {ceiling:.3f}, "
                f"budget {budget:.2f}) -> {status}"
            )
            if ck_value > ceiling:
                failures.append("checkpoint overhead")

    # Cluster memory scaling gates against fixed ceilings: the
    # hierarchical tier must stay under 80% of the flat controller's
    # peak at the largest host count, and its peak must grow
    # sublinearly (log-log exponent <= 0.75).  Smoke sweeps (two tiny
    # host counts, all frames concurrently in flight) cannot fit a
    # stable exponent, so they report advisory-only.
    if args.cluster_fresh is not None:
        cl_runs = _load_runs(args.cluster_fresh)
        if not cl_runs:
            raise SystemExit(
                f"error: {args.cluster_fresh} contains no runs"
            )
        cl_fresh = cl_runs[-1]
        cluster_gates = (
            ("cluster hier/flat RSS ratio",
             ("summary", "rss_ratio"), 0.8),
            ("cluster RSS growth exponent",
             ("summary", "rss_growth_exponent"), 0.75),
        )
        for label, path, ceiling in cluster_gates:
            value = _extract(cl_fresh, path)
            if value is None:
                print(f"  {label}: skipped (no data)")
                continue
            if cl_fresh.get("smoke"):
                print(
                    f"  {label}: {value:.2f} "
                    "(smoke run — advisory only)"
                )
                continue
            compared += 1
            status = "OK" if value <= ceiling else "REGRESSION"
            print(
                f"  {label}: {value:.2f} "
                f"(ceiling {ceiling:.2f}) -> {status}"
            )
            if value > ceiling:
                failures.append(label)
        if args.cluster_baseline.exists():
            base_ratio = [
                v for entry in _load_runs(args.cluster_baseline)
                if not entry.get("smoke")
                if (v := _extract(entry, ("summary", "rss_ratio")))
                is not None
            ]
            fresh_ratio = _extract(cl_fresh, ("summary", "rss_ratio"))
            if (
                base_ratio
                and fresh_ratio is not None
                and not cl_fresh.get("smoke")
            ):
                # Advisory drift note only — the fixed ceiling above
                # is the gate; machine variance makes the ratio too
                # noisy for a hard trajectory floor.
                best = min(base_ratio)
                print(
                    f"  cluster ratio vs best committed: fresh "
                    f"{fresh_ratio:.2f} vs {best:.2f} (advisory)"
                )

    # Fail-over soak gates against fixed ceilings: conservation must
    # be exact (no host report ever unaccounted for) and redelivery
    # must stay a bounded fraction of delivered host-epochs.  Smoke
    # soaks (a few epochs, few hosts) may not fire a single strike,
    # so they report advisory-only.
    if args.failover_fresh is not None:
        fo_runs = _load_runs(args.failover_fresh)
        if not fo_runs:
            raise SystemExit(
                f"error: {args.failover_fresh} contains no runs"
            )
        fo_fresh = fo_runs[-1]
        failover_gates = (
            ("failover unaccounted host-epochs",
             ("summary", "unaccounted_host_epochs"), 0.0),
            ("failover redelivery overhead",
             ("summary", "redelivery_overhead"), 0.5),
        )
        for label, path, ceiling in failover_gates:
            value = _extract(fo_fresh, path)
            if value is None:
                print(f"  {label}: skipped (no data)")
                continue
            if fo_fresh.get("smoke"):
                print(
                    f"  {label}: {value:.3f} "
                    "(smoke run — advisory only)"
                )
                continue
            compared += 1
            status = "OK" if value <= ceiling else "REGRESSION"
            print(
                f"  {label}: {value:.3f} "
                f"(ceiling {ceiling:.3f}) -> {status}"
            )
            if value > ceiling:
                failures.append(label)
        fired = _extract(fo_fresh, ("summary", "failovers"))
        if fired is not None and not fo_fresh.get("smoke"):
            compared += 1
            status = "OK" if fired >= 1 else "REGRESSION"
            print(
                f"  failover strikes fired: {fired:.0f} "
                f"(must be >= 1) -> {status}"
            )
            if fired < 1:
                failures.append("failover strikes fired")
        if args.failover_baseline.exists():
            base_recovery = [
                v for entry in _load_runs(args.failover_baseline)
                if not entry.get("smoke")
                if (v := _extract(
                    entry, ("summary", "recovery_p95_seconds")
                )) is not None
            ]
            fresh_recovery = _extract(
                fo_fresh, ("summary", "recovery_p95_seconds")
            )
            if (
                base_recovery
                and fresh_recovery is not None
                and not fo_fresh.get("smoke")
            ):
                # Advisory drift note only — recovery latency is
                # wall-clock-bound (watchdog interval dominates) and
                # too machine-sensitive for a hard floor.
                best = min(base_recovery)
                print(
                    f"  failover recovery p95 vs best committed: "
                    f"fresh {fresh_recovery:.2f}s vs {best:.2f}s "
                    "(advisory)"
                )

    if failures:
        print(f"FAIL: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    if compared == 0:
        print("PASS (vacuous): no comparable ratios between fresh and baseline")
    else:
        print(f"PASS: {compared} ratio(s) within {tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
