#!/usr/bin/env python
"""Cluster-scale harness: flat vs hierarchical controller memory.

Drives the real-socket control plane (``repro.cluster``) at growing
host counts and records, per mode, the epoch wall-clock and the peak
heap the collect+merge path allocates (tracemalloc).  The point being
gated: the **flat** controller keeps all N decoded reports resident
until the root merge (peak grows ~linearly with hosts), while the
**hierarchical** aggregator tier folds reports pairwise on arrival, so
its peak tracks the aggregator count (~sqrt(N)) — a 500-host epoch
completes in bounded memory.

Acceptance gates (full run; smoke records but does not gate):

- ``rss_ratio`` — hierarchical peak / flat peak at the largest host
  count — must stay **<= 0.8**;
- ``rss_growth_exponent`` — the log-log slope of hierarchical peak vs
  host count — must stay **<= 0.75** (sublinear; flat sits near 1.0).

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py           # full run
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke   # CI quick pass
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import subprocess
import sys
import time
import tracemalloc
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterCollector, ClusterConfig  # noqa: E402
from repro.controlplane.controller import Controller  # noqa: E402
from repro.controlplane.recovery import RecoveryMode  # noqa: E402
from repro.dataplane.engine import HostEngine  # noqa: E402
from repro.dataplane.host import Host, LocalReport  # noqa: E402
from repro.sketches.countmin import CountMinSketch  # noqa: E402
from repro.traffic.generator import (  # noqa: E402
    TraceConfig,
    generate_trace,
)

RSS_RATIO_CEILING = 0.8
RSS_EXPONENT_CEILING = 0.75


def build_reports(num_hosts: int, flows: int) -> list[LocalReport]:
    """Synthetic per-host epoch reports.

    One real data-plane epoch supplies the template; the remaining
    hosts clone its sketch so report *size* (what the memory gate
    measures) is realistic while setup stays O(1) in host count.
    """
    trace = generate_trace(TraceConfig(num_flows=flows, seed=9))
    template = Host(
        0,
        CountMinSketch(width=2048, depth=4, seed=2),
        fastpath_bytes=4096,
    ).run_epoch(trace)
    reports = [template]
    for host_id in range(1, num_hosts):
        clone = template.sketch.clone_empty()
        clone.merge(template.sketch)
        reports.append(
            LocalReport(
                host_id=host_id,
                sketch=clone,
                fastpath=template.fastpath,
                switch=template.switch,
            )
        )
    return reports


def run_mode(
    reports: list[LocalReport], hierarchical: bool
) -> dict:
    """One epoch over sockets + root merge; returns time and peak."""
    collector = ClusterCollector(
        ClusterConfig(
            hierarchical=hierarchical,
            epoch_deadline=120.0,
            max_inflight=64,
        )
    )
    controller = Controller(RecoveryMode.SKETCHVISOR)
    tracemalloc.start()
    started = time.perf_counter()
    collection = collector.collect(reports, epoch=0)
    network = controller.aggregate(
        collection.reports,
        expected_hosts=len(reports),
        epoch=0,
        reported_hosts=collection.hosts_reported,
    )
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert network.num_hosts == len(reports)
    assert collection.missing_hosts == []
    return {
        "seconds": elapsed,
        "peak_bytes": peak,
        "aggregators": collector.last_aggregators,
        "peak_resident": collector.last_peak_resident,
    }


def growth_exponent(host_counts, peaks) -> float:
    """Least-squares slope of log(peak) vs log(hosts)."""
    xs = [math.log(n) for n in host_counts]
    ys = [math.log(max(1, p)) for p in peaks]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def git_sha() -> str:
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        return sha or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_trajectory(path: Path, entry: dict) -> None:
    trajectory = {"runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(
                loaded.get("runs"), list
            ):
                trajectory = loaded
        except json.JSONDecodeError:
            pass
    trajectory["runs"].append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--hosts",
        type=int,
        nargs="+",
        default=[64, 128, 256, 500],
        help="host counts to sweep (ascending)",
    )
    parser.add_argument("--flows", type=int, default=800)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep, no gating (CI quick pass)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_cluster.json",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.hosts = [16, 32]
        args.flows = 300
    host_counts = sorted(args.hosts)

    sweep: dict[str, dict] = {"flat": {}, "hier": {}}
    for num_hosts in host_counts:
        reports = build_reports(num_hosts, args.flows)
        for mode, hierarchical in (("flat", False), ("hier", True)):
            outcome = run_mode(reports, hierarchical)
            sweep[mode][str(num_hosts)] = outcome
            print(
                f"{mode:>4} n={num_hosts:>4}: "
                f"{outcome['seconds']:6.2f}s, "
                f"peak {outcome['peak_bytes'] / 1e6:7.1f} MB, "
                f"{outcome['aggregators']} aggregator(s), "
                f"peak resident {outcome['peak_resident']}"
            )
        del reports

    largest = str(host_counts[-1])
    rss_ratio = (
        sweep["hier"][largest]["peak_bytes"]
        / sweep["flat"][largest]["peak_bytes"]
    )
    exponent = growth_exponent(
        host_counts,
        [sweep["hier"][str(n)]["peak_bytes"] for n in host_counts],
    )
    flat_exponent = growth_exponent(
        host_counts,
        [sweep["flat"][str(n)]["peak_bytes"] for n in host_counts],
    )
    sublinear = (
        rss_ratio <= RSS_RATIO_CEILING
        and exponent <= RSS_EXPONENT_CEILING
    )
    print(
        f"hier/flat peak @ n={largest}: {rss_ratio:.2f} "
        f"(ceiling {RSS_RATIO_CEILING})"
    )
    print(
        f"hier peak growth exponent: {exponent:.2f} "
        f"(ceiling {RSS_EXPONENT_CEILING}; flat {flat_exponent:.2f})"
    )
    print(
        "hierarchical memory is "
        f"{'SUBLINEAR' if sublinear else 'NOT sublinear'} in hosts"
    )

    append_trajectory(
        args.output,
        {
            "timestamp": datetime.now(timezone.utc).isoformat(),
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "smoke": args.smoke,
            "host_counts": host_counts,
            "flows": args.flows,
            "sweep": sweep,
            "summary": {
                "rss_ratio": rss_ratio,
                "rss_growth_exponent": exponent,
                "flat_growth_exponent": flat_exponent,
                "sublinear": sublinear,
            },
        },
    )
    print(f"appended to {args.output}")
    if args.smoke:
        # Two tiny host counts cannot fit a stable exponent; the full
        # sweep gates.
        return 0
    return 0 if sublinear else 1


if __name__ == "__main__":
    raise SystemExit(main())
