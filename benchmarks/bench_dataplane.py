#!/usr/bin/env python
"""Data-plane throughput harness: scalar vs batch vs parallel engines.

Times packets/sec of the simulated data plane across three execution
modes and appends the results to a JSON trajectory file so future PRs
can track speedups (and catch regressions) over time:

* ``scalar``  — the per-packet reference engine (pre-batch behaviour);
* ``batch``   — the two-phase engine (cycle accounting + one vectorized
  ``update_batch`` per epoch);
* ``parallel``— the batched engine with per-host epochs fanned out to a
  process pool via :class:`~repro.framework.pipeline.SketchVisorPipeline`.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataplane.py            # full run
    PYTHONPATH=src python benchmarks/bench_dataplane.py --smoke    # CI quick pass

The scalar-vs-batch comparison runs the ideal-mode CountMin arm the
acceptance gate tracks, plus a SketchVisor (fast-path) arm to show the
two-phase engine also pays off when routing decisions stay per-packet.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dataplane.cost_model import CostModel  # noqa: E402
from repro.dataplane.switch import SoftwareSwitch  # noqa: E402
from repro.fastpath.topk import FastPath  # noqa: E402
from repro.framework.modes import DataPlaneMode  # noqa: E402
from repro.framework.pipeline import (  # noqa: E402
    PipelineConfig,
    SketchVisorPipeline,
)
from repro.sketches.countmin import CountMinSketch  # noqa: E402
from repro.sketches.countsketch import CountSketch  # noqa: E402
from repro.sketches.mrac import MRAC  # noqa: E402
from repro.tasks.heavy_hitter import HeavyHitterTask  # noqa: E402
from repro.traffic.generator import TraceConfig, generate_trace  # noqa: E402
from repro.traffic.groundtruth import GroundTruth  # noqa: E402

SKETCHES = {
    "countmin": lambda seed: CountMinSketch(seed=seed),
    "countsketch": lambda seed: CountSketch(seed=seed),
    "mrac": lambda seed: MRAC(seed=seed),
}


def _time_switch(make_switch, trace, repeats: int) -> float:
    """Best-of-N wall time for one switch.process() epoch."""
    best = float("inf")
    for _ in range(repeats):
        switch = make_switch()
        start = time.perf_counter()
        switch.process(trace)
        best = min(best, time.perf_counter() - start)
    return best


def bench_switch_modes(trace, sketch_name: str, seed: int, repeats: int):
    """Scalar vs batch packets/sec, ideal and SketchVisor arms."""
    make_sketch = SKETCHES[sketch_name]
    cost_model = CostModel.in_memory()
    results = {}
    arms = {
        "ideal": dict(fastpath=None, ideal=True),
        "sketchvisor": dict(ideal=False),
    }
    for arm, kwargs in arms.items():
        timings = {}
        for mode in ("scalar", "batch"):
            def make_switch(mode=mode, kwargs=kwargs):
                fastpath = (
                    None if kwargs.get("fastpath", ...) is None
                    else FastPath(8192)
                )
                return SoftwareSwitch(
                    make_sketch(seed),
                    fastpath=fastpath,
                    cost_model=cost_model,
                    buffer_packets=1024,
                    ideal=kwargs["ideal"],
                    batch=(mode == "batch"),
                )

            elapsed = _time_switch(make_switch, trace, repeats)
            timings[mode] = {
                "seconds": elapsed,
                "packets_per_sec": len(trace) / elapsed,
            }
        timings["speedup"] = (
            timings["scalar"]["seconds"] / timings["batch"]["seconds"]
        )
        results[arm] = timings
    return results


def bench_parallel(trace, seed: int, num_hosts: int, workers: int):
    """Serial vs process-pool multi-host epochs (batched engine)."""
    truth = GroundTruth.from_trace(trace)
    timings = {}
    for label, pool_workers in (("serial", 1), ("parallel", workers)):
        pipeline = SketchVisorPipeline(
            HeavyHitterTask("univmon", threshold=0.001),
            dataplane=DataPlaneMode.SKETCHVISOR,
            config=PipelineConfig(
                num_hosts=num_hosts,
                seed=seed,
                batch=True,
                workers=pool_workers,
            ),
        )
        start = time.perf_counter()
        pipeline.run_epoch(trace, truth)
        elapsed = time.perf_counter() - start
        timings[label] = {
            "seconds": elapsed,
            "packets_per_sec": len(trace) / elapsed,
        }
    timings["speedup"] = (
        timings["serial"]["seconds"] / timings["parallel"]["seconds"]
    )
    timings["num_hosts"] = num_hosts
    timings["workers"] = workers
    return timings


def bench_accuracy_overhead(trace, seed: int, num_hosts: int):
    """End-to-end epoch time with and without accuracy telemetry.

    Runs the full pipeline (dataplane + merge + recovery + query) twice:
    once bare, once with telemetry + error-bound publication + a shadow
    ground-truth sample + SLO evaluation.  The acceptance gate requires
    the instrumented run to stay within 5% of the bare run.
    """
    from repro.telemetry import Telemetry
    from repro.telemetry.accuracy import SLOPolicy

    truth = GroundTruth.from_trace(trace)
    policy = SLOPolicy.from_dict({
        "rules": [
            {"name": "are-ceiling",
             "metric": "sketchvisor_accuracy_empirical_flow_are",
             "op": "<=", "threshold": 10.0},
            {"name": "recall-floor",
             "metric": "sketchvisor_accuracy_empirical_hh_recall",
             "op": ">=", "threshold": 0.0},
        ]
    })
    timings = {}
    for label in ("bare", "instrumented"):
        telemetry = Telemetry() if label == "instrumented" else None
        pipeline = SketchVisorPipeline(
            HeavyHitterTask("univmon", threshold=0.001),
            dataplane=DataPlaneMode.SKETCHVISOR,
            config=PipelineConfig(
                num_hosts=num_hosts,
                seed=seed,
                batch=True,
                workers=1,
                telemetry=telemetry,
                slo=policy if telemetry else None,
                shadow_samples=128 if telemetry else 0,
            ),
        )
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            pipeline.run_epoch(trace, truth)
            best = min(best, time.perf_counter() - start)
        timings[label] = {
            "seconds": best,
            "packets_per_sec": len(trace) / best,
        }
    timings["overhead_pct"] = 100.0 * (
        timings["instrumented"]["seconds"] / timings["bare"]["seconds"] - 1.0
    )
    return timings


def git_sha() -> str:
    """Short commit SHA of the repo being benchmarked.

    Always returns a string — ``"unknown"`` when git is unavailable —
    so every trajectory entry is provenance-stamped and the loaders
    (``check_regression.py``, ``repro perf``) can warn on unstamped
    entries instead of crashing on missing keys.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        return sha or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bench_profiling(trace, seed: int, num_hosts: int):
    """End-to-end epoch time with and without cycle-level profiling.

    Runs the full pipeline (batched SketchVisor data plane + merge +
    recovery + query) twice — bare, then with the full profiler on
    (stage timers, 97 Hz stack sampler, hash instrumentation, RSS
    tracking).  The acceptance gate requires the profiled run to stay
    within 10% of the unprofiled run; the profiled run's per-stage
    wall breakdown and epoch attribution ride along in the trajectory
    entry so ``repro perf`` can chart stage deltas across commits.
    """
    from repro.telemetry import ProfileConfig, Telemetry
    from repro.telemetry.profiling import epoch_attribution

    truth = GroundTruth.from_trace(trace)
    timings = {}
    stages = None
    attribution = None
    for label in ("unprofiled", "profiled"):
        best = float("inf")
        for _ in range(3):
            telemetry = (
                Telemetry(profile=ProfileConfig())
                if label == "profiled"
                else None
            )
            pipeline = SketchVisorPipeline(
                HeavyHitterTask("univmon", threshold=0.001),
                dataplane=DataPlaneMode.SKETCHVISOR,
                config=PipelineConfig(
                    num_hosts=num_hosts,
                    seed=seed,
                    batch=True,
                    workers=1,
                    telemetry=telemetry,
                ),
            )
            start = time.perf_counter()
            pipeline.run_epoch(trace, truth)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
                if telemetry is not None:
                    stages = telemetry.profiler.stage_table()
                    attribution = epoch_attribution(
                        telemetry.tracer
                    )
        timings[label] = {
            "seconds": best,
            "packets_per_sec": len(trace) / best,
        }
    timings["overhead_pct"] = 100.0 * (
        timings["profiled"]["seconds"]
        / timings["unprofiled"]["seconds"]
        - 1.0
    )
    timings["stages"] = stages
    timings["attribution"] = attribution
    return timings


def instrumented_snapshot(trace, sketch_name: str, seed: int) -> dict:
    """Metric snapshot of one (untimed) instrumented batch epoch.

    Rides along in the trajectory entry so counter totals — packets
    per path, cycles, fast-path kick-outs — stay comparable across
    runs even as the engines evolve.
    """
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    switch = SoftwareSwitch(
        SKETCHES[sketch_name](seed),
        fastpath=FastPath(8192),
        cost_model=CostModel.in_memory(),
        buffer_packets=1024,
        batch=True,
        telemetry=telemetry,
    )
    switch.process(trace)
    return telemetry.json_snapshot()


def append_trajectory(path: Path, entry: dict) -> None:
    """Append one run to the JSON trajectory file (list under "runs")."""
    trajectory = {"runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(
                loaded.get("runs"), list
            ):
                trajectory = loaded
        except json.JSONDecodeError:
            pass
    trajectory["runs"].append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--flows", type=int, default=10_500,
        help="distinct flows in the Zipf trace (~10 packets/flow)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--sketch", choices=sorted(SKETCHES), default="countmin"
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--hosts", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--skip-parallel", action="store_true",
        help="skip the process-pool arm (e.g. constrained CI runners)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny trace, one repeat — a CI liveness check, not a bench",
    )
    parser.add_argument(
        "--output", type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="JSON trajectory file to append results to",
    )
    args = parser.parse_args(argv)

    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.flows < 1:
        parser.error("--flows must be >= 1")

    if args.smoke:
        args.flows = min(args.flows, 600)
        args.repeats = 1
        args.hosts = 2
        args.workers = 2

    trace = generate_trace(
        TraceConfig(num_flows=args.flows, seed=args.seed)
    )
    print(
        f"trace: {len(trace)} packets, {args.flows} flows "
        f"(Zipf), sketch={args.sketch}"
    )

    switch_results = bench_switch_modes(
        trace, args.sketch, args.seed, args.repeats
    )
    for arm, timings in switch_results.items():
        print(
            f"  {arm:12s} scalar {timings['scalar']['packets_per_sec']:>12,.0f} pps"
            f" | batch {timings['batch']['packets_per_sec']:>12,.0f} pps"
            f" | speedup {timings['speedup']:.1f}x"
        )

    parallel_results = None
    cpus = os.cpu_count() or 1
    if args.skip_parallel:
        pass
    elif cpus < 2:
        # A process pool cannot beat serial on one core; timing it
        # anyway would report pool overhead as a (bogus) slowdown.
        parallel_results = {"skipped": f"single-CPU host (cpus={cpus})"}
        print("  multi-host   skipped: only 1 CPU available")
    else:
        workers = min(args.workers, cpus)
        parallel_results = bench_parallel(
            trace, args.seed, args.hosts, workers
        )
        print(
            f"  {'multi-host':12s} serial {parallel_results['serial']['packets_per_sec']:>12,.0f} pps"
            f" | {workers} workers {parallel_results['parallel']['packets_per_sec']:>12,.0f} pps"
            f" | speedup {parallel_results['speedup']:.1f}x"
        )

    accuracy_results = bench_accuracy_overhead(
        trace, args.seed, args.hosts
    )
    print(
        f"  {'accuracy':12s} bare {accuracy_results['bare']['packets_per_sec']:>12,.0f} pps"
        f" | instrumented {accuracy_results['instrumented']['packets_per_sec']:>12,.0f} pps"
        f" | overhead {accuracy_results['overhead_pct']:+.1f}%"
    )

    profiling_results = bench_profiling(trace, args.seed, args.hosts)
    attribution = profiling_results.get("attribution")
    print(
        f"  {'profiling':12s} off {profiling_results['unprofiled']['packets_per_sec']:>12,.0f} pps"
        f" | on {profiling_results['profiled']['packets_per_sec']:>12,.0f} pps"
        f" | overhead {profiling_results['overhead_pct']:+.1f}%"
        + (
            f" | attribution {attribution:.0%}"
            if attribution else ""
        )
    )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "config": {
            "packets": len(trace),
            "flows": args.flows,
            "sketch": args.sketch,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "switch": switch_results,
        "parallel": parallel_results,
        "accuracy_overhead": accuracy_results,
        "profiling": profiling_results,
        "telemetry": instrumented_snapshot(
            trace, args.sketch, args.seed
        ),
    }
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if not args.smoke and switch_results["ideal"]["speedup"] < 5.0:
        print("FAIL: batch ideal speedup below the 5x acceptance floor")
        return 1
    if not args.smoke and accuracy_results["overhead_pct"] > 5.0:
        print("FAIL: accuracy telemetry overhead above the 5% ceiling")
        return 1
    if not args.smoke and profiling_results["overhead_pct"] > 10.0:
        print("FAIL: profiling overhead above the 10% ceiling")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
