"""Figure 10: flow size distribution (MRD) across recovery arms.

Paper shape: MRAC is cheap enough that almost nothing reaches the fast
path, so every arm scores the same (~0.2% MRD); FlowRadar overflows,
NR/LR/UR inflate the MRD (~10x Ideal), and SketchVisor halves it.
"""

from __future__ import annotations

import pytest

from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import SketchVisorPipeline
from repro.tasks.distribution import FlowSizeDistributionTask

SOLUTIONS = ["mrac", "flowradar"]

ARMS: list[tuple[str, DataPlaneMode, RecoveryMode]] = [
    ("NR", DataPlaneMode.SKETCHVISOR, RecoveryMode.NO_RECOVERY),
    ("LR", DataPlaneMode.SKETCHVISOR, RecoveryMode.LOWER),
    ("UR", DataPlaneMode.SKETCHVISOR, RecoveryMode.UPPER),
    ("SketchVisor", DataPlaneMode.SKETCHVISOR, RecoveryMode.SKETCHVISOR),
    ("Ideal", DataPlaneMode.IDEAL, RecoveryMode.NO_RECOVERY),
]


@pytest.fixture(scope="module")
def fsd_scores(bench_trace, bench_truth):
    scores = {}
    for solution in SOLUTIONS:
        task = FlowSizeDistributionTask(solution)
        for arm, dataplane, recovery in ARMS:
            pipeline = SketchVisorPipeline(
                task, dataplane=dataplane, recovery=recovery
            )
            result = pipeline.run_epoch(bench_trace, bench_truth)
            scores[(solution, arm)] = result.score
    return scores


def test_fig10_table(result_table, fsd_scores):
    table = result_table(
        "fig10_flow_size_distribution",
        "Figure 10: flow size distribution MRD per recovery arm",
    )
    table.row(
        f"{'solution':<10}"
        + "".join(f"{arm:>13}" for arm, _d, _r in ARMS)
    )
    for solution in SOLUTIONS:
        table.row(
            f"{solution:<10}"
            + "".join(
                f"{fsd_scores[(solution, arm)].mrd:>12.4f} "
                for arm, _d, _r in ARMS
            )
        )


def test_fig10_mrac_insensitive_to_arm(fsd_scores):
    """MRAC barely overflows; all arms score alike (paper: ~0.2%)."""
    mrds = [fsd_scores[("mrac", arm)].mrd for arm, _d, _r in ARMS]
    assert max(mrds) - min(mrds) < 0.25


def test_fig10_flowradar_ordering(fsd_scores):
    """Ideal (complete decode) is best; SketchVisor stays within the
    NR band.  Deviation note (see EXPERIMENTS.md): the paper halves
    NR's MRD, while our recovery only reaches parity — the fast path
    tracks byte volumes, so re-injected flows land in packet-count
    bins via a mean-packet-size conversion that blurs exactly the
    histogram this task scores."""
    nr = fsd_scores[("flowradar", "NR")].mrd
    sketchvisor = fsd_scores[("flowradar", "SketchVisor")].mrd
    ideal = fsd_scores[("flowradar", "Ideal")].mrd
    assert ideal <= sketchvisor
    assert sketchvisor < 1.25 * nr


def test_fig10_timing(benchmark, bench_trace, bench_truth):
    task = FlowSizeDistributionTask("mrac")

    def run():
        return SketchVisorPipeline(task).run_epoch(
            bench_trace, bench_truth
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.mrd is not None
