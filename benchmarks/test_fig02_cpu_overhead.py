"""Figure 2: CPU overhead and throughput of sketch-based solutions.

(a) cycles per packet for FlowRadar / RevSketch / UnivMon / Deltoid in
    their §7.1 heavy-hitter configurations — the paper measures 2,584 /
    3,858 / 4,382 / 10,454 with Perf;
(b) maximum throughput vs number of threads — no solution exceeds
    5 Gbps with one thread, and Deltoid barely reaches 5 Gbps with five.

The cycle numbers come from the calibrated cost model; the pytest
benchmark additionally times this reproduction's *actual* Python
update loop for each sketch, proving the code paths are real.
"""

from __future__ import annotations

import pytest

from repro.dataplane.cost_model import CostModel, PAPER_CYCLES_PER_PACKET
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.univmon import UnivMon

HH_SOLUTIONS = {
    "flowradar": lambda: FlowRadar(),
    "revsketch": lambda: ReversibleSketch(
        word_bits=16, num_words=7, subindex_bits=2, depth=4
    ),
    "univmon": lambda: UnivMon(),
    "deltoid": lambda: Deltoid(width=4000, depth=4),
}

PAPER_THROUGHPUT_1_THREAD_MAX = 5.0  # Gbps, Figure 2(b)


def test_fig02a_cycles_per_packet(result_table):
    table = result_table(
        "fig02a_cpu_cycles",
        "Figure 2(a): CPU cycles per packet (paper-config sketches)",
    )
    model = CostModel.in_memory()
    table.row(f"{'solution':<12} {'cycles/pkt':>11} {'paper':>8}")
    for name, build in HH_SOLUTIONS.items():
        cycles = model.sketch_cycles(build())
        table.row(
            f"{name:<12} {cycles:>11.0f} "
            f"{PAPER_CYCLES_PER_PACKET[name]:>8.0f}"
        )
        assert cycles == pytest.approx(
            PAPER_CYCLES_PER_PACKET[name], rel=1e-6
        )
    # Paper shape: Deltoid slowest, FlowRadar fastest of the four.
    cycles = {
        name: model.sketch_cycles(build())
        for name, build in HH_SOLUTIONS.items()
    }
    assert cycles["deltoid"] == max(cycles.values())
    assert cycles["flowradar"] == min(cycles.values())


def test_fig02b_throughput_vs_threads(result_table):
    table = result_table(
        "fig02b_thread_scaling",
        "Figure 2(b): max throughput (Gbps) vs threads, 10 Gbps NIC",
    )
    model = CostModel.in_memory()
    table.row(f"{'solution':<12}" + "".join(f"{t:>8}" for t in range(1, 6)))
    for name, build in HH_SOLUTIONS.items():
        sketch = build()
        rates = [
            min(model.threaded_rate_gbps(sketch, threads), 10.0)
            for threads in range(1, 6)
        ]
        table.row(
            f"{name:<12}" + "".join(f"{rate:>8.2f}" for rate in rates)
        )
        # Paper shape: nothing reaches line rate on one thread.  (Our
        # FlowRadar's pure cycle bound, 2.93e9/2584 * 769 B = 7 Gbps,
        # sits slightly above the paper's ~4.5 Gbps measurement, which
        # included their harness's per-packet I/O.)
        assert rates[0] < 7.1
    deltoid_rates = [
        model.threaded_rate_gbps(HH_SOLUTIONS["deltoid"](), t)
        for t in range(1, 6)
    ]
    assert deltoid_rates[-1] < 7.0  # "barely achieves 5Gbps with five"


@pytest.mark.parametrize("name", sorted(HH_SOLUTIONS))
def test_fig02_python_update_timing(benchmark, name, bench_trace):
    """Real wall-clock cost of this implementation's update path."""
    sketch = HH_SOLUTIONS[name]()
    packets = bench_trace.packets[:400]

    def record():
        for packet in packets:
            sketch.update(packet.flow, packet.size)

    benchmark(record)
