"""Figure 6: throughput of NoFastPath / MGFastPath / SketchVisor.

The paper's in-memory tester: NoFastPath and MGFastPath cannot reach
10 Gbps for most sketches, SketchVisor exceeds 17 Gbps for all nine
solutions (and ~40 Gbps for MRAC).  The shape to reproduce: SketchVisor
>= MGFastPath >= NoFastPath everywhere, with large gains exactly for
the computationally heavy sketches and almost none for MRAC.
"""

from __future__ import annotations

import pytest

from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath
from repro.sketches.cardinality import FMSketch, KMinSketch, LinearCounting
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch
from repro.sketches.univmon import UnivMon

SOLUTIONS = {
    "deltoid": lambda: Deltoid(width=1024, depth=4),
    "univmon": lambda: UnivMon(
        level_widths=(2048, 1024, 512, 256), heap_size=200
    ),
    "twolevel": lambda: TwoLevelSketch(),
    "revsketch": lambda: ReversibleSketch(depth=6),
    "flowradar": lambda: FlowRadar(bloom_bits=60_000, num_cells=24_000),
    "fm": lambda: FMSketch(),
    "kmin": lambda: KMinSketch(),
    "lc": lambda: LinearCounting(),
    "mrac": lambda: MRAC(),
}

ARMS = {
    "NoFastPath": lambda: None,
    "MGFastPath": lambda: MisraGriesTopK(8192),
    "SketchVisor": lambda: FastPath(8192),
}


@pytest.fixture(scope="module")
def throughput_matrix(bench_trace):
    model = CostModel.in_memory()
    results: dict[str, dict[str, float]] = {}
    for name, build in SOLUTIONS.items():
        results[name] = {}
        for arm, make_fastpath in ARMS.items():
            switch = SoftwareSwitch(
                build(), fastpath=make_fastpath(), cost_model=model
            )
            report = switch.process(bench_trace)
            results[name][arm] = report.throughput_gbps
    return results


def test_fig06_throughput_table(result_table, throughput_matrix):
    table = result_table(
        "fig06_throughput",
        "Figure 6(b): in-memory throughput (Gbps) per data-plane arm",
    )
    table.row(
        f"{'solution':<10} {'NoFastPath':>11} {'MGFastPath':>11} "
        f"{'SketchVisor':>12}"
    )
    for name, rates in throughput_matrix.items():
        table.row(
            f"{name:<10} {rates['NoFastPath']:>11.1f} "
            f"{rates['MGFastPath']:>11.1f} "
            f"{rates['SketchVisor']:>12.1f}"
        )

    for name, rates in throughput_matrix.items():
        # SketchVisor never loses to the alternatives.
        assert rates["SketchVisor"] >= rates["MGFastPath"] * 0.95
        assert rates["SketchVisor"] >= rates["NoFastPath"] * 0.95


def test_fig06_heavy_sketches_gain_most(throughput_matrix):
    """Deltoid's fast-path speedup dwarfs MRAC's (Figure 6 shape)."""
    deltoid_gain = (
        throughput_matrix["deltoid"]["SketchVisor"]
        / throughput_matrix["deltoid"]["NoFastPath"]
    )
    mrac_gain = (
        throughput_matrix["mrac"]["SketchVisor"]
        / throughput_matrix["mrac"]["NoFastPath"]
    )
    assert deltoid_gain > 3.0
    assert mrac_gain < 2.0


def test_fig06_nofastpath_collapses_below_5gbps(throughput_matrix):
    """Figure 2(b)/6: heavy sketches stall far below line rate."""
    for name in ("deltoid", "univmon", "twolevel", "revsketch"):
        assert throughput_matrix[name]["NoFastPath"] < 5.0


def test_fig06_two_core_scaling(result_table, bench_trace):
    """§7.2: parallelizing normal + fast paths across cores and merging
    in the control plane roughly doubles throughput ('two CPU cores are
    sufficient to achieve above 40 Gbps for all sketches')."""
    from repro.dataplane.host import Host, MultiCoreHost

    table = result_table(
        "fig06_two_cores",
        "§7.2 extension: 1-core vs 2-core throughput (Gbps)",
    )
    table.row(f"{'solution':<10} {'1 core':>8} {'2 cores':>8}")
    for name in ("deltoid", "flowradar", "mrac"):
        single = Host(0, SOLUTIONS[name]()).run_epoch(bench_trace)
        dual = MultiCoreHost(
            0, SOLUTIONS[name], num_cores=2
        ).run_epoch(bench_trace)
        table.row(
            f"{name:<10} {single.switch.throughput_gbps:>8.1f} "
            f"{dual.switch.throughput_gbps:>8.1f}"
        )
        assert (
            dual.switch.throughput_gbps
            > 1.5 * single.switch.throughput_gbps
        )


def test_fig06_switch_timing(benchmark, bench_trace):
    """Wall-clock of one full switch pass (Deltoid + fast path)."""
    model = CostModel.in_memory()

    def run():
        switch = SoftwareSwitch(
            Deltoid(width=256, depth=4),
            fastpath=FastPath(8192),
            cost_model=model,
        )
        return switch.process(bench_trace)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.total_packets == len(bench_trace)
