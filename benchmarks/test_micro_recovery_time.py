"""§7.5 microbenchmark: computation time of network-wide recovery.

The paper: solving the compressive-sensing problem takes 0.15 s (MRAC)
to 64 s (Deltoid) on one core, and early termination — stopping once
the flow estimates stabilize even though the unnecessary objective
terms have not converged — cuts Deltoid's recovery from 64 s to 11 s.

We reproduce the two shapes: per-sketch recovery time tracks the
counter count (MRAC cheapest, Deltoid most expensive among the
low-rank sketches), and early termination yields a multi-x speedup on
the nuclear-norm path with no accuracy loss.
"""

from __future__ import annotations

import time

import pytest

from repro.controlplane.lens import LensConfig
from repro.controlplane.recovery import RecoveryMode, recover
from repro.dataplane.host import Host
from repro.sketches.deltoid import Deltoid
from repro.sketches.mrac import MRAC
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch


SKETCHES = {
    "mrac": lambda: MRAC(width=4000),
    "revsketch": lambda: ReversibleSketch(depth=4),
    "twolevel": lambda: TwoLevelSketch(
        outer_width=512, inner_width=64
    ),
    "deltoid": lambda: Deltoid(width=512, depth=4),
}


@pytest.fixture(scope="module")
def host_reports(bench_trace):
    reports = {}
    for name, build in SKETCHES.items():
        host = Host(0, build(), fastpath_bytes=8192)
        reports[name] = host.run_epoch(bench_trace)
    return reports


def _timed_recover(report, config):
    start = time.perf_counter()
    state = recover(
        report.sketch,
        report.fastpath,
        RecoveryMode.SKETCHVISOR,
        lens_config=config,
    )
    return time.perf_counter() - start, state


def test_recovery_time_table(result_table, host_reports):
    table = result_table(
        "micro_recovery_time",
        "§7.5: recovery computation time per sketch (seconds)",
    )
    full = LensConfig(max_iterations=40, x_stability_tolerance=None)
    early = LensConfig(max_iterations=40, x_stability_tolerance=1e-2)
    table.row(
        f"{'sketch':<10} {'full':>8} {'early-stop':>11} {'iters':>6}"
    )
    timings = {}
    for name, report in host_reports.items():
        full_time, _ = _timed_recover(report, full)
        early_time, early_state = _timed_recover(report, early)
        timings[name] = (full_time, early_time)
        table.row(
            f"{name:<10} {full_time:>8.2f} {early_time:>11.2f} "
            f"{early_state.lens_iterations:>6}"
        )

    # Shape: MRAC's recovery is the cheapest (fewest counters; paper
    # 0.15 s), Deltoid the most expensive of the low-rank sketches
    # (paper 64 s) — absolute times differ, ordering holds.
    assert timings["mrac"][0] <= min(
        t for name, (t, _e) in timings.items() if name != "mrac"
    )
    assert timings["deltoid"][0] >= timings["revsketch"][0]


def test_early_termination_speedup(host_reports):
    """§7.5: early termination cuts the nuclear-path solve time
    substantially (paper: 64 s -> 11 s for Deltoid) while the flow
    estimates stay put."""
    report = host_reports["deltoid"]
    full = LensConfig(max_iterations=40, x_stability_tolerance=None)
    early = LensConfig(max_iterations=40, x_stability_tolerance=1e-2)
    full_time, full_state = _timed_recover(report, full)
    early_time, early_state = _timed_recover(report, early)
    assert early_time < 0.7 * full_time
    # Estimates agree within the Lemma 4.1 slack.
    for flow, estimate in early_state.flow_estimates.items():
        entry = report.fastpath.entries[flow]
        assert (
            entry.lower_bound - 1.0
            <= estimate
            <= entry.upper_bound + 1.0
        )
        full_estimate = full_state.flow_estimates[flow]
        # Agreement scale: the Lemma 4.1 box width — within it, both
        # estimates are equally admissible; outside it, something is
        # wrong.
        width = entry.upper_bound - entry.lower_bound
        assert abs(estimate - full_estimate) <= 0.5 * width + 1.0


def test_recovery_timing(benchmark, host_reports):
    report = host_reports["twolevel"]

    def run():
        return recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )

    state = benchmark.pedantic(run, rounds=1, iterations=1)
    assert state.flow_estimates
