#!/usr/bin/env python
"""Fail-over soak harness: sustained aggregator chaos at scale.

Drives the real-socket control plane for a multi-epoch soak — 256
hosts by default, 20 epochs — under the ``failover_plan`` chaos mix
(seeded ``agg_crash`` / ``agg_hang`` strikes on the aggregator tier
plus ``conn_reset`` noise on the host connections) and records, per
epoch, the fail-over outcomes: detection and recovery latencies,
redelivery volume, and — the conservation invariant — that every host
report is accounted for (delivered or booked missing, never dropped
on the floor).

Acceptance gates (full run; smoke records but does not gate):

- ``unaccounted_host_epochs`` must be **0** — every epoch satisfies
  ``hosts_reported + missing == hosts``;
- ``redelivery_overhead`` — redelivered copies per delivered
  host-epoch — must stay **<= 0.5** (fail-over re-ships dead shards,
  it does not drown the tier in duplicates);
- at least one aggregator fail-over actually fired (the soak is
  vacuous otherwise).

Usage::

    PYTHONPATH=src python benchmarks/bench_failover.py          # full soak
    PYTHONPATH=src python benchmarks/bench_failover.py --smoke  # CI quick pass
"""

from __future__ import annotations

import argparse
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_cluster import (  # noqa: E402
    append_trajectory,
    build_reports,
    git_sha,
)
from repro.cluster import ClusterCollector, ClusterConfig  # noqa: E402
from repro.common.errors import QuorumError  # noqa: E402
from repro.controlplane.controller import Controller  # noqa: E402
from repro.controlplane.recovery import RecoveryMode  # noqa: E402
from repro.faults import FaultInjector, failover_plan  # noqa: E402
from repro.telemetry.recorder import FlightRecorder  # noqa: E402

REDELIVERY_OVERHEAD_CEILING = 0.5


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(
        0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    )
    return ordered[rank]


def run_soak(
    num_hosts: int,
    epochs: int,
    flows: int,
    seed: int,
    recorder: FlightRecorder | None = None,
) -> dict:
    """The soak loop: one collector, ``epochs`` chaotic epochs."""
    reports = build_reports(num_hosts, flows)
    injector = FaultInjector(failover_plan(seed=seed))
    collector = ClusterCollector(
        ClusterConfig(
            epoch_deadline=120.0,
            max_inflight=64,
            backoff_base=0.002,
            connect_timeout=2.0,
            ack_timeout=2.0,
        ),
        injector=injector,
    )
    controller = Controller(RecoveryMode.SKETCHVISOR, quorum=0.25)

    per_epoch = []
    detect_latencies: list[float] = []
    recovery_latencies: list[float] = []
    totals = {
        "failovers": 0,
        "redeliveries": 0,
        "redelivery_dups": 0,
        "unrecovered_host_epochs": 0,
        "missing_host_epochs": 0,
        "delivered_host_epochs": 0,
        "unaccounted_host_epochs": 0,
        "quorum_failures": 0,
    }
    started = time.perf_counter()
    for epoch in range(epochs):
        collection = collector.collect(reports, epoch)
        stats = collection.stats
        records = list(collection.failovers)
        unaccounted = num_hosts - (
            collection.hosts_reported + len(collection.missing_hosts)
        )
        network = None
        try:
            network = controller.aggregate(
                collection.reports,
                expected_hosts=num_hosts,
                missing_hosts=collection.missing_hosts,
                epoch=epoch,
                reported_hosts=collection.hosts_reported,
            )
        except QuorumError:
            totals["quorum_failures"] += 1
        if recorder is not None:
            recorder.record_epoch_events(
                epoch, collection=collection, network=network
            )
        totals["failovers"] += len(records)
        totals["redeliveries"] += stats.redeliveries
        totals["redelivery_dups"] += stats.redelivery_dups
        totals["unrecovered_host_epochs"] += sum(
            len(record.unrecovered_hosts) for record in records
        )
        totals["missing_host_epochs"] += len(collection.missing_hosts)
        totals["delivered_host_epochs"] += collection.hosts_reported
        totals["unaccounted_host_epochs"] += abs(unaccounted)
        detect_latencies.extend(
            record.detect_seconds for record in records
        )
        recovery_latencies.extend(
            record.recovery_seconds
            for record in records
            if record.recovery_seconds is not None
        )
        per_epoch.append(
            {
                "epoch": epoch,
                "delivered": collection.hosts_reported,
                "missing": len(collection.missing_hosts),
                "unaccounted": unaccounted,
                "failovers": len(records),
                "failover_kinds": sorted(
                    record.kind for record in records
                ),
                "redeliveries": stats.redeliveries,
                "redelivery_dups": stats.redelivery_dups,
                "agg_crashes": stats.agg_crashes,
                "agg_hangs": stats.agg_hangs,
                "conn_resets": stats.conn_resets,
                "degraded": bool(
                    network is not None
                    and network.degraded is not None
                ),
            }
        )
        print(
            f"epoch {epoch:3d}: {collection.hosts_reported:3d}/"
            f"{num_hosts} delivered, {len(records)} failover(s), "
            f"{stats.redeliveries} redelivered, "
            f"{len(collection.missing_hosts)} missing"
        )
    elapsed = time.perf_counter() - started

    delivered = totals["delivered_host_epochs"]
    summary = {
        "seconds": elapsed,
        "failovers": totals["failovers"],
        "redeliveries": totals["redeliveries"],
        "redelivery_dups": totals["redelivery_dups"],
        "unrecovered_host_epochs": totals["unrecovered_host_epochs"],
        "missing_host_epochs": totals["missing_host_epochs"],
        "unaccounted_host_epochs": totals["unaccounted_host_epochs"],
        "quorum_failures": totals["quorum_failures"],
        "redelivery_overhead": (
            totals["redeliveries"] / delivered if delivered else 0.0
        ),
        "detect_p50_seconds": percentile(detect_latencies, 0.50),
        "detect_p95_seconds": percentile(detect_latencies, 0.95),
        "detect_max_seconds": (
            max(detect_latencies) if detect_latencies else 0.0
        ),
        "recovery_p50_seconds": percentile(recovery_latencies, 0.50),
        "recovery_p95_seconds": percentile(recovery_latencies, 0.95),
        "recovery_max_seconds": (
            max(recovery_latencies) if recovery_latencies else 0.0
        ),
        "recovery_mean_seconds": (
            statistics.fmean(recovery_latencies)
            if recovery_latencies
            else 0.0
        ),
    }
    return {"per_epoch": per_epoch, "summary": summary}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--hosts", type=int, default=256)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--flows", type=int, default=800)
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny soak, no gating (CI quick pass)",
    )
    parser.add_argument(
        "--recorder-out",
        type=Path,
        default=None,
        metavar="FILE.json",
        help="dump a flight-recorder artifact of the soak's failover/"
        "fault events to FILE",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_failover.json",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.hosts = 32
        args.epochs = 4
        args.flows = 300

    recorder = (
        FlightRecorder(capacity=4096)
        if args.recorder_out is not None
        else None
    )
    outcome = run_soak(
        args.hosts, args.epochs, args.flows, args.seed, recorder
    )
    summary = outcome["summary"]

    print(
        f"soak: {args.epochs} epoch(s) x {args.hosts} host(s) in "
        f"{summary['seconds']:.1f}s"
    )
    print(
        f"  failovers         : {summary['failovers']} "
        f"({summary['unrecovered_host_epochs']} unrecovered "
        f"host-epoch(s), {summary['quorum_failures']} quorum "
        f"failure(s))"
    )
    print(
        f"  detection latency : p50 {summary['detect_p50_seconds']:.2f}s "
        f"p95 {summary['detect_p95_seconds']:.2f}s "
        f"max {summary['detect_max_seconds']:.2f}s"
    )
    print(
        f"  recovery latency  : p50 {summary['recovery_p50_seconds']:.2f}s "
        f"p95 {summary['recovery_p95_seconds']:.2f}s "
        f"max {summary['recovery_max_seconds']:.2f}s"
    )
    print(
        f"  redelivery        : {summary['redeliveries']} "
        f"({summary['redelivery_dups']} dup), overhead "
        f"{summary['redelivery_overhead']:.3f} per delivered "
        f"host-epoch (ceiling {REDELIVERY_OVERHEAD_CEILING})"
    )
    print(
        f"  unaccounted       : "
        f"{summary['unaccounted_host_epochs']} host-epoch(s) "
        f"(must be 0)"
    )

    if recorder is not None:
        recorder.dump(args.recorder_out, reason="failover_soak")
        print(
            f"dumped {len(recorder.events())} recorder event(s) to "
            f"{args.recorder_out}"
        )

    append_trajectory(
        args.output,
        {
            "timestamp": datetime.now(timezone.utc).isoformat(),
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "smoke": args.smoke,
            "hosts": args.hosts,
            "epochs": args.epochs,
            "flows": args.flows,
            "seed": args.seed,
            "per_epoch": outcome["per_epoch"],
            "summary": summary,
        },
    )
    print(f"appended to {args.output}")

    if args.smoke:
        # A 4-epoch, 32-host smoke may not fire a single strike;
        # conservation and overhead gate only on the full soak.
        return 0
    ok = (
        summary["unaccounted_host_epochs"] == 0
        and summary["failovers"] >= 1
        and summary["redelivery_overhead"]
        <= REDELIVERY_OVERHEAD_CEILING
    )
    print("soak " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
