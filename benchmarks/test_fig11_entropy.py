"""Figure 11: entropy estimation error across recovery arms.

Paper shape: NR/LR/UR inflate the error; SketchVisor lands at (or even
slightly below) Ideal, since the recovery can denoise sketch-induced
error while restoring the fast path's contribution.
"""

from __future__ import annotations

import pytest

from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import SketchVisorPipeline
from repro.tasks.entropy import EntropyTask

SOLUTIONS = ["flowradar", "univmon"]

ARMS: list[tuple[str, DataPlaneMode, RecoveryMode]] = [
    ("NR", DataPlaneMode.SKETCHVISOR, RecoveryMode.NO_RECOVERY),
    ("LR", DataPlaneMode.SKETCHVISOR, RecoveryMode.LOWER),
    ("UR", DataPlaneMode.SKETCHVISOR, RecoveryMode.UPPER),
    ("SketchVisor", DataPlaneMode.SKETCHVISOR, RecoveryMode.SKETCHVISOR),
    ("Ideal", DataPlaneMode.IDEAL, RecoveryMode.NO_RECOVERY),
]


@pytest.fixture(scope="module")
def entropy_errors(bench_trace, bench_truth):
    errors = {}
    for solution in SOLUTIONS:
        task = EntropyTask(solution)
        for arm, dataplane, recovery in ARMS:
            pipeline = SketchVisorPipeline(
                task, dataplane=dataplane, recovery=recovery
            )
            result = pipeline.run_epoch(bench_trace, bench_truth)
            errors[(solution, arm)] = result.score.relative_error
    return errors


def test_fig11_table(result_table, entropy_errors, bench_truth):
    table = result_table(
        "fig11_entropy",
        f"Figure 11: entropy relative error "
        f"(true H = {bench_truth.entropy:.2f} bits)",
    )
    table.row(
        f"{'solution':<10}"
        + "".join(f"{arm:>13}" for arm, _d, _r in ARMS)
    )
    for solution in SOLUTIONS:
        table.row(
            f"{solution:<10}"
            + "".join(
                f"{entropy_errors[(solution, arm)]:>12.1%} "
                for arm, _d, _r in ARMS
            )
        )


@pytest.mark.parametrize("solution", SOLUTIONS)
def test_fig11_shape(entropy_errors, solution):
    sketchvisor = entropy_errors[(solution, "SketchVisor")]
    nr = entropy_errors[(solution, "NR")]
    assert sketchvisor <= nr + 0.02
    assert sketchvisor < 0.25


def test_fig11_timing(benchmark, bench_trace, bench_truth):
    task = EntropyTask("flowradar")

    def run():
        return SketchVisorPipeline(task).run_epoch(
            bench_trace, bench_truth
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.relative_error < 0.5
