"""Figure 12: network-wide recovery accuracy vs number of hosts.

Paper shape: accuracy improves with deployment size — UnivMon HH recall
climbs from 65% (1 host) to >99% (4+ hosts); cardinality and entropy
errors shrink or stay flat.  More hosts means smaller per-host shards
(less overflow per switch) and more recovery constraints after merging.
"""

from __future__ import annotations

import pytest

from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.entropy import EntropyTask
from repro.tasks.heavy_hitter import HeavyHitterTask

HOST_COUNTS = [1, 2, 4, 8, 16]


#: Per-host UnivMon tracker slots.  The paper's Figure 12 ramp (65%
#: recall at one host -> >99% at four) comes from per-host capacity:
#: one host's tracker cannot hold every network-wide heavy hitter, but
#: sharding splits them across hosts.  We size the tracker below the
#: heavy-hitter count to reproduce that regime.
_HEAP_SIZE = 16
_NUM_TRUE_HH = 48


@pytest.fixture(scope="module")
def sweep(large_trace, large_truth):
    # Threshold chosen so there are exactly _NUM_TRUE_HH heavy hitters
    # (twice the per-host tracker capacity).
    sizes = sorted(large_truth.flow_bytes.values(), reverse=True)
    threshold = sizes[_NUM_TRUE_HH] + 1.0
    rows = {}
    for hosts in HOST_COUNTS:
        config = PipelineConfig(num_hosts=hosts)
        hh = SketchVisorPipeline(
            HeavyHitterTask(
                "univmon",
                threshold=threshold,
                sketch_params={
                    "level_widths": (2048, 1024, 512, 256),
                    "depth": 5,
                    "heap_size": _HEAP_SIZE,
                },
            ),
            config=config,
        ).run_epoch(large_trace, large_truth)
        card = SketchVisorPipeline(
            CardinalityTask("lc"), config=config
        ).run_epoch(large_trace, large_truth)
        entropy = SketchVisorPipeline(
            EntropyTask("univmon"), config=config
        ).run_epoch(large_trace, large_truth)
        rows[hosts] = (
            hh.score.recall,
            hh.score.precision,
            card.score.relative_error,
            entropy.score.relative_error,
        )
    return rows


def test_fig12_table(result_table, sweep):
    table = result_table(
        "fig12_network_wide",
        "Figure 12: accuracy vs number of hosts (UnivMon HH, LC "
        "cardinality, UnivMon entropy)",
    )
    table.row(
        f"{'hosts':>6} {'HH recall':>10} {'HH prec':>9} "
        f"{'card err':>9} {'entropy err':>12}"
    )
    for hosts, (recall, precision, card, entropy) in sweep.items():
        table.row(
            f"{hosts:>6} {recall:>9.1%} {precision:>8.1%} "
            f"{card:>8.1%} {entropy:>11.1%}"
        )


def test_fig12_recall_ramps_with_hosts(sweep):
    """The paper's headline: one host misses heavy hitters its tracker
    cannot hold; four hosts recover nearly all of them."""
    first = sweep[HOST_COUNTS[0]][0]
    last = sweep[HOST_COUNTS[-1]][0]
    assert first < 0.9
    assert last > first


def test_fig12_many_hosts_high_accuracy(sweep):
    """4+ hosts: recall above 90% (paper: >99%)."""
    for hosts in (4, 8, 16):
        assert sweep[hosts][0] >= 0.9


def test_fig12_timing(benchmark, large_trace, large_truth):
    threshold = 0.004 * large_truth.total_bytes
    task = HeavyHitterTask("univmon", threshold=threshold)

    def run():
        return SketchVisorPipeline(
            task, config=PipelineConfig(num_hosts=8)
        ).run_epoch(large_trace, large_truth)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.network.num_hosts == 8
