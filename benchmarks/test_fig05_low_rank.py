"""Figure 5: low-rank approximation error of sketch matrices.

The paper: RevSketch, Deltoid, and TwoLevel achieve <10% relative
error keeping ~50% / ~32% / ~15% of singular values; Count-Min's error
falls linearly (no exploitable rank structure).  The benchmark fills
each sketch from the same trace and regenerates the error curves.
"""

from __future__ import annotations

import numpy as np

from repro.controlplane.rank_analysis import (
    low_rank_error_curve,
    ratio_for_error,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.deltoid import Deltoid
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch

SKETCHES = {
    "countmin": lambda: CountMinSketch(width=4000, depth=4),
    "revsketch": lambda: ReversibleSketch(depth=4),
    "deltoid": lambda: Deltoid(width=512, depth=4),
    "twolevel": lambda: TwoLevelSketch(
        outer_width=512, inner_width=64
    ),
}


def _filled(build, trace):
    sketch = build()
    for packet in trace:
        sketch.update(packet.flow, packet.size)
    return sketch


def test_fig05_error_curves(result_table, bench_trace, benchmark):
    table = result_table(
        "fig05_low_rank",
        "Figure 5: low-rank approximation error vs ratio of top "
        "singular values",
    )
    ratios = [i / 10 for i in range(11)]
    table.row(
        f"{'sketch':<10}"
        + "".join(f"{ratio:>7.1f}" for ratio in ratios)
    )
    matrices = {
        name: _filled(build, bench_trace).to_matrix()
        for name, build in SKETCHES.items()
    }

    curves = {}
    for name, matrix in matrices.items():
        curves[name] = dict(low_rank_error_curve(matrix, ratios))
        table.row(
            f"{name:<10}"
            + "".join(
                f"{curves[name][ratio]:>7.2f}" for ratio in ratios
            )
        )

    needed = {
        name: ratio_for_error(matrix, 0.10)
        for name, matrix in matrices.items()
    }
    table.row("")
    table.row("ratio of singular values for <10% error:")
    for name, ratio in needed.items():
        table.row(f"  {name:<10} {ratio:.2f}")

    # Paper shape: Deltoid and TwoLevel compress into a small fraction
    # of their singular values; Count-Min has essentially no low-rank
    # structure (error ~linear in ratio).  Deviation note: with the
    # 32-bit-fingerprint RevSketch used here (4 x 4096, rank 4), the
    # reversible sketch behaves like Count-Min rather than reaching the
    # paper's ~50% — see EXPERIMENTS.md.
    assert needed["twolevel"] <= 0.35
    assert needed["deltoid"] <= 0.35
    assert needed["countmin"] > 0.7
    half = curves["countmin"][0.5]
    assert 0.3 < half < 0.9  # roughly linear decay

    # Time the SVD analysis itself.
    benchmark(lambda: low_rank_error_curve(matrices["deltoid"], ratios))
