"""Figure 8: DDoS and superspreader accuracy across recovery arms.

Paper shape: NR detects nothing (the attack traffic rides the fast
path); LR and UR give identical results (host counting ignores flow
sizes); SketchVisor reaches >90% recall / >84% precision for DDoS and
near-perfect superspreader detection.
"""

from __future__ import annotations

import pytest

from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.tasks.ddos import DDoSTask
from repro.tasks.superspreader import SuperspreaderTask
from repro.traffic.anomalies import (
    inject_ddos_victims,
    inject_superspreaders,
)
from repro.traffic.groundtruth import GroundTruth

ARMS: list[tuple[str, DataPlaneMode, RecoveryMode]] = [
    ("NR", DataPlaneMode.SKETCHVISOR, RecoveryMode.NO_RECOVERY),
    ("LR", DataPlaneMode.SKETCHVISOR, RecoveryMode.LOWER),
    ("UR", DataPlaneMode.SKETCHVISOR, RecoveryMode.UPPER),
    ("SketchVisor", DataPlaneMode.SKETCHVISOR, RecoveryMode.SKETCHVISOR),
    ("Ideal", DataPlaneMode.IDEAL, RecoveryMode.NO_RECOVERY),
]

THRESHOLD = 120
PARAMS = {"inner_width": 256}


@pytest.fixture(scope="module")
def ddos_scores(bench_trace):
    trace, _victims = inject_ddos_victims(
        bench_trace, num_victims=3, sources_per_victim=300
    )
    truth = GroundTruth.from_trace(trace)
    task = DDoSTask(threshold=THRESHOLD, sketch_params=PARAMS)
    scores = {}
    for arm, dataplane, recovery in ARMS:
        pipeline = SketchVisorPipeline(
            task, dataplane=dataplane, recovery=recovery
        )
        scores[arm] = pipeline.run_epoch(trace, truth).score
    return scores


@pytest.fixture(scope="module")
def ss_scores(bench_trace):
    trace, _spreaders = inject_superspreaders(
        bench_trace, num_spreaders=3, destinations_per_spreader=300
    )
    truth = GroundTruth.from_trace(trace)
    task = SuperspreaderTask(threshold=THRESHOLD, sketch_params=PARAMS)
    scores = {}
    for arm, dataplane, recovery in ARMS:
        pipeline = SketchVisorPipeline(
            task, dataplane=dataplane, recovery=recovery
        )
        scores[arm] = pipeline.run_epoch(trace, truth).score
    return scores


def _print(table, label, scores):
    table.row(label)
    table.row(
        f"  {'arm':<12} {'recall':>8} {'precision':>10} {'rel.err':>9}"
    )
    for arm, score in scores.items():
        table.row(
            f"  {arm:<12} {score.recall:>7.0%} "
            f"{score.precision:>9.0%} {score.relative_error:>8.1%}"
        )


def test_fig08_tables(result_table, ddos_scores, ss_scores):
    table = result_table(
        "fig08_ddos_ss",
        "Figure 8: DDoS / superspreader accuracy (TwoLevel)",
    )
    _print(table, "DDoS detection:", ddos_scores)
    table.row("")
    _print(table, "Superspreader detection:", ss_scores)


def test_fig08_ddos_shape(ddos_scores):
    assert ddos_scores["SketchVisor"].recall >= 0.9
    assert ddos_scores["SketchVisor"].precision >= 0.8
    assert (
        ddos_scores["SketchVisor"].recall >= ddos_scores["NR"].recall
    )


def test_fig08_ss_shape(ss_scores):
    assert ss_scores["SketchVisor"].recall >= 0.9
    assert ss_scores["SketchVisor"].precision >= 0.8


def test_fig08_lr_ur_identical(ddos_scores):
    """LR and UR differ only in flow-size estimates, which host
    counting ignores — the paper notes identical detection results."""
    assert ddos_scores["LR"].recall == ddos_scores["UR"].recall
    assert ddos_scores["LR"].precision == ddos_scores["UR"].precision


def test_fig08_low_observability_regime(result_table, bench_trace):
    """The paper's NR-detects-nothing regime: attack flows so short
    (2 packets per source) that the overloaded normal path sees only a
    fraction of the sources, and victims hover at the threshold.  All
    partial-information arms degrade; recovery never does worse."""
    trace, victims = inject_ddos_victims(
        bench_trace,
        num_victims=3,
        sources_per_victim=200,
        packets_per_source=2,
    )
    truth = GroundTruth.from_trace(trace)
    task = DDoSTask(threshold=150, sketch_params=PARAMS)
    table = result_table(
        "fig08_low_observability",
        "Figure 8 regime note: 2-packet flood flows, threshold at 75% "
        "of true fan-in",
    )
    table.row(
        f"{'arm':<12} {'recall':>8} {'precision':>10}"
    )
    scores = {}
    for arm, dataplane, recovery in ARMS:
        pipeline = SketchVisorPipeline(
            task, dataplane=dataplane, recovery=recovery
        )
        scores[arm] = pipeline.run_epoch(trace, truth).score
        table.row(
            f"{arm:<12} {scores[arm].recall:>7.0%} "
            f"{scores[arm].precision:>9.0%}"
        )
    assert scores["SketchVisor"].recall >= scores["NR"].recall
    assert scores["Ideal"].recall >= scores["NR"].recall


def test_fig08_timing(benchmark, bench_trace):
    trace, _victims = inject_ddos_victims(
        bench_trace, num_victims=2, sources_per_victim=200
    )
    truth = GroundTruth.from_trace(trace)
    task = DDoSTask(threshold=THRESHOLD, sketch_params=PARAMS)

    def run():
        return SketchVisorPipeline(task).run_epoch(trace, truth)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.recall >= 0.5
