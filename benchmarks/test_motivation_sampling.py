"""§1 motivation: why not just sample?

Open vSwitch ships NetFlow/sFlow sampling; the paper's opening argument
is that "packet sampling inherently suffers from low measurement
accuracy and achieves only coarse-grained measurement".  This bench
quantifies the claim on the same workload the figures use: plain 1%
sampling vs sample-and-hold [19] vs SketchVisor (FlowRadar normal path).
"""

from __future__ import annotations

import pytest

from repro.baselines.sample_and_hold import SampleAndHold
from repro.baselines.sampling import SampledNetFlow
from repro.framework.pipeline import SketchVisorPipeline
from repro.metrics import precision, recall, relative_error
from repro.tasks.heavy_hitter import HeavyHitterTask


@pytest.fixture(scope="module")
def contenders(bench_trace, bench_truth):
    threshold = 0.005 * bench_truth.total_bytes
    true_hh = {
        flow: float(size)
        for flow, size in bench_truth.heavy_hitters(threshold).items()
    }

    sampler = SampledNetFlow(sample_rate=0.01, seed=3)
    sampler.process(bench_trace)

    snh = SampleAndHold.for_threshold(threshold, seed=3)
    snh.process(bench_trace)

    task = HeavyHitterTask("flowradar", threshold=threshold)
    sketchvisor = SketchVisorPipeline(task).run_epoch(
        bench_trace, bench_truth
    )

    return {
        "netflow-1%": (
            sampler.heavy_hitters(threshold),
            len(sampler.sampled) * 32,
        ),
        "sample&hold": (
            snh.heavy_hitters(threshold),
            snh.memory_bytes(),
        ),
        "sketchvisor": (
            sketchvisor.answer,
            task.create_sketch().memory_bytes() + 8192,
        ),
    }, true_hh


def test_motivation_table(result_table, contenders):
    answers, true_hh = contenders
    table = result_table(
        "motivation_sampling",
        "§1 motivation: sampling vs SketchVisor on heavy hitters",
    )
    table.row(
        f"{'system':<12} {'recall':>8} {'precision':>10} "
        f"{'rel.err':>9} {'memory KB':>10}"
    )
    for name, (found, memory) in answers.items():
        table.row(
            f"{name:<12} {recall(found, true_hh):>7.0%} "
            f"{precision(found, true_hh):>9.0%} "
            f"{relative_error(found, true_hh):>8.1%} "
            f"{memory / 1024:>10.0f}"
        )


def test_motivation_sampling_inaccurate(contenders):
    """Plain sampling's relative error dwarfs SketchVisor's."""
    answers, true_hh = contenders
    netflow_error = relative_error(answers["netflow-1%"][0], true_hh)
    sketchvisor_error = relative_error(
        answers["sketchvisor"][0], true_hh
    )
    assert sketchvisor_error < 0.1
    assert netflow_error > 2 * sketchvisor_error


def test_motivation_sketchvisor_best_recall(contenders):
    answers, true_hh = contenders
    sv_recall = recall(answers["sketchvisor"][0], true_hh)
    assert sv_recall >= recall(answers["netflow-1%"][0], true_hh)
    assert sv_recall >= 0.95


def test_motivation_timing(benchmark, bench_trace):
    sampler = SampledNetFlow(sample_rate=0.01, seed=5)
    benchmark.pedantic(
        lambda: sampler.process(bench_trace), rounds=1, iterations=1
    )
