#!/usr/bin/env python
"""Checkpoint overhead harness: supervised vs plain data plane.

Times the scalar data plane with durability off (the historical path)
against the supervised engine snapshotting at the default interval, and
appends the overhead ratio to a JSON trajectory file.  The acceptance
budget is **<= 10% throughput cost at the default interval** — the
`within_budget` field records the verdict per run.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py           # full run
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --smoke   # CI quick pass

A sweep over smaller intervals rides along so the trajectory shows how
the cost scales as snapshots get denser (the knob ``--checkpoint-every``
exposes to users).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dataplane.host import Host  # noqa: E402
from repro.durability import (  # noqa: E402
    DEFAULT_CHECKPOINT_EVERY,
    Supervisor,
)
from repro.sketches.countmin import CountMinSketch  # noqa: E402
from repro.traffic.generator import (  # noqa: E402
    TraceConfig,
    generate_trace,
)


def make_host():
    return Host(
        host_id=0,
        sketch=CountMinSketch(seed=1),
        fastpath_bytes=8192,
    )


def time_plain(trace, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        host = make_host()
        start = time.perf_counter()
        host.run_epoch(trace)
        best = min(best, time.perf_counter() - start)
    return best


def time_supervised(trace, every: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as directory:
            supervisor = Supervisor(
                directory, checkpoint_every=every
            )
            host = make_host()
            start = time.perf_counter()
            supervisor.run_epoch([host], [trace], None, 0)
            best = min(best, time.perf_counter() - start)
    return best


def git_sha() -> str:
    """Short commit SHA; ``"unknown"`` when git is unavailable, so
    every entry is provenance-stamped (loaders warn on "unknown")."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        return sha or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_trajectory(path: Path, entry: dict) -> None:
    trajectory = {"runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(
                loaded.get("runs"), list
            ):
                trajectory = loaded
        except json.JSONDecodeError:
            pass
    trajectory["runs"].append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, default=10_500)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small trace, one repeat (CI quick pass)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=REPO_ROOT / "BENCH_checkpoint.json",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.flows = 2_000
        args.repeats = 1

    trace = generate_trace(
        TraceConfig(num_flows=args.flows, seed=args.seed)
    )
    packets = len(trace)
    print(f"trace: {packets} packets / {args.flows} flows")

    plain = time_plain(trace, args.repeats)
    print(
        f"plain        : {plain:.3f}s "
        f"({packets / plain:,.0f} pkt/s)"
    )

    intervals = [DEFAULT_CHECKPOINT_EVERY, 8192, 2048]
    sweep = {}
    for every in intervals:
        elapsed = time_supervised(trace, every, args.repeats)
        overhead = elapsed / plain - 1.0
        sweep[str(every)] = {
            "seconds": elapsed,
            "packets_per_sec": packets / elapsed,
            "overhead": overhead,
        }
        print(
            f"every={every:>6}: {elapsed:.3f}s "
            f"({packets / elapsed:,.0f} pkt/s, "
            f"overhead {overhead:+.1%})"
        )

    default_overhead = sweep[str(DEFAULT_CHECKPOINT_EVERY)]["overhead"]
    within_budget = default_overhead <= 0.10
    print(
        f"default interval ({DEFAULT_CHECKPOINT_EVERY}): "
        f"{default_overhead:+.1%} overhead — "
        f"{'WITHIN' if within_budget else 'OVER'} the 10% budget"
    )

    append_trajectory(
        args.output,
        {
            "timestamp": datetime.now(timezone.utc).isoformat(),
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "smoke": args.smoke,
            "packets": packets,
            "flows": args.flows,
            "repeats": args.repeats,
            "plain_seconds": plain,
            "checkpoint": sweep,
            "default_every": DEFAULT_CHECKPOINT_EVERY,
            "default_overhead": default_overhead,
            "within_budget": within_budget,
        },
    )
    print(f"appended to {args.output}")
    if args.smoke:
        # The smoke trace is too small for a stable overhead ratio
        # (fixed per-epoch costs dominate); only the full run gates.
        return 0
    return 0 if within_budget else 1


if __name__ == "__main__":
    raise SystemExit(main())
