"""Figure 16: the fast path vs the original Misra-Gries algorithm.

(a) number of O(k) kick-out passes: Misra-Gries evicts one flow per
    pass, Algorithm 1 amortizes several — MG performs substantially
    more passes (an order of magnitude on the paper's CAIDA traces);
(b) per-flow error bounds of the top-k flows: MG's upper bound shares
    the global decrement slack and reaches ~35% relative error at
    k = 100, while the three-counter bounds stay under ~2%.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath


@pytest.fixture(scope="module")
def trackers(large_trace):
    sv = FastPath(8192)
    mg = MisraGriesTopK(8192)
    for packet in large_trace:
        sv.update(packet.flow, packet.size)
        mg.update(packet.flow, packet.size)
    return sv, mg


def test_fig16a_kickout_counts(result_table, trackers, large_trace):
    sv, mg = trackers
    table = result_table(
        "fig16a_kickouts",
        "Figure 16(a): number of O(k) kick-out passes",
    )
    table.row(f"{'algorithm':<14} {'kick-outs':>10} {'evicted/pass':>13}")
    table.row(
        f"{'MGFastPath':<14} {mg.num_kickouts:>10} "
        f"{mg.num_evicted / max(mg.num_kickouts, 1):>13.2f}"
    )
    table.row(
        f"{'SketchVisor':<14} {sv.num_kickouts:>10} "
        f"{sv.num_evicted / max(sv.num_kickouts, 1):>13.2f}"
    )
    assert mg.num_kickouts > sv.num_kickouts
    # Multi-eviction amortization is the mechanism.
    assert (
        sv.num_evicted / max(sv.num_kickouts, 1)
        > mg.num_evicted / max(mg.num_kickouts, 1)
    )


def test_fig16b_topk_error_bounds(result_table, trackers, large_trace):
    sv, mg = trackers
    truth = large_trace.flow_sizes()
    table = result_table(
        "fig16b_topk_errors",
        "Figure 16(b): relative error of lower/upper bounds vs top-k",
    )
    table.row(
        f"{'k':>5} {'MG lower':>9} {'MG upper':>9} "
        f"{'SV lower':>9} {'SV upper':>9}"
    )

    def bound_errors(tracker, k):
        ranked = sorted(
            tracker.bounds().items(),
            key=lambda item: item[1][0],
            reverse=True,
        )[:k]
        lows, highs = [], []
        for flow, (low, high) in ranked:
            true_size = truth.get(flow, 0)
            if true_size <= 0:
                continue
            lows.append(abs(low - true_size) / true_size)
            highs.append(abs(high - true_size) / true_size)
        return float(np.mean(lows)), float(np.mean(highs))

    sv_final, mg_final = {}, {}
    for k in (10, 25, 50, 100):
        mg_low, mg_high = bound_errors(mg, k)
        sv_low, sv_high = bound_errors(sv, k)
        mg_final[k] = (mg_low, mg_high)
        sv_final[k] = (sv_low, sv_high)
        table.row(
            f"{k:>5} {mg_low:>8.1%} {mg_high:>8.1%} "
            f"{sv_low:>8.1%} {sv_high:>8.1%}"
        )

    # Paper shape: SV bounds stay tight for the upper ranks (<2% at
    # k=50 here; the paper holds <2% to k=100 on CAIDA's deeper heavy
    # tail); MG's bounds blow up as k grows — its shared decrement
    # slack dominates every non-giant flow.
    assert sv_final[50][0] < 0.02 and sv_final[50][1] < 0.02
    assert mg_final[50][0] > 10 * max(sv_final[50][0], 1e-4)
    assert mg_final[100][1] > 3 * sv_final[100][1]
    assert mg_final[100][1] > mg_final[10][1]


def test_fig16_update_throughput(benchmark, bench_trace):
    """Wall-clock comparison of one full pass of each tracker."""

    def run_both():
        sv = FastPath(8192)
        mg = MisraGriesTopK(8192)
        for packet in bench_trace:
            sv.update(packet.flow, packet.size)
            mg.update(packet.flow, packet.size)
        return sv, mg

    sv, mg = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert sv.num_updates == mg.num_updates == len(bench_trace)
