"""Figure 7: heavy hitter / heavy changer accuracy across recovery arms.

Paper shape (per solution): NR recall collapses (UnivMon HH 8.15%) with
~100% relative error; LR under-reports; UR over-reports (low
precision); SketchVisor tracks Ideal on recall, precision, and error.
"""

from __future__ import annotations

import pytest

from repro.controlplane.lens import LensConfig
from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.anomalies import inject_heavy_changes

SOLUTIONS = ["flowradar", "revsketch", "univmon", "deltoid"]

ARMS: list[tuple[str, DataPlaneMode, RecoveryMode]] = [
    ("NR", DataPlaneMode.SKETCHVISOR, RecoveryMode.NO_RECOVERY),
    ("LR", DataPlaneMode.SKETCHVISOR, RecoveryMode.LOWER),
    ("UR", DataPlaneMode.SKETCHVISOR, RecoveryMode.UPPER),
    ("SketchVisor", DataPlaneMode.SKETCHVISOR, RecoveryMode.SKETCHVISOR),
    ("Ideal", DataPlaneMode.IDEAL, RecoveryMode.NO_RECOVERY),
]

_FAST_LENS = LensConfig(max_iterations=15)


def _config():
    return PipelineConfig(lens=_FAST_LENS)


@pytest.fixture(scope="module")
def hh_scores(bench_trace, bench_truth):
    threshold = 0.005 * bench_truth.total_bytes
    scores = {}
    for solution in SOLUTIONS:
        task = HeavyHitterTask(solution, threshold=threshold)
        for arm, dataplane, recovery in ARMS:
            pipeline = SketchVisorPipeline(
                task,
                dataplane=dataplane,
                recovery=recovery,
                config=_config(),
            )
            result = pipeline.run_epoch(bench_trace, bench_truth)
            scores[(solution, arm)] = result.score
    return scores


def test_fig07_hh_table(result_table, hh_scores):
    table = result_table(
        "fig07_heavy_hitter",
        "Figure 7(a-c): heavy hitter accuracy per recovery arm",
    )
    table.row(
        f"{'solution':<10} {'arm':<12} {'recall':>8} "
        f"{'precision':>10} {'rel.err':>9}"
    )
    for (solution, arm), score in hh_scores.items():
        table.row(
            f"{solution:<10} {arm:<12} {score.recall:>7.1%} "
            f"{score.precision:>9.1%} {score.relative_error:>8.1%}"
        )


@pytest.mark.parametrize("solution", SOLUTIONS)
def test_fig07_hh_shape(hh_scores, solution):
    nr = hh_scores[(solution, "NR")]
    sketchvisor = hh_scores[(solution, "SketchVisor")]
    ideal = hh_scores[(solution, "Ideal")]
    # NR loses most heavy hitters; SketchVisor tracks Ideal.
    assert nr.recall < 0.6
    assert sketchvisor.recall >= 0.9
    assert sketchvisor.recall >= ideal.recall - 0.1
    assert sketchvisor.relative_error <= nr.relative_error
    assert sketchvisor.relative_error < 0.15


def test_fig07_hh_timing(benchmark, bench_trace, bench_truth):
    threshold = 0.005 * bench_truth.total_bytes
    task = HeavyHitterTask("flowradar", threshold=threshold)

    def run():
        pipeline = SketchVisorPipeline(task, config=_config())
        return pipeline.run_epoch(bench_trace, bench_truth)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score.recall > 0.9


@pytest.fixture(scope="module")
def hc_scores(bench_trace):
    epoch_a, epoch_b, _changers = inject_heavy_changes(
        bench_trace, bench_trace, num_changers=6, change_bytes=400_000
    )
    from repro.traffic.groundtruth import GroundTruth

    truth_a = GroundTruth.from_trace(epoch_a)
    truth_b = GroundTruth.from_trace(epoch_b)
    threshold = 150_000
    scores = {}
    for solution in SOLUTIONS:
        task = HeavyChangerTask(solution, threshold=threshold)
        for arm, dataplane, recovery in ARMS:
            pipeline = SketchVisorPipeline(
                task,
                dataplane=dataplane,
                recovery=recovery,
                config=_config(),
            )
            result = pipeline.run_epoch_pair(
                epoch_a, epoch_b, truth_a, truth_b
            )
            scores[(solution, arm)] = result.score
    return scores


def test_fig07_hc_table(result_table, hc_scores):
    table = result_table(
        "fig07_heavy_changer",
        "Figure 7(d-f): heavy changer accuracy per recovery arm",
    )
    table.row(
        f"{'solution':<10} {'arm':<12} {'recall':>8} "
        f"{'precision':>10} {'rel.err':>9}"
    )
    for (solution, arm), score in hc_scores.items():
        table.row(
            f"{solution:<10} {arm:<12} {score.recall:>7.1%} "
            f"{score.precision:>9.1%} {score.relative_error:>8.1%}"
        )


@pytest.mark.parametrize("solution", SOLUTIONS)
def test_fig07_hc_shape(hc_scores, solution):
    sketchvisor = hc_scores[(solution, "SketchVisor")]
    nr = hc_scores[(solution, "NR")]
    assert sketchvisor.recall >= 0.8
    assert sketchvisor.recall >= nr.recall
