"""Ablations of the fast path's design choices (DESIGN.md).

Three knobs the paper fixes are swept here:

* **delta** — ComputeThresh's eviction-probability parameter (the
  paper suggests 0.05).  Larger delta widens the eviction margin:
  fewer O(k) passes, looser bounds.
* **amortized eviction itself** — Algorithm 1 vs the single-eviction
  Misra-Gries step, isolated from the rest of the system.
* **buffer size** — the FIFO that decides *when* the fast path engages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath
from repro.sketches.deltoid import Deltoid


def _bound_width(tracker, truth, k=50):
    ranked = sorted(
        tracker.bounds().items(),
        key=lambda item: item[1][0],
        reverse=True,
    )[:k]
    widths = [
        (high - low) / max(truth.get(flow, 1.0), 1.0)
        for flow, (low, high) in ranked
    ]
    return float(np.mean(widths))


def test_ablation_delta(result_table, large_trace):
    table = result_table(
        "ablation_delta",
        "Ablation: ComputeThresh delta (eviction probability bound)",
    )
    truth = large_trace.flow_sizes()
    table.row(
        f"{'delta':>7} {'kickouts':>9} {'evict/pass':>11} "
        f"{'top-50 bound width':>19}"
    )
    results = {}
    for delta in (0.01, 0.05, 0.2, 0.5):
        fastpath = FastPath(8192, delta=delta)
        for packet in large_trace:
            fastpath.update(packet.flow, packet.size)
        width = _bound_width(fastpath, truth)
        results[delta] = (fastpath.num_kickouts, width)
        table.row(
            f"{delta:>7.2f} {fastpath.num_kickouts:>9} "
            f"{fastpath.num_evicted / max(fastpath.num_kickouts, 1):>11.2f} "
            f"{width:>19.4f}"
        )
    # Larger delta -> wider eviction margin -> fewer passes.
    assert results[0.5][0] <= results[0.01][0]
    # The paper's 0.05 keeps top-flow bounds tight.
    assert results[0.05][1] < 0.05


def test_ablation_topk_algorithms(result_table, large_trace):
    """Three counter-based top-k trackers head to head: Algorithm 1's
    amortized eviction vs Misra-Gries' single eviction vs Space-Saving's
    O(1) replacement (which trades passes for per-flow overestimation)."""
    from repro.fastpath.space_saving import SpaceSavingTopK

    table = result_table(
        "ablation_topk_algorithms",
        "Ablation: top-k algorithm in the fast path",
    )
    truth = large_trace.flow_sizes()
    trackers = {
        "SketchVisor": FastPath(8192),
        "MisraGries": MisraGriesTopK(8192),
        "SpaceSaving": SpaceSavingTopK(8192),
    }
    for packet in large_trace:
        for tracker in trackers.values():
            tracker.update(packet.flow, packet.size)
    table.row(
        f"{'tracker':<12} {'kickouts':>9} {'evict/pass':>11} "
        f"{'top-50 bound width':>19}"
    )
    widths = {}
    for name, tracker in trackers.items():
        widths[name] = _bound_width(tracker, truth)
        table.row(
            f"{name:<12} {tracker.num_kickouts:>9} "
            f"{tracker.num_evicted / max(tracker.num_kickouts, 1):>11.2f} "
            f"{widths[name]:>19.4f}"
        )
    sv = trackers["SketchVisor"]
    mg = trackers["MisraGries"]
    assert sv.num_kickouts < mg.num_kickouts
    # Both Algorithm 1 and Space-Saving keep top-flow bounds orders of
    # magnitude tighter than Misra-Gries' shared slack.
    assert widths["SketchVisor"] < 0.1 * widths["MisraGries"]
    assert widths["SpaceSaving"] < 0.1 * widths["MisraGries"]


def test_ablation_buffer_size(result_table, bench_trace, benchmark):
    """The FIFO absorbs transient spikes; its size shifts the normal/
    fast-path split but not the robustness property."""
    table = result_table(
        "ablation_buffer_size",
        "Ablation: FIFO buffer size (Deltoid, saturating load)",
    )
    model = CostModel.in_memory()
    table.row(f"{'packets':>8} {'tput Gbps':>10} {'fastpath bytes':>15}")
    results = {}
    for capacity in (64, 256, 1024, 4096):
        switch = SoftwareSwitch(
            Deltoid(width=512, depth=4),
            fastpath=FastPath(8192),
            cost_model=model,
            buffer_packets=capacity,
        )
        report = switch.process(bench_trace)
        results[capacity] = report
        table.row(
            f"{capacity:>8} {report.throughput_gbps:>10.1f} "
            f"{report.fastpath_byte_fraction:>14.0%}"
        )
    # Bigger buffer -> (weakly) more packets reach the normal path.
    assert (
        results[4096].normal_packets >= results[64].normal_packets
    )
    # Robustness holds at every size: nothing is lost.
    for report in results.values():
        assert (
            report.normal_packets + report.fastpath_packets
            == report.total_packets
        )

    benchmark.pedantic(
        lambda: SoftwareSwitch(
            Deltoid(width=256, depth=4),
            fastpath=FastPath(8192),
            cost_model=model,
            buffer_packets=256,
        ).process(bench_trace),
        rounds=1,
        iterations=1,
    )
