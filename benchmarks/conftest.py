"""Shared benchmark fixtures and result-table plumbing.

Every benchmark regenerates one of the paper's tables/figures and
writes its rows to ``benchmarks/results/<name>.txt`` (in addition to
stdout) so EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_trace():
    """The standard benchmark epoch: ~2k flows, ~18k packets."""
    return generate_trace(TraceConfig(num_flows=2_000, seed=2017))


@pytest.fixture(scope="session")
def bench_truth(bench_trace):
    return GroundTruth.from_trace(bench_trace)


@pytest.fixture(scope="session")
def large_trace():
    """A bigger epoch for experiments that need more flows."""
    return generate_trace(TraceConfig(num_flows=6_000, seed=2018))


@pytest.fixture(scope="session")
def paper_scale_trace():
    """An epoch where the fast-path table is a sub-percent of flows.

    The paper's host-epochs carry 30-70k flows, so even a 32 KB table
    (819 entries) covers ~1-2% of them; size-sensitivity experiments
    (Figure 14) need that regime or table coverage dominates.
    """
    return generate_trace(TraceConfig(num_flows=12_000, seed=2019))


@pytest.fixture(scope="session")
def paper_scale_truth(paper_scale_trace):
    return GroundTruth.from_trace(paper_scale_trace)


@pytest.fixture(scope="session")
def large_truth(large_trace):
    return GroundTruth.from_trace(large_trace)


class ResultTable:
    """Collects printable rows and persists them per experiment."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.lines: list[str] = [title, "=" * len(title)]

    def row(self, text: str) -> None:
        self.lines.append(text)

    def save(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        content = "\n".join(self.lines) + "\n"
        path.write_text(content)
        print("\n" + content)


@pytest.fixture(autouse=True)
def _auto_benchmark(benchmark):
    """Keep table/shape tests alive under ``--benchmark-only``.

    pytest-benchmark skips tests that do not use the ``benchmark``
    fixture when ``--benchmark-only`` is passed.  The experiment tables
    here are the *output* of each benchmark file, so they must run in
    that mode; tests that want real timings still request ``benchmark``
    explicitly and call it.
    """
    yield


@pytest.fixture()
def result_table():
    tables: list[ResultTable] = []

    def factory(name: str, title: str) -> ResultTable:
        table = ResultTable(name, title)
        tables.append(table)
        return table

    yield factory
    for table in tables:
        table.save()
