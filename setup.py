"""Setuptools shim so ``pip install -e .`` works without the wheel package.

Metadata lives in pyproject.toml; this file only exists to enable the
legacy editable-install path in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SketchVisor (SIGCOMM 2017) reproduction: robust sketch-based "
        "network measurement for software packet processing"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
