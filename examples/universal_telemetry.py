#!/usr/bin/env python3
"""One sketch, many statistics: UnivMon as a universal telemetry core.

UnivMon's promise (Table 1's only multi-task solution) is that a single
structure answers heavy hitters, cardinality, entropy, and the whole
frequency-moment family.  This example runs one UnivMon through a
SketchVisor data plane under bursty traffic and reads every statistic
off the recovered sketch, comparing against exact ground truth.

Run:  python examples/universal_telemetry.py
"""

from repro import (
    GroundTruth,
    HeavyHitterTask,
    SketchVisorPipeline,
    TraceConfig,
    generate_trace,
)
from repro.reporting import ascii_bar_chart, comparison_table


def main() -> None:
    # Bursty arrivals: 60% of packets inside short spikes (§1's
    # motivating regime — bursts are when measurement must not fail).
    trace = generate_trace(
        TraceConfig(num_flows=5_000, seed=77, burstiness=0.6)
    )
    truth = GroundTruth.from_trace(trace)
    threshold = 0.005 * truth.total_bytes

    task = HeavyHitterTask("univmon", threshold=threshold)
    result = SketchVisorPipeline(task).run_epoch(trace, truth)
    univmon = result.network.sketch  # the recovered sketch

    total = univmon.g_sum(lambda v: v)
    stats = {
        "heavy hitters": (
            float(len(result.answer)),
            float(len(truth.heavy_hitters(threshold))),
        ),
        "cardinality": (
            univmon.cardinality(),
            float(truth.cardinality),
        ),
        "entropy (bits)": (univmon.entropy(total), truth.entropy),
        "volume (MB)": (total / 1e6, truth.total_bytes / 1e6),
        "F2 (x1e12)": (
            univmon.moment(2) / 1e12,
            sum(v * v for v in truth.flow_bytes.values()) / 1e12,
        ),
    }

    print("universal statistics from ONE recovered UnivMon:\n")
    print(
        comparison_table(
            {
                name: {
                    "estimated": est,
                    "true": true,
                    "error": abs(est - true) / max(true, 1e-12),
                }
                for name, (est, true) in stats.items()
            },
            formats={"error": ".1%", "estimated": ".4g", "true": ".4g"},
        )
    )

    print("\ntop heavy hitters (estimated bytes):\n")
    top = dict(
        sorted(
            result.answer.items(),
            key=lambda item: item[1],
            reverse=True,
        )[:8]
    )
    print(
        ascii_bar_chart(
            {
                f"{f.src_ip}->{f.dst_ip}": size / 1e3
                for f, size in top.items()
            },
            width=36,
            unit=" KB",
        )
    )
    print(
        f"\nfast path absorbed {result.fastpath_byte_fraction:.0%} of "
        f"bytes during the bursts; recovery kept every statistic close."
    )


if __name__ == "__main__":
    main()
