#!/usr/bin/env python3
"""Network-wide heavy hitter monitoring across a host fleet.

Deploys SketchVisor on 8 simulated hosts (flow-consistent traffic
partitioning, as in §3.1), then contrasts the control plane's recovery
modes — the §7.3 evaluation arms:

* NR  : discard fast-path results entirely,
* LR  : re-inject flows at their Lemma 4.1 lower bounds,
* UR  : re-inject at upper bounds,
* SketchVisor : compressive-sensing interpolation (Eq. 4),

against the Ideal yardstick (all packets through the normal path).

Run:  python examples/heavy_hitter_monitoring.py
"""

from repro import (
    DataPlaneMode,
    GroundTruth,
    HeavyHitterTask,
    PipelineConfig,
    RecoveryMode,
    SketchVisorPipeline,
    TraceConfig,
    generate_trace,
)

NUM_HOSTS = 8


def main() -> None:
    trace = generate_trace(TraceConfig(num_flows=8_000, seed=21))
    truth = GroundTruth.from_trace(trace)
    threshold = 0.004 * truth.total_bytes
    print(
        f"{NUM_HOSTS} hosts, {truth.cardinality:,} flows, "
        f"threshold {threshold / 1e3:.0f} KB, "
        f"{len(truth.heavy_hitters(threshold))} true heavy hitters\n"
    )

    task = HeavyHitterTask("univmon", threshold=threshold)
    config = PipelineConfig(num_hosts=NUM_HOSTS)

    header = f"{'arm':<14} {'recall':>8} {'precision':>10} {'rel.err':>9}"
    print(header)
    print("-" * len(header))

    arms: list[tuple[str, DataPlaneMode, RecoveryMode]] = [
        ("NR", DataPlaneMode.SKETCHVISOR, RecoveryMode.NO_RECOVERY),
        ("LR", DataPlaneMode.SKETCHVISOR, RecoveryMode.LOWER),
        ("UR", DataPlaneMode.SKETCHVISOR, RecoveryMode.UPPER),
        (
            "SketchVisor",
            DataPlaneMode.SKETCHVISOR,
            RecoveryMode.SKETCHVISOR,
        ),
        ("Ideal", DataPlaneMode.IDEAL, RecoveryMode.NO_RECOVERY),
    ]
    for label, dataplane, recovery in arms:
        pipeline = SketchVisorPipeline(
            task, dataplane=dataplane, recovery=recovery, config=config
        )
        result = pipeline.run_epoch(trace, truth)
        print(
            f"{label:<14} {result.score.recall:>7.1%} "
            f"{result.score.precision:>9.1%} "
            f"{result.score.relative_error:>8.2%}"
        )


if __name__ == "__main__":
    main()
