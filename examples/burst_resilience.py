#!/usr/bin/env python3
"""Robustness under load: what the fast path buys you.

Sweeps the offered load from well under the normal path's capacity to
far above it, for the three §7.2 data-plane arms (NoFastPath /
MGFastPath / SketchVisor), and shows:

* throughput collapses to the sketch's rate without a fast path;
* the fraction of traffic absorbed by the fast path grows with load;
* heavy hitter accuracy survives overload only with recovery.

Run:  python examples/burst_resilience.py
"""

from repro import (
    DataPlaneMode,
    GroundTruth,
    HeavyHitterTask,
    RecoveryMode,
    SketchVisorPipeline,
    TraceConfig,
    generate_trace,
)

OFFERED_GBPS = [0.5, 1.0, 2.0, 5.0, 10.0]


def main() -> None:
    trace = generate_trace(TraceConfig(num_flows=6_000, seed=5))
    truth = GroundTruth.from_trace(trace)
    threshold = 0.005 * truth.total_bytes
    task = HeavyHitterTask("deltoid", threshold=threshold)

    print("Deltoid normal path (~1.7 Gbps capacity on one core)\n")
    header = (
        f"{'offered':>8} {'fastpath%':>10} {'recall(NR)':>11} "
        f"{'recall(SV)':>11}"
    )
    print(header)
    print("-" * len(header))

    for offered in OFFERED_GBPS:
        from repro.framework.pipeline import PipelineConfig

        nr = SketchVisorPipeline(
            task,
            dataplane=DataPlaneMode.SKETCHVISOR,
            recovery=RecoveryMode.NO_RECOVERY,
            config=PipelineConfig(offered_gbps=offered),
        ).run_epoch(trace, truth)
        sv = SketchVisorPipeline(
            task,
            dataplane=DataPlaneMode.SKETCHVISOR,
            recovery=RecoveryMode.SKETCHVISOR,
            config=PipelineConfig(offered_gbps=offered),
        ).run_epoch(trace, truth)
        print(
            f"{offered:>7.1f}G {sv.fastpath_byte_fraction:>9.0%} "
            f"{nr.score.recall:>10.0%} {sv.score.recall:>10.0%}"
        )

    print(
        "\nBelow capacity everything rides the normal path; past it,"
        "\nthe fast path absorbs the overflow and compressive-sensing"
        "\nrecovery keeps detection near-ideal while NR collapses."
    )


if __name__ == "__main__":
    main()
