#!/usr/bin/env python3
"""Continuous monitoring: epochs, alerts, persistent offenders.

Runs heavy hitter + heavy changer + cardinality tasks over a stream of
epochs (the flow population persists, volumes shift), prints per-epoch
alerts, and ends with the operators' question: which flows were heavy
in *multiple* epochs?

Run:  python examples/continuous_monitoring.py
"""

from repro.framework.monitor import AlertKind, ContinuousMonitor
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.generator import TraceConfig, generate_epochs
from repro.traffic.groundtruth import GroundTruth

NUM_EPOCHS = 4


def main() -> None:
    epochs = generate_epochs(
        TraceConfig(num_flows=3_000, seed=8), num_epochs=NUM_EPOCHS
    )
    first_truth = GroundTruth.from_trace(epochs[0])
    hh_threshold = 0.008 * first_truth.total_bytes

    monitor = ContinuousMonitor(
        tasks=[
            HeavyHitterTask("flowradar", threshold=hh_threshold),
            HeavyChangerTask("flowradar", threshold=2 * hh_threshold),
            CardinalityTask("lc"),
        ]
    )

    for index, epoch in enumerate(epochs):
        summary = monitor.process_epoch(epoch)
        hh_alerts = [
            a for a in summary.alerts
            if a.kind is AlertKind.HEAVY_HITTER
        ]
        hc_alerts = [
            a for a in summary.alerts
            if a.kind is AlertKind.HEAVY_CHANGER
        ]
        cardinality = summary.results["cardinality"].answer
        print(
            f"epoch {index}: {len(epoch):,} pkts | "
            f"{len(hh_alerts)} heavy hitters | "
            f"{len(hc_alerts)} heavy changers | "
            f"~{cardinality:,.0f} flows"
        )

    persistent = monitor.recurring_subjects(
        AlertKind.HEAVY_HITTER, min_epochs=3
    )
    print(
        f"\nflows heavy in >=3 of {NUM_EPOCHS} epochs: "
        f"{len(persistent)}"
    )
    for flow in sorted(
        persistent, key=lambda f: (f.src_ip, f.src_port)
    )[:5]:
        print(f"  {flow.src_ip} -> {flow.dst_ip}:{flow.dst_port}")


if __name__ == "__main__":
    main()
