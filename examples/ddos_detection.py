#!/usr/bin/env python3
"""DDoS and superspreader detection with the TwoLevel sketch.

Injects synthetic attacks into background traffic — victims flooded by
hundreds of distinct sources, and superspreaders scanning hundreds of
destinations — then detects both with the volume-form TwoLevel sketch
(§4.2) running under SketchVisor.

Run:  python examples/ddos_detection.py
"""

from repro import (
    DDoSTask,
    GroundTruth,
    SketchVisorPipeline,
    SuperspreaderTask,
    TraceConfig,
    generate_trace,
)
from repro.traffic.anomalies import (
    inject_ddos_victims,
    inject_superspreaders,
)

THRESHOLD = 100  # distinct peers


def run_detection(task, trace, truth, label, injected) -> None:
    pipeline = SketchVisorPipeline(task)
    result = pipeline.run_epoch(trace, truth)
    detected = set(result.answer)
    print(f"\n{label}")
    print(f"  injected entities : {sorted(injected)}")
    print(f"  detected          : {len(detected)}")
    print(f"  injected found    : {len(detected & set(injected))}"
          f"/{len(injected)}")
    print(f"  recall            : {result.score.recall:.0%}")
    print(f"  precision         : {result.score.precision:.0%}")


def main() -> None:
    base = generate_trace(TraceConfig(num_flows=4_000, seed=33))

    # Attack 1: three victims, each flooded from 250 distinct sources.
    ddos_trace, victims = inject_ddos_victims(
        base, num_victims=3, sources_per_victim=250
    )
    run_detection(
        DDoSTask(threshold=THRESHOLD, sketch_params={"inner_width": 256}),
        ddos_trace,
        GroundTruth.from_trace(ddos_trace),
        "DDoS detection (TwoLevel, volume form)",
        victims,
    )

    # Attack 2: two superspreaders, each scanning 250 destinations.
    ss_trace, spreaders = inject_superspreaders(
        base, num_spreaders=2, destinations_per_spreader=250
    )
    run_detection(
        SuperspreaderTask(
            threshold=THRESHOLD, sketch_params={"inner_width": 256}
        ),
        ss_trace,
        GroundTruth.from_trace(ss_trace),
        "Superspreader detection (mirrored TwoLevel)",
        spreaders,
    )


if __name__ == "__main__":
    main()
