#!/usr/bin/env python3
"""Quickstart: detect heavy hitters with SketchVisor.

Generates one epoch of heavy-tailed traffic, runs it through a
SketchVisor data plane (Deltoid in the normal path, the Algorithm 1
fast path absorbing overload), recovers the network-wide sketch via
compressive sensing, and reports detection accuracy against exact
ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    GroundTruth,
    HeavyHitterTask,
    SketchVisorPipeline,
    TraceConfig,
    generate_trace,
)


def main() -> None:
    # One epoch: 5,000 flows, Zipf-skewed sizes, ~45k packets.
    trace = generate_trace(TraceConfig(num_flows=5_000, seed=1))
    truth = GroundTruth.from_trace(trace)
    print(
        f"trace: {len(trace):,} packets, {truth.cardinality:,} flows, "
        f"{truth.total_bytes / 1e6:.1f} MB"
    )

    # Heavy hitter = flow above 0.5% of the epoch's bytes.
    threshold = 0.005 * truth.total_bytes
    task = HeavyHitterTask("deltoid", threshold=threshold)
    pipeline = SketchVisorPipeline(task)

    result = pipeline.run_epoch(trace, truth)

    print(f"\ntrue heavy hitters : {result.score.extra['true']}")
    print(f"reported           : {result.score.extra['reported']}")
    print(f"recall             : {result.score.recall:.1%}")
    print(f"precision          : {result.score.precision:.1%}")
    print(f"relative error     : {result.score.relative_error:.2%}")
    print(f"\nsimulated throughput : {result.throughput_gbps:.1f} Gbps")
    print(
        "fast path absorbed   : "
        f"{result.fastpath_byte_fraction:.0%} of bytes"
    )

    print("\ntop 5 reported flows:")
    top = sorted(
        result.answer.items(), key=lambda item: item[1], reverse=True
    )[:5]
    for flow, estimate in top:
        true_size = truth.flow_bytes.get(flow, 0)
        print(
            f"  {flow.src_ip:>10} -> {flow.dst_ip:<10} "
            f"est {estimate / 1e3:9.1f} KB   true {true_size / 1e3:9.1f} KB"
        )


if __name__ == "__main__":
    main()
