#!/usr/bin/env python3
"""Accuracy vs deployment size: the Figure 12 effect, interactively.

The paper's network-wide recovery *improves* as hosts are added:
merging more per-host reports fills more sketch counters and adds more
constraints to the interpolation.  This example sweeps the host count
and prints heavy hitter recall plus cardinality error at each size.

Run:  python examples/network_wide_recovery.py
"""

from repro import (
    CardinalityTask,
    GroundTruth,
    HeavyHitterTask,
    PipelineConfig,
    SketchVisorPipeline,
    TraceConfig,
    generate_trace,
)

HOST_COUNTS = [1, 2, 4, 8, 16]


def main() -> None:
    trace = generate_trace(TraceConfig(num_flows=8_000, seed=12))
    truth = GroundTruth.from_trace(trace)
    threshold = 0.004 * truth.total_bytes

    header = (
        f"{'hosts':>6} {'HH recall':>10} {'HH precision':>13} "
        f"{'cardinality err':>16}"
    )
    print(header)
    print("-" * len(header))

    for hosts in HOST_COUNTS:
        config = PipelineConfig(num_hosts=hosts)
        hh = SketchVisorPipeline(
            HeavyHitterTask("univmon", threshold=threshold),
            config=config,
        ).run_epoch(trace, truth)
        card = SketchVisorPipeline(
            CardinalityTask("lc"), config=config
        ).run_epoch(trace, truth)
        print(
            f"{hosts:>6} {hh.score.recall:>9.1%} "
            f"{hh.score.precision:>12.1%} "
            f"{card.score.relative_error:>15.2%}"
        )

    print(
        "\nEach host's switch overflows less (its shard is smaller),"
        "\nand the merged recovery constraints tighten — accuracy"
        "\nimproves with deployment size, matching Figure 12."
    )


if __name__ == "__main__":
    main()
