"""Reversible Sketch: modular hashing and reverse hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.sketches.revsketch import ReversibleSketch, flow_fingerprint
from tests.conftest import make_flow


def _filled_sketch(heavy_keys, noise_keys, heavy=50_000, noise=100):
    sketch = ReversibleSketch(seed=3)
    for key in heavy_keys:
        sketch.update_key(key, heavy)
    for key in noise_keys:
        sketch.update_key(key, noise)
    return sketch


class TestUpdateEstimate:
    def test_estimate_upper_bounds_truth(self):
        sketch = ReversibleSketch()
        truth = {}
        rng = np.random.default_rng(3)
        for _ in range(2000):
            key = int(rng.integers(0, 2**32))
            size = int(rng.integers(50, 1500))
            sketch.update_key(key, size)
            truth[key] = truth.get(key, 0) + size
        for key, total in list(truth.items())[:100]:
            assert sketch.estimate_key(key) >= total

    def test_flow_interface_uses_fingerprint(self):
        sketch = ReversibleSketch()
        flow = make_flow(1)
        sketch.update(flow, 500)
        assert sketch.estimate(flow) == sketch.estimate_key(
            flow_fingerprint(flow)
        )

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ReversibleSketch(subindex_bits=9, word_bits=8)
        with pytest.raises(ConfigError):
            ReversibleSketch(num_words=0)


class TestReverseHashing:
    def test_recovers_single_heavy_key(self):
        heavy = 0xDEADBEEF
        sketch = _filled_sketch([heavy], range(1, 1000))
        decoded = sketch.decode(threshold=25_000)
        assert heavy in decoded
        assert decoded[heavy] >= 50_000

    def test_recovers_multiple_heavy_keys(self):
        heavies = [0xDEADBEEF, 0x12345678, 0xCAFEBABE, 0x0BADF00D]
        sketch = _filled_sketch(heavies, range(1, 2000))
        decoded = sketch.decode(threshold=25_000)
        assert set(heavies) <= set(decoded)

    def test_no_heavies_decodes_empty(self):
        sketch = _filled_sketch([], range(1, 500))
        assert sketch.decode(threshold=25_000) == {}

    def test_decode_estimates_exceed_threshold(self):
        sketch = _filled_sketch([42, 77], range(100, 600))
        for estimate in sketch.decode(threshold=25_000).values():
            assert estimate > 25_000

    def test_word_boundary_keys(self):
        """Keys with extreme word values (0x00 / 0xFF bytes) decode."""
        for key in (0, 0xFFFFFFFF, 0x00FF00FF):
            sketch = _filled_sketch([key], range(1, 300))
            assert key in sketch.decode(threshold=25_000)

    def test_preimages_cover_word_space(self):
        sketch = ReversibleSketch()
        preimages = sketch._build_preimages()
        for row_tables in preimages:
            for table in row_tables:
                covered = sorted(
                    int(v) for bucket in table for v in bucket
                )
                assert covered == list(range(256))

    def test_beam_limit_raises(self):
        sketch = ReversibleSketch(beam_limit=1)
        for key in range(5000):
            sketch.update_key(key, 1000)
        with pytest.raises(ConfigError):
            sketch.decode(threshold=500)


class TestAlgebra:
    def test_merge_equals_union(self):
        whole = ReversibleSketch(seed=5)
        a = ReversibleSketch(seed=5)
        b = ReversibleSketch(seed=5)
        for key in range(500):
            whole.update_key(key, key + 1)
            (a if key % 2 else b).update_key(key, key + 1)
        a.merge(b)
        assert np.array_equal(a.counters, whole.counters)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            ReversibleSketch(depth=4).merge(ReversibleSketch(depth=2))

    def test_matrix_roundtrip(self):
        sketch = ReversibleSketch()
        sketch.update_key(123, 456)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert clone.estimate_key(123) == sketch.estimate_key(123)

    def test_positions_match_update(self):
        sketch = ReversibleSketch()
        flow = make_flow(9)
        sketch.update(flow, 88)
        replayed = np.zeros_like(sketch.counters)
        for row, col, coef in sketch.matrix_positions(flow):
            replayed[row, col] += 88 * coef
        assert np.array_equal(replayed, sketch.counters)

    def test_width_follows_subindex_bits(self):
        assert ReversibleSketch(subindex_bits=3, num_words=4).width == 4096
        assert ReversibleSketch(subindex_bits=2, num_words=4).width == 256

    def test_hashing_dominates_cost(self):
        """§2.2: >95% of RevSketch cycles are hash computations."""
        profile = ReversibleSketch().cost_profile()
        assert profile.hashes > 2 * profile.counter_updates
