"""Telemetry subsystem: registry, tracer, exporters, and pipeline wiring."""

from __future__ import annotations

import json
import math

import pytest

from repro import PipelineConfig, SketchVisorPipeline, Telemetry
from repro.common.errors import ConfigError
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.topk import FastPath
from repro.framework.monitor import ContinuousMonitor
from repro.reporting import ascii_bar_chart, span_tree
from repro.sketches.countmin import CountMinSketch
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry import telemetry_from_env, trace_span
from repro.telemetry.exporters import (
    json_snapshot,
    prometheus_text,
    write_chrome_trace,
    write_json_snapshot,
    write_prometheus,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracer import Tracer
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(num_flows=600, seed=5))


@pytest.fixture(scope="module")
def truth(trace):
    return GroundTruth.from_trace(trace)


def _pipeline(trace, truth, telemetry, *, batch=False, hosts=2):
    task = HeavyHitterTask("univmon", threshold=0.01 * truth.total_bytes)
    return SketchVisorPipeline(
        task,
        config=PipelineConfig(
            num_hosts=hosts, batch=batch, telemetry=telemetry
        ),
    )


# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "help text")
        counter.inc(2, host="0")
        counter.inc(3, host="0")
        counter.inc(1, host="1")
        assert registry.value("requests_total", host="0") == 5
        assert registry.value("requests_total", host="1") == 1
        assert registry.total("requests_total") == 6

    def test_unknown_metric_reads_as_none_or_zero(self):
        registry = MetricsRegistry()
        assert registry.value("nope") is None
        assert registry.total("nope") == 0.0
        registry.counter("known").inc(1, host="0")
        assert registry.value("known", host="9") is None

    def test_children_cached_by_label_set(self):
        registry = MetricsRegistry()
        family = registry.counter("cached_total")
        child = family.labels(host="0", path="normal")
        # Keyword order must not matter; same set -> same child object.
        assert family.labels(path="normal", host="0") is child

    def test_counters_reject_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.counter("mono_total").inc(-1)

    def test_gauge_set_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy")
        gauge.set(7, host="0")
        gauge.set(3, host="0")
        assert registry.value("occupancy", host="0") == 3
        gauge.set_max(10, host="0")
        gauge.set_max(4, host="0")  # lower: ignored
        assert registry.value("occupancy", host="0") == 10

    def test_histogram_buckets_and_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.1, 0.5, 20.0):
            histogram.observe(value)
        child = histogram.labels()
        # 0.05 and 0.1 land in le=0.1 (upper bounds are inclusive).
        assert child.bucket_counts == [2, 1, 0, 1]
        assert child.count == 4
        assert child.sum == pytest.approx(20.65)
        assert child.value == pytest.approx(20.65 / 4)

    def test_histogram_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("same_total", "help")
        assert registry.counter("same_total") is first

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(ConfigError):
            registry.gauge("taken")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").inc(2, host="0")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["samples"][0] == {
            "labels": {"host": "0"},
            "value": 2.0,
        }
        histogram = snapshot["h_seconds"]["samples"][0]
        assert histogram["count"] == 1
        assert histogram["buckets"][-1]["le"] == float("inf")
        registry.reset()
        assert registry.snapshot() == {}


# ----------------------------------------------------------------------
class TestPrometheusText:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("pkts_total", "packet count").inc(
            5, host="0", path="normal"
        )
        text = prometheus_text(registry)
        assert "# HELP pkts_total packet count" in text
        assert "# TYPE pkts_total counter" in text
        assert 'pkts_total{host="0",path="normal"} 5' in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum" in text
        assert "lat_count 3" in text


# ----------------------------------------------------------------------
class TestPrometheusHardening:
    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        hostile = 'a\\b"c\nd'
        registry.counter("esc_total").inc(1, path=hostile)
        text = prometheus_text(registry)
        assert 'esc_total{path="a\\\\b\\"c\\nd"} 1' in text
        # The raw newline must not split the sample across lines.
        sample_lines = [
            line for line in text.splitlines() if "esc_total{" in line
        ]
        assert len(sample_lines) == 1
        assert sample_lines[0].endswith("} 1")

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", "multi\nline \\ help").inc(1)
        text = prometheus_text(registry)
        assert "# HELP weird_total multi\\nline \\\\ help" in text

    def test_help_and_type_emitted_exactly_once(self):
        registry = MetricsRegistry()
        counter = registry.counter("multi_total", "help")
        counter.inc(1, host="0")
        counter.inc(2, host="1")
        registry.counter("multi_total")  # re-registration is idempotent
        text = prometheus_text(registry)
        assert text.count("# HELP multi_total") == 1
        assert text.count("# TYPE multi_total") == 1

    def test_invalid_metric_names_rejected_at_registration(self):
        registry = MetricsRegistry()
        for bad in ("2leading_digit", "has space", "dash-ed", ""):
            with pytest.raises(ConfigError):
                registry.counter(bad)
        # Colons are legal in metric names (recording-rule style).
        registry.counter("ns:sub:total").inc(1)

    def test_invalid_label_names_rejected_at_export(self):
        registry = MetricsRegistry()
        registry.counter("ok_total").inc(1, **{"bad-name": "x"})
        with pytest.raises(ConfigError):
            prometheus_text(registry)


# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_interpolated_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat", buckets=(10.0, 20.0, 40.0)
        )
        for value in range(1, 21):  # uniform over (0, 20]
            histogram.observe(float(value))
        child = histogram.labels()
        assert child.quantile(0.5) == pytest.approx(10.0)
        # p95: rank 19 of 20 -> 9/10 into the (10, 20] bucket.
        assert child.quantile(0.95) == pytest.approx(19.0)
        assert child.quantile(0.0) == pytest.approx(0.0)
        assert child.quantile(1.0) == pytest.approx(20.0)

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.labels().quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_and_bad_q(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0,))
        assert histogram.labels().quantile(0.5) == 0.0
        with pytest.raises(ConfigError):
            histogram.labels().quantile(1.5)

    def test_snapshot_carries_quantiles_for_histograms_only(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1)
        registry.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert set(snapshot["h"]["samples"][0]["quantiles"]) == {
            "p50", "p95", "p99",
        }
        # Counter/gauge sample dicts keep their exact legacy shape.
        assert set(snapshot["c_total"]["samples"][0]) == {
            "labels", "value",
        }


# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("epoch", task="hh"):
            with tracer.span("dataplane"):
                pass
            with tracer.span("task.answer"):
                pass
        names = [span.name for span in tracer.spans]
        assert names == ["epoch", "dataplane", "task.answer"]
        epoch, dataplane, answer = tracer.spans
        assert (epoch.depth, dataplane.depth, answer.depth) == (0, 1, 1)
        assert dataplane.parent == 0 and answer.parent == 0
        assert epoch.parent is None
        assert epoch.attrs == {"task": "hh"}
        assert epoch.duration >= dataplane.duration + answer.duration
        assert tracer.roots() == [epoch]
        assert tracer.children(epoch) == [dataplane, answer]

    def test_tree_rows_match_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b", k=1):
                pass
        rows = tracer.tree_rows()
        assert [(d, n) for d, n, _s, _a in rows] == [(0, "a"), (1, "b")]
        assert rows[1][3] == {"k": 1}

    def test_chrome_trace_format(self):
        tracer = Tracer()
        with tracer.span("epoch", task="hh"):
            with tracer.span("dataplane"):
                pass
        payload = tracer.chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"pid", "tid", "name", "args"} <= set(event)
        assert events[0]["args"] == {"task": "hh"}
        # Child lies inside the parent on the microsecond timeline.
        parent, child = events
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1

    def test_trace_span_without_telemetry_is_noop(self):
        with trace_span(None, "anything", attr=1):
            pass  # must not raise or record

    def test_reset_clears_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans == []


# ----------------------------------------------------------------------
class TestExporters:
    def test_json_snapshot_includes_spans(self):
        telemetry = Telemetry()
        telemetry.registry.counter("c_total").inc(1)
        with telemetry.span("epoch"):
            pass
        snapshot = telemetry.json_snapshot()
        assert snapshot["metrics"]["c_total"]["kind"] == "counter"
        assert snapshot["spans"][0]["name"] == "epoch"
        json.dumps(snapshot)  # must be serializable as-is

    def test_writers_round_trip(self, tmp_path):
        telemetry = Telemetry()
        telemetry.registry.counter("c_total").inc(3, host="0")
        with telemetry.span("epoch"):
            pass
        prom = tmp_path / "metrics.txt"
        snap = tmp_path / "snapshot.json"
        chrome = tmp_path / "trace.json"
        write_prometheus(telemetry.registry, prom)
        write_json_snapshot(telemetry.registry, snap, telemetry.tracer)
        write_chrome_trace(telemetry.tracer, chrome)
        assert 'c_total{host="0"} 3' in prom.read_text()
        loaded = json.loads(snap.read_text())
        assert loaded["spans"][0]["name"] == "epoch"
        trace_doc = json.loads(chrome.read_text())
        assert trace_doc["traceEvents"][0]["name"] == "epoch"


# ----------------------------------------------------------------------
class TestSwitchIntegration:
    def _switch(self, telemetry, *, batch=False):
        return SoftwareSwitch(
            CountMinSketch(seed=3),
            fastpath=FastPath(4096),
            buffer_packets=256,
            batch=batch,
            telemetry=telemetry,
            host_label="7",
        )

    def test_counters_match_report(self, trace):
        telemetry = Telemetry()
        switch = self._switch(telemetry)
        report = switch.process(trace)
        registry = telemetry.registry
        assert registry.value(
            "sketchvisor_switch_packets_total", host="7", path="normal"
        ) == report.normal_packets
        assert registry.value(
            "sketchvisor_switch_packets_total", host="7", path="fastpath"
        ) == report.fastpath_packets
        assert registry.value(
            "sketchvisor_switch_bytes_total", host="7", path="fastpath"
        ) == report.fastpath_bytes
        assert registry.value(
            "sketchvisor_switch_buffer_high_water", host="7"
        ) == report.buffer_high_water
        assert registry.value(
            "sketchvisor_switch_throughput_gbps", host="7"
        ) == pytest.approx(report.throughput_gbps)
        assert registry.value(
            "sketchvisor_fastpath_bytes_total", host="7"
        ) == switch.fastpath.total_bytes

    def test_fastpath_counters_publish_deltas(self, trace):
        # FastPath op counts are lifetime totals; over two epochs the
        # registry (fed per-epoch deltas) must still equal the lifetime.
        telemetry = Telemetry()
        switch = self._switch(telemetry)
        switch.process(trace)
        switch.process(trace)
        registry = telemetry.registry
        assert registry.value(
            "sketchvisor_switch_epochs_total", host="7", engine="scalar"
        ) == 2
        assert registry.value(
            "sketchvisor_fastpath_updates_total", host="7", kind="hit"
        ) == switch.fastpath.num_hits
        assert registry.value(
            "sketchvisor_fastpath_updates_total", host="7", kind="kickout"
        ) == switch.fastpath.num_kickouts
        assert registry.value(
            "sketchvisor_fastpath_bytes_total", host="7"
        ) == switch.fastpath.total_bytes
        # The tracked-flows gauge stays absolute, not summed.
        assert registry.value(
            "sketchvisor_fastpath_tracked_flows", host="7"
        ) == len(switch.fastpath.table)

    def test_process_records_span(self, trace):
        telemetry = Telemetry()
        switch = self._switch(telemetry, batch=True)
        switch.process(trace)
        (span,) = telemetry.tracer.spans
        assert span.name == "switch.process"
        assert span.attrs == {"host": "7", "engine": "batch"}

    def test_describe_and_repr(self, trace):
        switch = self._switch(None)
        text = switch.describe()
        assert repr(switch) == text
        assert "mode=sketchvisor" in text
        assert "engine=scalar" in text
        assert "telemetry=off" in text
        assert "CountMinSketch" in text


# ----------------------------------------------------------------------
class TestPipelineIntegration:
    def test_default_config_has_no_telemetry(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        # REPRO_PROFILE implies telemetry, so it must be cleared too.
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert PipelineConfig().telemetry is None

    def test_env_var_injects_telemetry(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert isinstance(PipelineConfig().telemetry, Telemetry)
        assert isinstance(telemetry_from_env(), Telemetry)
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert telemetry_from_env() is None

    def test_per_host_counters_published(self, trace, truth):
        telemetry = Telemetry()
        pipeline = _pipeline(trace, truth, telemetry, hosts=2)
        result = pipeline.run_epoch(trace, truth)
        registry = telemetry.registry
        for report in result.reports:
            host = str(report.host_id)
            assert registry.value(
                "sketchvisor_switch_packets_total", host=host, path="normal"
            ) == report.switch.normal_packets
            assert registry.value(
                "sketchvisor_switch_packets_total", host=host, path="fastpath"
            ) == report.switch.fastpath_packets
        assert registry.total(
            "sketchvisor_switch_packets_total"
        ) == len(trace)
        assert registry.total("sketchvisor_controller_reports_total") == 2
        assert registry.value(
            "sketchvisor_lens_solves_total", converged="true"
        ) == 1

    def test_span_tree_covers_epoch_walltime(self, trace, truth):
        telemetry = Telemetry()
        pipeline = _pipeline(trace, truth, telemetry, hosts=2)
        pipeline.run_epoch(trace, truth)
        (root,) = telemetry.tracer.roots()
        assert root.name == "epoch"
        children = telemetry.tracer.children(root)
        assert {span.name for span in children} >= {
            "dataplane",
            "controlplane.merge",
            "task.answer",
            "task.score",
        }
        covered = sum(span.duration for span in children)
        # The instrumented stages account for (nearly) the whole epoch.
        assert covered <= root.duration * 1.001
        assert covered >= root.duration * 0.9

    def test_engine_counter_totals_match(self, trace, truth):
        # Batch vs scalar engines publish identical counter totals —
        # the smoke assertion CI runs with `-k engine`.
        scalar, batch = Telemetry(), Telemetry()
        _pipeline(trace, truth, scalar, batch=False).run_epoch(
            trace, truth
        )
        _pipeline(trace, truth, batch, batch=True).run_epoch(trace, truth)
        scalar_families = {
            family.name: family.kind
            for family in scalar.registry.families()
        }
        batch_families = {
            family.name: family.kind
            for family in batch.registry.families()
        }
        assert scalar_families == batch_families
        for name, kind in scalar_families.items():
            if kind != "counter":
                continue
            assert scalar.registry.total(name) == pytest.approx(
                batch.registry.total(name)
            ), name
        for host in ("0", "1"):
            for path in ("normal", "fastpath"):
                assert scalar.registry.value(
                    "sketchvisor_switch_packets_total", host=host, path=path
                ) == batch.registry.value(
                    "sketchvisor_switch_packets_total", host=host, path=path
                )
        # Only the engine label tells the runs apart.
        assert scalar.registry.value(
            "sketchvisor_switch_epochs_total", host="0", engine="scalar"
        ) == 1
        assert batch.registry.value(
            "sketchvisor_switch_epochs_total", host="0", engine="batch"
        ) == 1

    def test_pipeline_describe(self, trace, truth):
        pipeline = _pipeline(trace, truth, None, batch=True)
        text = pipeline.describe()
        assert repr(pipeline) == text
        assert "task='heavy_hitter'" in text
        assert "engine=batch" in text


# ----------------------------------------------------------------------
class TestMonitorTelemetry:
    def test_monitor_publishes_alerts_and_epochs(self, trace, truth):
        telemetry = Telemetry()
        monitor = ContinuousMonitor(
            [
                HeavyHitterTask(
                    "univmon", threshold=0.01 * truth.total_bytes
                )
            ],
            config=PipelineConfig(num_hosts=1, telemetry=telemetry),
        )
        first = monitor.process_epoch(trace)
        second = monitor.process_epoch(trace)
        registry = telemetry.registry
        assert registry.total("sketchvisor_monitor_epochs_total") == 2
        expected_alerts = len(first.alerts) + len(second.alerts)
        assert expected_alerts > 0
        assert registry.value(
            "sketchvisor_monitor_alerts_total", kind="heavy_hitter"
        ) == expected_alerts
        seconds = registry.histogram(
            "sketchvisor_monitor_epoch_seconds"
        ).labels()
        assert seconds.count == 2
        root_names = [
            span.name for span in telemetry.tracer.roots()
        ]
        assert root_names == ["monitor.epoch", "monitor.epoch"]


# ----------------------------------------------------------------------
class TestReporting:
    def test_bar_chart_annotates_bad_values(self):
        chart = ascii_bar_chart(
            {
                "ok": 10.0,
                "neg": -5.0,
                "nan": float("nan"),
                "inf": float("inf"),
            },
            width=10,
        )
        lines = dict(
            (line.split()[0], line) for line in chart.splitlines()
        )
        assert "██████████" in lines["ok"]
        assert "(< 0)" in lines["neg"] and "█" not in lines["neg"]
        assert "(non-finite)" in lines["nan"]
        assert "(non-finite)" in lines["inf"]
        # Non-finite values must not flatten the auto-computed peak.
        assert lines["ok"].count("█") == 10

    def test_bar_chart_clamps_above_explicit_peak(self):
        chart = ascii_bar_chart({"big": 100.0}, width=8, max_value=10.0)
        assert chart.count("█") == 8

    def test_span_tree_renders_fractions(self):
        rows = [
            (0, "epoch", 0.2, {}),
            (1, "dataplane", 0.15, {"host": 0}),
            (1, "task.score", 0.001, {}),
        ]
        text = span_tree(rows)
        assert "epoch" in text and "100.0%" in text
        assert "75.0%" in text and "[host=0]" in text
        filtered = span_tree(rows, min_fraction=0.05)
        assert "task.score" not in filtered
        assert "dataplane" in filtered
        assert span_tree([]) == "(no spans)"

    def test_bar_chart_handles_all_nonpositive(self):
        chart = ascii_bar_chart({"a": -1.0, "b": float("nan")}, width=5)
        assert "(< 0)" in chart and "(non-finite)" in chart
        assert not math.isnan(len(chart))


# ----------------------------------------------------------------------
class TestMetricsSummary:
    def test_summary_prefers_quantiles_over_buckets(self):
        from repro.reporting import metrics_summary

        registry = MetricsRegistry()
        registry.counter("sketchvisor_x_total", "h").inc(7)
        histogram = registry.histogram(
            "sketchvisor_epoch_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = metrics_summary(registry)
        assert "sketchvisor_x_total" in text and "7" in text
        assert "p50" in text and "n=4" in text
        assert "le=" not in text  # no raw bucket dumps

    def test_summary_prefix_filter_and_empty(self):
        from repro.reporting import metrics_summary

        registry = MetricsRegistry()
        registry.counter("keep_total").inc(1)
        registry.counter("drop_total").inc(1)
        text = metrics_summary(registry, prefix="keep")
        assert "keep_total" in text and "drop_total" not in text
        assert metrics_summary(MetricsRegistry()) == "(no metrics)"

    def test_dashboard_frame_sparklines(self):
        from repro.reporting import dashboard_frame

        rows = [
            {"epoch": 0, "throughput_gbps": 1.0, "slo_breaches": 0},
            {"epoch": 1, "throughput_gbps": 2.0, "slo_breaches": 1},
        ]
        frame = dashboard_frame(rows, width=10)
        assert "epoch 1" in frame
        assert "throughput_gbps" in frame
        assert "▁" in frame and "█" in frame
