"""Classic pcap import/export."""

from __future__ import annotations

import struct

import pytest

from repro.common.errors import ConfigError
from repro.common.flow import PROTO_TCP, PROTO_UDP
from repro.traffic.pcap import PcapStats, read_pcap, write_pcap


class TestRoundTrip:
    def test_flows_and_sizes_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(small_trace, path)
        restored, stats = read_pcap(path)
        assert stats.decoded == len(small_trace)
        assert stats.skipped_non_ethernet_ip == 0
        assert restored.flow_sizes() == small_trace.flow_sizes()

    def test_timestamps_rebased_and_ordered(self, small_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(small_trace, path)
        restored, _stats = read_pcap(path)
        assert restored[0].timestamp == pytest.approx(0.0, abs=1e-5)
        previous = -1.0
        for packet in restored:
            assert packet.timestamp >= previous
            previous = packet.timestamp

    def test_protocols_preserved(self, small_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(small_trace, path)
        restored, _stats = read_pcap(path)
        original_protos = {
            flow: flow.proto for flow in small_trace.flows()
        }
        for flow in restored.flows():
            assert flow.proto == original_protos[flow]
            assert flow.proto in (PROTO_TCP, PROTO_UDP)


class TestRobustness:
    def test_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ConfigError):
            read_pcap(path)

    def test_rejects_short_file(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(ConfigError):
            read_pcap(path)

    def test_skips_non_ipv4_frames(self, small_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(small_trace, path)
        data = bytearray(path.read_bytes())
        # Append an ARP frame record at the end.
        arp_frame = (
            b"\xff" * 6 + b"\x02" * 6 + struct.pack("!H", 0x0806)
            + b"\x00" * 28
        )
        data += struct.pack(
            "<IIII", 99, 0, len(arp_frame), len(arp_frame)
        )
        data += arp_frame
        path.write_bytes(bytes(data))
        restored, stats = read_pcap(path)
        assert stats.skipped_non_ethernet_ip == 1
        assert stats.decoded == len(small_trace)

    def test_skips_non_tcp_udp(self, tmp_path):
        # Hand-build one ICMP packet.
        ip_header = struct.pack(
            "!BBHHHBBHII", 0x45, 0, 28, 0, 0, 64, 1, 0, 1, 2
        )
        frame = (
            b"\x02" * 6 + b"\x04" * 6 + struct.pack("!H", 0x0800)
            + ip_header + b"\x00" * 8
        )
        header = struct.pack(
            "<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1
        )
        record = struct.pack("<IIII", 0, 0, len(frame), len(frame))
        path = tmp_path / "icmp.pcap"
        path.write_bytes(header + record + frame)
        trace, stats = read_pcap(path)
        assert len(trace) == 0
        assert stats.skipped_non_tcp_udp == 1

    def test_stats_dataclass_defaults(self):
        stats = PcapStats()
        assert stats.records == 0 and stats.truncated == 0
