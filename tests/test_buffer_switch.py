"""Software switch simulation: FIFO, modes, throughput dynamics."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.flow import Packet
from repro.dataplane.buffer import BoundedFIFO
from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath
from repro.sketches.deltoid import Deltoid
from repro.sketches.mrac import MRAC
from tests.conftest import make_flow


class TestBoundedFIFO:
    def test_push_pop_fifo_order(self):
        fifo = BoundedFIFO(4)
        flow = make_flow(1)
        for i in range(3):
            fifo.push(Packet(flow, 10 + i), float(i))
        packet, cycle = fifo.pop()
        assert packet.size == 10 and cycle == 0.0

    def test_full_and_overflow(self):
        fifo = BoundedFIFO(2)
        flow = make_flow(1)
        fifo.push(Packet(flow, 1), 0.0)
        fifo.push(Packet(flow, 2), 0.0)
        assert fifo.full
        with pytest.raises(OverflowError):
            fifo.push(Packet(flow, 3), 0.0)

    def test_peek(self):
        fifo = BoundedFIFO(2)
        fifo.push(Packet(make_flow(1), 1), 7.5)
        assert fifo.peek_enqueue_cycle() == 7.5
        assert len(fifo) == 1

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            BoundedFIFO(0)


def _deltoid():
    return Deltoid(width=256, depth=4)


class TestSwitchModes:
    def test_all_packets_accounted(self, small_trace):
        switch = SoftwareSwitch(_deltoid(), fastpath=FastPath(8192))
        report = switch.process(small_trace)
        assert report.total_packets == len(small_trace)
        assert (
            report.normal_packets + report.fastpath_packets
            == report.total_packets
        )
        assert report.total_bytes == small_trace.total_bytes

    def test_sketch_sees_normal_path_packets_only(self, small_trace):
        sketch = _deltoid()
        switch = SoftwareSwitch(sketch, fastpath=FastPath(8192))
        report = switch.process(small_trace)
        assert sketch.totals[0].sum() == pytest.approx(
            report.normal_bytes
        )

    def test_ideal_mode_sees_everything(self, small_trace):
        sketch = _deltoid()
        switch = SoftwareSwitch(sketch, ideal=True)
        report = switch.process(small_trace)
        assert report.fastpath_packets == 0
        assert sketch.totals[0].sum() == small_trace.total_bytes

    def test_ideal_rejects_fastpath(self):
        with pytest.raises(ConfigError):
            SoftwareSwitch(_deltoid(), fastpath=FastPath(), ideal=True)

    def test_nofastpath_never_drops(self, small_trace):
        sketch = _deltoid()
        switch = SoftwareSwitch(sketch, fastpath=None, buffer_packets=16)
        report = switch.process(small_trace)
        assert report.fastpath_packets == 0
        assert sketch.totals[0].sum() == small_trace.total_bytes

    def test_throughput_ordering(self, medium_trace):
        """SketchVisor > MGFastPath > NoFastPath for heavy sketches."""
        no_fp = SoftwareSwitch(_deltoid(), fastpath=None).process(
            medium_trace
        )
        sv = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192)
        ).process(medium_trace)
        mg = SoftwareSwitch(
            _deltoid(), fastpath=MisraGriesTopK(8192)
        ).process(medium_trace)
        assert sv.throughput_gbps > mg.throughput_gbps
        assert mg.throughput_gbps > no_fp.throughput_gbps

    def test_cheap_sketch_rarely_overflows(self, medium_trace):
        """MRAC keeps up: negligible fast-path traffic (Figure 13)."""
        report = SoftwareSwitch(
            MRAC(width=2000), fastpath=FastPath(8192)
        ).process(medium_trace)
        assert report.fastpath_byte_fraction < 0.5

    def test_heavy_sketch_overflows_heavily(self, medium_trace):
        report = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192)
        ).process(medium_trace)
        assert report.fastpath_byte_fraction > 0.5

    def test_low_offered_load_stays_on_normal_path(self, medium_trace):
        """At 0.5 Gbps even Deltoid keeps up: no fast-path traffic."""
        report = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192)
        ).process(medium_trace, offered_gbps=0.5)
        assert report.fastpath_packet_fraction < 0.05

    def test_offered_rate_validation(self, small_trace):
        switch = SoftwareSwitch(_deltoid(), fastpath=FastPath(8192))
        with pytest.raises(ConfigError):
            switch.process(small_trace, offered_gbps=-1)

    def test_report_fractions(self, medium_trace):
        report = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192)
        ).process(medium_trace)
        assert 0 <= report.fastpath_packet_fraction <= 1
        assert 0 <= report.fastpath_byte_fraction <= 1
        assert 0 <= report.fastpath_flow_fraction <= 1

    def test_empty_trace(self):
        from repro.traffic.trace import Trace

        report = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192)
        ).process(Trace([]))
        assert report.total_packets == 0
        assert report.throughput_gbps == float("inf")

    def test_bigger_buffer_more_normal_path(self, medium_trace):
        small_buffer = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192), buffer_packets=64
        ).process(medium_trace, offered_gbps=3.0)
        big_buffer = SoftwareSwitch(
            _deltoid(), fastpath=FastPath(8192), buffer_packets=4096
        ).process(medium_trace, offered_gbps=3.0)
        assert (
            big_buffer.normal_packets >= small_buffer.normal_packets
        )

    def test_testbed_profile_slower(self, medium_trace):
        in_memory = SoftwareSwitch(
            MRAC(width=2000),
            fastpath=FastPath(8192),
            cost_model=CostModel.in_memory(),
        ).process(medium_trace)
        testbed = SoftwareSwitch(
            MRAC(width=2000),
            fastpath=FastPath(8192),
            cost_model=CostModel.testbed(),
        ).process(medium_trace)
        assert testbed.throughput_gbps < in_memory.throughput_gbps
