"""Accuracy metrics (§7.1) edge cases."""

from __future__ import annotations

import pytest

from repro.metrics import (
    f1_score,
    mean_relative_difference,
    precision,
    recall,
    relative_error,
    scalar_relative_error,
)


class TestRecallPrecision:
    def test_perfect(self):
        reported = {"a": 1, "b": 2}
        assert recall(reported, reported) == 1.0
        assert precision(reported, reported) == 1.0
        assert f1_score(reported, reported) == 1.0

    def test_partial(self):
        truth = {"a": 1, "b": 2, "c": 3, "d": 4}
        reported = {"a": 1, "b": 2, "x": 9}
        assert recall(reported, truth) == 0.5
        assert precision(reported, truth) == pytest.approx(2 / 3)

    def test_empty_truth(self):
        assert recall({}, {}) == 1.0
        assert precision({}, {}) == 1.0
        assert precision({"a": 1}, {}) == 0.0

    def test_empty_report(self):
        """Detecting nothing scores zero precision when truth exists —
        the convention the paper's NR bars use (Figure 8)."""
        truth = {"a": 1}
        assert recall({}, truth) == 0.0
        assert precision({}, truth) == 0.0
        assert f1_score({}, truth) == 0.0


class TestRelativeError:
    def test_exact(self):
        assert relative_error({"a": 100.0}, {"a": 100.0}) == 0.0

    def test_missing_counts_as_full_error(self):
        assert relative_error({}, {"a": 100.0}) == 1.0

    def test_mixed(self):
        truth = {"a": 100.0, "b": 200.0}
        reported = {"a": 110.0}  # 10% error + 100% for missing b
        assert relative_error(reported, truth) == pytest.approx(0.55)

    def test_empty_truth(self):
        assert relative_error({"a": 5.0}, {}) == 0.0

    def test_scalar(self):
        assert scalar_relative_error(110, 100) == pytest.approx(0.1)
        assert scalar_relative_error(0, 0) == 0.0
        assert scalar_relative_error(5, 0) == float("inf")


class TestMRD:
    def test_identical_distributions(self):
        dist = {1: 100.0, 2: 50.0, 10: 3.0}
        assert mean_relative_difference(dist, dist) == 0.0

    def test_known_value(self):
        truth = {1: 100.0}
        estimated = {1: 50.0}
        # |100-50| / 75 = 2/3, divided by z = 1.
        assert mean_relative_difference(estimated, truth) == (
            pytest.approx(2 / 3)
        )

    def test_disjoint_sizes(self):
        truth = {1: 10.0}
        estimated = {2: 10.0}
        # each size contributes 2 (max disagreement), z = 2.
        assert mean_relative_difference(estimated, truth) == (
            pytest.approx(2.0)
        )

    def test_large_z_dilutes(self):
        truth = {1000: 10.0}
        estimated = {1000: 10.0, 1: 1.0}
        assert mean_relative_difference(estimated, truth) < 0.01

    def test_empty(self):
        assert mean_relative_difference({}, {}) == 0.0
