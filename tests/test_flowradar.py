"""FlowRadar: XOR-encoded counting table and peel decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import MergeError
from repro.sketches.flowradar import FlowRadar
from tests.conftest import make_flow


def _small_radar(**kwargs):
    defaults = dict(bloom_bits=20_000, num_cells=4000, num_hashes=4)
    defaults.update(kwargs)
    return FlowRadar(**defaults)


class TestDecode:
    def test_exact_decode_under_capacity(self, small_trace):
        sketch = _small_radar()
        truth = {}
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
            truth[packet.flow] = truth.get(packet.flow, 0) + packet.size
        decoded, complete = sketch.decode()
        assert complete
        assert decoded.keys() == truth.keys()
        for flow, size in truth.items():
            assert decoded[flow] == pytest.approx(size)

    def test_decode_does_not_mutate(self, small_trace):
        sketch = _small_radar()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        before = sketch.byte_count.copy()
        sketch.decode()
        sketch.decode()
        assert np.array_equal(sketch.byte_count, before)

    def test_overload_reports_incomplete(self):
        sketch = FlowRadar(bloom_bits=5000, num_cells=300, num_hashes=4)
        for i in range(2000):
            sketch.update(make_flow(i), 100)
        decoded, complete = sketch.decode()
        assert not complete
        assert len(decoded) < 2000

    def test_decoded_subset_is_correct_even_when_incomplete(self):
        # Bloom sized generously (registration must be reliable; an
        # undersized Bloom mis-attributes bytes via false positives),
        # cell table undersized so peeling stalls.
        sketch = FlowRadar(bloom_bits=60_000, num_cells=600, num_hashes=4)
        truth = {}
        for i in range(700):
            flow = make_flow(i)
            sketch.update(flow, 100 + i)
            truth[flow] = 100 + i
        decoded, _complete = sketch.decode()
        for flow, size in decoded.items():
            assert size == pytest.approx(truth[flow])

    def test_empty_decodes_empty(self):
        decoded, complete = _small_radar().decode()
        assert decoded == {} and complete

    def test_estimate_upper_bounds(self):
        sketch = _small_radar()
        flow = make_flow(1)
        sketch.update(flow, 500)
        sketch.update(flow, 250)
        assert sketch.estimate(flow) >= 750


class TestPacketMode:
    def test_count_packets_ignores_bytes(self):
        sketch = _small_radar(count_packets=True)
        flow = make_flow(1)
        for _ in range(5):
            sketch.update(flow, 1400)
        decoded, complete = sketch.decode()
        assert complete
        assert decoded[flow] == 5

    def test_inject_converts_bytes_to_packets(self):
        sketch = _small_radar(count_packets=True)
        sketch.inject(make_flow(1), 7690)
        decoded, _ = sketch.decode()
        assert decoded[make_flow(1)] == 10

    def test_byte_mode_inject_is_update(self):
        sketch = _small_radar()
        sketch.inject(make_flow(1), 1234)
        decoded, _ = sketch.decode()
        assert decoded[make_flow(1)] == 1234


class TestMerge:
    def test_merge_disjoint_hosts_decodes(self, small_trace):
        shards = small_trace.partition(2)
        parts = [_small_radar(seed=11) for _ in shards]
        for part, shard in zip(parts, shards):
            for packet in shard:
                part.update(packet.flow, packet.size)
        parts[0].merge(parts[1])
        decoded, complete = parts[0].decode()
        assert complete
        assert decoded.keys() == small_trace.flow_sizes().keys()

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            _small_radar(num_cells=4000).merge(_small_radar(num_cells=2000))
        with pytest.raises(MergeError):
            _small_radar().merge(_small_radar(count_packets=True))

    def test_matrix_is_byte_counters(self):
        sketch = _small_radar()
        sketch.update(make_flow(1), 100)
        matrix = sketch.to_matrix()
        assert matrix.shape == (1, 4000)
        assert matrix.sum() == pytest.approx(400)  # 4 cells x 100

    def test_reset_clears_everything(self):
        sketch = _small_radar()
        sketch.update(make_flow(1), 100)
        sketch.reset()
        assert sketch.byte_count.sum() == 0
        assert sketch.flow_count.sum() == 0
        assert all(x == 0 for x in sketch.flow_xor)
        decoded, complete = sketch.decode()
        assert decoded == {} and complete
