"""Sample-and-hold baseline [19]."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.baselines.sample_and_hold import SampleAndHold
from tests.conftest import make_flow


class TestSampleAndHold:
    def test_probability_validation(self):
        with pytest.raises(ConfigError):
            SampleAndHold(byte_probability=0.0)
        with pytest.raises(ConfigError):
            SampleAndHold(byte_probability=1.5)

    def test_held_flows_counted_exactly_after_sampling(self):
        monitor = SampleAndHold(byte_probability=1.0)  # sample all
        flow = make_flow(1)
        monitor.update(flow, 100)
        monitor.update(flow, 250)
        assert monitor.held[flow] == 350

    def test_heavy_flows_caught(self, medium_trace, medium_truth):
        threshold = 0.01 * medium_truth.total_bytes
        monitor = SampleAndHold.for_threshold(threshold, seed=3)
        monitor.process(medium_trace)
        true_hh = medium_truth.heavy_hitters(threshold)
        caught = sum(1 for flow in true_hh if flow in monitor.held)
        assert caught / len(true_hh) > 0.95

    def test_estimates_near_truth_for_heavies(
        self, medium_trace, medium_truth
    ):
        threshold = 0.01 * medium_truth.total_bytes
        monitor = SampleAndHold.for_threshold(threshold, seed=3)
        monitor.process(medium_trace)
        estimates = monitor.flow_estimates()
        true_hh = medium_truth.heavy_hitters(threshold)
        errors = [
            abs(estimates[flow] - size) / size
            for flow, size in true_hh.items()
            if flow in estimates
        ]
        assert sum(errors) / len(errors) < 0.15

    def test_small_flows_mostly_skipped(
        self, medium_trace, medium_truth
    ):
        """Memory stays proportional to the heavy tail, not all flows."""
        threshold = 0.01 * medium_truth.total_bytes
        monitor = SampleAndHold.for_threshold(threshold, seed=3)
        monitor.process(medium_trace)
        assert len(monitor.held) < 0.5 * medium_truth.cardinality

    def test_lower_probability_fewer_held(self, medium_trace):
        aggressive = SampleAndHold(byte_probability=1e-3, seed=5)
        conservative = SampleAndHold(byte_probability=1e-6, seed=5)
        aggressive.process(medium_trace)
        conservative.process(medium_trace)
        assert len(conservative.held) < len(aggressive.held)

    def test_for_threshold_miss_probability(self):
        monitor = SampleAndHold.for_threshold(
            100_000, oversampling=20.0
        )
        assert monitor.byte_probability == pytest.approx(2e-4)

    def test_memory_tracks_held_flows(self, small_trace):
        monitor = SampleAndHold(byte_probability=1e-3, seed=7)
        monitor.process(small_trace)
        assert monitor.memory_bytes() == 32 * len(monitor.held)

    def test_reset(self):
        monitor = SampleAndHold(byte_probability=1.0)
        monitor.update(make_flow(1), 100)
        monitor.reset()
        assert not monitor.held and monitor.total_bytes == 0
