"""CPU cost model: calibration against the paper's measurements."""

from __future__ import annotations

import pytest

from repro.dataplane.cost_model import (
    CPU_HZ,
    DISPATCH_CYCLES_INMEMORY,
    DISPATCH_CYCLES_TESTBED,
    FASTPATH_UPDATE_CYCLES,
    PAPER_CYCLES_PER_PACKET,
    CostModel,
)
from repro.fastpath.topk import ENTRY_BYTES, UpdateKind
from repro.sketches.cardinality import FMSketch, KMinSketch, LinearCounting
from repro.sketches.countmin import CountMinSketch
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch
from repro.sketches.univmon import UnivMon

PAPER_SKETCHES = {
    "deltoid": lambda: Deltoid(width=4000, depth=4),
    "univmon": lambda: UnivMon(),
    "twolevel": lambda: TwoLevelSketch.paper_config(),
    "flowradar": lambda: FlowRadar(),
    "fm": lambda: FMSketch(num_registers=65_536, depth=4),
    "kmin": lambda: KMinSketch(k=65_536, depth=4),
    "lc": lambda: LinearCounting(width=10_000, depth=4),
    "mrac": lambda: MRAC(width=4000),
}


class TestCalibration:
    @pytest.mark.parametrize("name", sorted(PAPER_SKETCHES))
    def test_paper_configs_match_figure15(self, name):
        """§7.1 configurations land on the measured cycles exactly."""
        model = CostModel.in_memory()
        cycles = model.sketch_cycles(PAPER_SKETCHES[name]())
        assert cycles == pytest.approx(
            PAPER_CYCLES_PER_PACKET[name], rel=1e-6
        )

    def test_revsketch_paper_profile(self):
        """The 5-tuple RevSketch (7x16-bit words, 4 rows) hits 3858."""
        sketch = ReversibleSketch(
            word_bits=16, num_words=7, subindex_bits=2, depth=4
        )
        model = CostModel.in_memory()
        # Same op counts as the calibration profile -> same cycles.
        assert model.sketch_cycles(sketch) == pytest.approx(3858.0)

    def test_cost_scales_with_configuration(self):
        """Halving Deltoid's rows should roughly halve its cost."""
        model = CostModel.in_memory()
        full = model.sketch_cycles(Deltoid(width=4000, depth=4))
        half = model.sketch_cycles(Deltoid(width=4000, depth=2))
        assert half == pytest.approx(full / 2, rel=0.2)

    def test_uncalibrated_sketch_uses_raw_profile(self):
        model = CostModel.in_memory()
        cycles = model.sketch_cycles(CountMinSketch(width=100, depth=4))
        assert 100 < cycles < 2000

    def test_paper_ordering_preserved(self):
        """Deltoid slowest, MRAC fastest (Figure 2a / 15)."""
        model = CostModel.in_memory()
        costs = {
            name: model.sketch_cycles(build())
            for name, build in PAPER_SKETCHES.items()
        }
        assert costs["deltoid"] == max(costs.values())
        assert costs["mrac"] == min(costs.values())


class TestFastPathCosts:
    def test_update_cost(self):
        model = CostModel.in_memory()
        assert (
            model.fastpath_cycles(UpdateKind.HIT, 204)
            == FASTPATH_UPDATE_CYCLES
        )
        assert (
            model.fastpath_cycles(UpdateKind.INSERT, 204)
            == FASTPATH_UPDATE_CYCLES
        )

    def test_kickout_scales_with_capacity(self):
        model = CostModel.in_memory()
        small = model.fastpath_cycles(UpdateKind.KICKOUT, 100)
        large = model.fastpath_cycles(UpdateKind.KICKOUT, 200)
        assert large == pytest.approx(2 * small)

    def test_default_kickout_near_figure15(self):
        """8 KB fast path: kick-out ~= 12,332 cycles (Figure 15)."""
        model = CostModel.in_memory()
        cycles = model.fastpath_kickout_cycles(8192)
        assert cycles == pytest.approx(12_332, rel=0.05)

    def test_update_far_cheaper_than_any_sketch(self):
        model = CostModel.in_memory()
        assert FASTPATH_UPDATE_CYCLES < 0.15 * min(
            PAPER_CYCLES_PER_PACKET.values()
        )


class TestThroughputConversion:
    def test_gbps_conversion(self):
        model = CostModel(cpu_hz=1e9)
        # 1e9 cycles at 1 GHz = 1 second; 125 MB = 1 Gb.
        assert model.gbps(125_000_000, 1e9) == pytest.approx(1.0)

    def test_consumer_rate_mrac_near_40gbps(self):
        """2.93 GHz / 404 cycles * 769 B ~= 44 Gbps (Figure 6b)."""
        model = CostModel.in_memory()
        rate = model.consumer_rate_gbps(MRAC(width=4000))
        assert 40 <= rate <= 50

    def test_consumer_rate_deltoid_under_2gbps(self):
        model = CostModel.in_memory()
        rate = model.consumer_rate_gbps(Deltoid(width=4000, depth=4))
        assert 1.0 <= rate <= 2.5

    def test_thread_scaling_sublinear(self):
        """Figure 2b: Deltoid barely reaches 5 Gbps with 5 threads."""
        model = CostModel.in_memory()
        sketch = Deltoid(width=4000, depth=4)
        one = model.threaded_rate_gbps(sketch, 1)
        five = model.threaded_rate_gbps(sketch, 5)
        assert one == pytest.approx(
            model.consumer_rate_gbps(sketch)
        )
        assert one < five < 5 * one
        assert 4.0 <= five <= 7.5

    def test_thread_validation(self):
        with pytest.raises(ValueError):
            CostModel.in_memory().threaded_rate_gbps(MRAC(), 0)

    def test_profiles(self):
        assert (
            CostModel.in_memory().dispatch_cycles
            == DISPATCH_CYCLES_INMEMORY
        )
        assert (
            CostModel.testbed().dispatch_cycles
            == DISPATCH_CYCLES_TESTBED
        )
        assert CostModel.in_memory().cpu_hz == CPU_HZ

    def test_dpdk_profile_boosts_sketchvisor_more(self, medium_trace):
        """The paper's §6 future-work expectation: with a faster
        forwarding pipeline, the fast path's relief is worth more."""
        from repro.dataplane.switch import SoftwareSwitch
        from repro.fastpath.topk import FastPath

        def gain(model):
            no_fp = SoftwareSwitch(
                Deltoid(width=512, depth=4), fastpath=None,
                cost_model=model,
            ).process(medium_trace)
            sv = SoftwareSwitch(
                Deltoid(width=512, depth=4), fastpath=FastPath(8192),
                cost_model=model,
            ).process(medium_trace)
            return sv.throughput_gbps / no_fp.throughput_gbps

        assert CostModel.dpdk().dispatch_cycles < (
            CostModel.testbed().dispatch_cycles
        )
        assert gain(CostModel.dpdk()) >= gain(CostModel.testbed())
