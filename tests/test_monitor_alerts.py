"""Monitoring alert semantics across detection task kinds."""

from __future__ import annotations

import pytest

from repro.common.flow import FlowKey, Packet
from repro.framework.monitor import AlertKind, ContinuousMonitor
from repro.tasks.ddos import DDoSTask
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.anomalies import inject_ddos_victims
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace


@pytest.fixture(scope="module")
def attack_epoch():
    base = generate_trace(TraceConfig(num_flows=800, seed=23))
    trace, victims = inject_ddos_victims(
        base, num_victims=2, sources_per_victim=200
    )
    return trace, victims


class TestDDoSAlerts:
    def test_ddos_alerts_name_victims(self, attack_epoch):
        trace, victims = attack_epoch
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                )
            ]
        )
        summary = monitor.process_epoch(trace)
        ddos_alerts = [
            a for a in summary.alerts if a.kind is AlertKind.DDOS
        ]
        assert set(victims) <= {a.subject for a in ddos_alerts}
        for alert in ddos_alerts:
            assert alert.magnitude > 120

    def test_mixed_tasks_separate_alert_kinds(self, attack_epoch):
        trace, _victims = attack_epoch
        truth = GroundTruth.from_trace(trace)
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                ),
                HeavyHitterTask(
                    "flowradar",
                    threshold=0.01 * truth.total_bytes,
                ),
            ]
        )
        summary = monitor.process_epoch(trace)
        kinds = {alert.kind for alert in summary.alerts}
        assert AlertKind.DDOS in kinds
        assert AlertKind.HEAVY_HITTER in kinds
        # Subjects are host IPs for DDoS, flows for HH — disjoint types.
        ddos_subjects = {
            a.subject
            for a in summary.alerts
            if a.kind is AlertKind.DDOS
        }
        assert all(isinstance(s, int) for s in ddos_subjects)

    def test_alert_epoch_indices_advance(self, attack_epoch):
        trace, _victims = attack_epoch
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                )
            ]
        )
        first = monitor.process_epoch(trace)
        second = monitor.process_epoch(trace)
        assert {a.epoch for a in first.alerts} == {0}
        assert {a.epoch for a in second.alerts} == {1}


class TestMultiEpochHistory:
    def test_alerts_accumulate_per_epoch(self, attack_epoch):
        trace, victims = attack_epoch
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                )
            ]
        )
        for _ in range(3):
            monitor.process_epoch(trace)
        assert len(monitor.history) == 3
        ddos = monitor.alerts(AlertKind.DDOS)
        # Every epoch contributed alerts, tagged with its own index.
        assert {a.epoch for a in ddos} == {0, 1, 2}
        per_epoch = len(monitor.history[0].alerts)
        assert per_epoch > 0
        assert len(ddos) == 3 * per_epoch
        # The same attack every epoch makes every victim recurring.
        assert set(victims) <= monitor.recurring_subjects(
            AlertKind.DDOS, min_epochs=3
        )

    def test_history_preserves_each_epoch_summary(self, attack_epoch):
        trace, _victims = attack_epoch
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                )
            ]
        )
        summaries = [monitor.process_epoch(trace) for _ in range(2)]
        assert [s.epoch for s in monitor.history] == [0, 1]
        assert monitor.history == summaries


class TestHeavyChangerEpochPairs:
    """Heavy changer must compare each epoch against the previous one."""

    @pytest.fixture(scope="class")
    def changer_epochs(self):
        epoch_a = generate_trace(TraceConfig(num_flows=400, seed=31))
        burst_flow = FlowKey(0x0A000001, 0x0A000002, 40000, 443)
        last_ts = epoch_a.packets[-1].timestamp
        burst = [
            Packet(burst_flow, 1400, timestamp=last_ts)
            for _ in range(400)
        ]
        epoch_b = Trace(list(epoch_a.packets) + burst)
        return epoch_a, epoch_b, burst_flow

    def test_first_epoch_produces_no_changer_answer(self, changer_epochs):
        epoch_a, _epoch_b, _flow = changer_epochs
        monitor = ContinuousMonitor(
            [HeavyChangerTask("flowradar", threshold=100_000)]
        )
        summary = monitor.process_epoch(epoch_a)
        assert summary.results == {}
        assert summary.alerts == []

    def test_changer_alerts_compare_adjacent_epochs(self, changer_epochs):
        epoch_a, epoch_b, burst_flow = changer_epochs
        monitor = ContinuousMonitor(
            [HeavyChangerTask("flowradar", threshold=100_000)]
        )
        monitor.process_epoch(epoch_a)
        second = monitor.process_epoch(epoch_b)
        changers = [
            a
            for a in second.alerts
            if a.kind is AlertKind.HEAVY_CHANGER
        ]
        # Only the injected burst differs between the two epochs.
        assert {a.subject for a in changers} == {burst_flow}
        assert all(a.epoch == 1 for a in changers)
        assert all(a.magnitude > 100_000 for a in changers)
        # A third, unchanged epoch (b vs b) raises no changer alerts.
        third = monitor.process_epoch(epoch_b)
        assert [
            a
            for a in third.alerts
            if a.kind is AlertKind.HEAVY_CHANGER
        ] == []
