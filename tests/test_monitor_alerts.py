"""Monitoring alert semantics across detection task kinds."""

from __future__ import annotations

import pytest

from repro.framework.monitor import AlertKind, ContinuousMonitor
from repro.tasks.ddos import DDoSTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.anomalies import inject_ddos_victims
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth


@pytest.fixture(scope="module")
def attack_epoch():
    base = generate_trace(TraceConfig(num_flows=800, seed=23))
    trace, victims = inject_ddos_victims(
        base, num_victims=2, sources_per_victim=200
    )
    return trace, victims


class TestDDoSAlerts:
    def test_ddos_alerts_name_victims(self, attack_epoch):
        trace, victims = attack_epoch
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                )
            ]
        )
        summary = monitor.process_epoch(trace)
        ddos_alerts = [
            a for a in summary.alerts if a.kind is AlertKind.DDOS
        ]
        assert set(victims) <= {a.subject for a in ddos_alerts}
        for alert in ddos_alerts:
            assert alert.magnitude > 120

    def test_mixed_tasks_separate_alert_kinds(self, attack_epoch):
        trace, _victims = attack_epoch
        truth = GroundTruth.from_trace(trace)
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                ),
                HeavyHitterTask(
                    "flowradar",
                    threshold=0.01 * truth.total_bytes,
                ),
            ]
        )
        summary = monitor.process_epoch(trace)
        kinds = {alert.kind for alert in summary.alerts}
        assert AlertKind.DDOS in kinds
        assert AlertKind.HEAVY_HITTER in kinds
        # Subjects are host IPs for DDoS, flows for HH — disjoint types.
        ddos_subjects = {
            a.subject
            for a in summary.alerts
            if a.kind is AlertKind.DDOS
        }
        assert all(isinstance(s, int) for s in ddos_subjects)

    def test_alert_epoch_indices_advance(self, attack_epoch):
        trace, _victims = attack_epoch
        monitor = ContinuousMonitor(
            [
                DDoSTask(
                    threshold=120, sketch_params={"inner_width": 256}
                )
            ]
        )
        first = monitor.process_epoch(trace)
        second = monitor.process_epoch(trace)
        assert {a.epoch for a in first.alerts} == {0}
        assert {a.epoch for a in second.alerts} == {1}
