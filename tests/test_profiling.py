"""Cycle-level profiling: stage timers, sampler, merge, determinism."""

from __future__ import annotations

import json
import os

import pytest

from repro import PipelineConfig, SketchVisorPipeline, Telemetry
from repro.common.hashing import HashFamily
from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.topk import FastPath
from repro.framework.modes import DataPlaneMode
from repro.sketches.countmin import CountMinSketch
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry import (
    ProfileConfig,
    Profiler,
    profile_from_env,
    telemetry_from_env,
)
from repro.telemetry.exporters import write_chrome_trace
from repro.telemetry.profiling import epoch_attribution, write_folded
from repro.telemetry.tracer import Tracer
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(num_flows=800, seed=7))


@pytest.fixture(scope="module")
def truth(trace):
    return GroundTruth.from_trace(trace)


def _profiled_telemetry(sample_hz: float = 0.0) -> Telemetry:
    return Telemetry(profile=ProfileConfig(sample_hz=sample_hz))


def _run_pipeline(trace, truth, telemetry=None, **config_kwargs):
    pipeline = SketchVisorPipeline(
        HeavyHitterTask("univmon", threshold=0.001),
        dataplane=DataPlaneMode.SKETCHVISOR,
        config=PipelineConfig(
            num_hosts=2,
            seed=3,
            batch=True,
            telemetry=telemetry,
            **config_kwargs,
        ),
    )
    return pipeline.run_epoch(trace, truth)


# ----------------------------------------------------------------------
# Stage timers
# ----------------------------------------------------------------------
class TestStageTimers:
    def test_stage_records_wall_cpu_count(self):
        telemetry = _profiled_telemetry()
        profiler = telemetry.profiler
        with profiler.stage("epoch"):
            with profiler.stage("dataplane"):
                sum(range(20_000))
        assert set(profiler.stages) == {"epoch", "dataplane"}
        wall, cpu, count = profiler.stages["epoch"]
        assert wall > 0 and cpu >= 0 and count == 1
        # Stages and tracer spans are one tree.
        assert [s.name for s in telemetry.tracer.spans] == [
            "epoch",
            "dataplane",
        ]

    def test_stage_table_sorted_by_wall(self):
        telemetry = _profiled_telemetry()
        profiler = telemetry.profiler
        profiler.stages = {
            "small": [10, 10, 1],
            "big": [100, 90, 2],
        }
        table = profiler.stage_table()
        assert list(table) == ["big", "small"]
        assert table["big"]["wall_seconds"] == pytest.approx(1e-7)
        assert table["big"]["count"] == 2

    def test_inline_credits_materialize_as_child_spans(self):
        telemetry = _profiled_telemetry()
        profiler = telemetry.profiler
        with profiler.stage("dataplane.host"):
            profiler.add("fastpath.topk", 5_000_000, count=42)
        assert profiler.stages["fastpath.topk"] == [
            5_000_000,
            5_000_000,
            42,
        ]
        child = telemetry.tracer.spans[-1]
        assert child.name == "fastpath.topk"
        assert child.attrs == {"aggregated": 42}
        parent = telemetry.tracer.spans[child.parent]
        assert parent.name == "dataplane.host"

    def test_credit_without_open_stage_is_dropped(self):
        profiler = _profiled_telemetry().profiler
        profiler.add("orphan", 1000)
        assert "orphan" not in profiler.stages

    def test_trace_span_routes_through_profiler(self, trace, truth):
        telemetry = _profiled_telemetry()
        _run_pipeline(trace, truth, telemetry=telemetry)
        stages = telemetry.profiler.stages
        for expected in (
            "epoch",
            "dataplane",
            "dataplane.host",
            "trace.partition",
            "switch.sketch_update",
            "controlplane.merge",
            "hashing",
        ):
            assert expected in stages, expected

    def test_serialization_stage_on_collector_path(
        self, trace, truth
    ):
        """With a report collector the wire encoding is its own
        stage (a fault-free FaultPlan routes reports through the
        v2 codec without injecting anything)."""
        from repro.faults import FaultPlan

        telemetry = _profiled_telemetry()
        _run_pipeline(
            trace, truth, telemetry=telemetry, faults=FaultPlan()
        )
        stages = telemetry.profiler.stages
        assert "controlplane.collect" in stages
        assert "serialize.report" in stages

    def test_stage_histograms_published(self, trace, truth):
        telemetry = _profiled_telemetry()
        _run_pipeline(trace, truth, telemetry=telemetry)
        snapshot = telemetry.registry.snapshot()
        assert "sketchvisor_stage_wall_seconds" in snapshot
        assert "sketchvisor_stage_cpu_seconds" in snapshot
        stages = {
            sample["labels"]["stage"]
            for sample in snapshot["sketchvisor_stage_wall_seconds"][
                "samples"
            ]
        }
        assert "dataplane" in stages
        rss = snapshot["sketchvisor_process_rss_bytes"]["samples"]
        assert any(s["value"] > 0 for s in rss)


# ----------------------------------------------------------------------
# Acceptance criteria
# ----------------------------------------------------------------------
class TestAcceptance:
    def test_attribution_covers_90_percent_of_epoch(self, trace, truth):
        telemetry = _profiled_telemetry()
        _run_pipeline(trace, truth, telemetry=telemetry)
        assert epoch_attribution(telemetry.tracer) >= 0.90

    def test_profiled_run_bit_identical(self, trace, truth):
        bare = _run_pipeline(trace, truth, telemetry=None)
        profiled = _run_pipeline(
            trace, truth, telemetry=_profiled_telemetry(sample_hz=97.0)
        )
        assert profiled.score.recall == bare.score.recall
        assert profiled.score.precision == bare.score.precision
        assert (
            profiled.score.relative_error == bare.score.relative_error
        )
        assert profiled.throughput_gbps == bare.throughput_gbps
        assert (
            profiled.fastpath_byte_fraction
            == bare.fastpath_byte_fraction
        )

    def test_fastpath_is_the_sketchvisor_hotspot(self):
        """The known hotspot reproduces: on the batched SketchVisor
        path (vectorized CountMin updates), the per-packet fast-path
        top-k dominates the normal-path sketch update."""
        trace = generate_trace(TraceConfig(num_flows=6000, seed=1))
        telemetry = _profiled_telemetry()
        profiler = telemetry.profiler
        switch = SoftwareSwitch(
            CountMinSketch(seed=1),
            fastpath=FastPath(8192),
            cost_model=CostModel.in_memory(),
            buffer_packets=1024,
            batch=True,
        )
        switch.profiler = profiler
        with profiler.stage("dataplane.host"):
            switch.process(trace)
        topk_wall = profiler.stages["fastpath.topk"][0]
        sketch_wall = profiler.stages["switch.sketch_update"][0]
        assert topk_wall >= sketch_wall

    def test_engine_loop_unprofiled_when_off(
        self, trace, truth, monkeypatch
    ):
        """Profiling off means no profiler plumbing anywhere."""
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        telemetry = Telemetry()
        result = _run_pipeline(trace, truth, telemetry=telemetry)
        assert telemetry.profiler is None
        assert result.score.recall is not None


# ----------------------------------------------------------------------
# Sampler + folded output
# ----------------------------------------------------------------------
class TestSampler:
    def test_sampler_collects_folded_stacks(self):
        telemetry = _profiled_telemetry(sample_hz=400.0)
        profiler = telemetry.profiler
        with profiler.stage("busy"):
            deadline = 0
            for _ in range(200):
                deadline += sum(range(10_000))
        assert profiler.folded, "no stacks sampled at 400 Hz"
        assert all(
            key.startswith("busy;") for key in profiler.folded
        )
        assert profiler.sample_counts.get("busy", 0) >= 1
        # Sampler thread stopped on deactivation.
        assert profiler._sampler is None

    def test_sampling_disabled_at_zero_hz(self):
        telemetry = _profiled_telemetry(sample_hz=0.0)
        profiler = telemetry.profiler
        with profiler.stage("quiet"):
            sum(range(10_000))
        assert profiler.folded == {}
        assert "quiet" in profiler.stages

    def test_write_folded_format(self, tmp_path):
        destination = tmp_path / "stacks.folded"
        write_folded(
            {"epoch;a:f;b:g": 3, "epoch;a:f": 1}, destination
        )
        lines = destination.read_text().splitlines()
        assert lines == ["epoch;a:f 1", "epoch;a:f;b:g 3"]


# ----------------------------------------------------------------------
# Hash instrumentation hygiene
# ----------------------------------------------------------------------
class TestHashInstrumentation:
    def test_wrappers_installed_only_while_active(self):
        assert not hasattr(HashFamily.bucket, "__wrapped__")
        profiler = _profiled_telemetry().profiler
        with profiler.stage("epoch"):
            assert hasattr(HashFamily.bucket, "__wrapped__")
            family = HashFamily(depth=2, seed=1)
            family.bucket(0, 1234, 64)
        assert not hasattr(HashFamily.bucket, "__wrapped__")
        assert profiler.stages["hashing"][2] >= 1

    def test_hash_values_unchanged_under_instrumentation(self):
        family = HashFamily(depth=3, seed=9)
        bare = [family.bucket(i, 987654321, 128) for i in range(3)]
        profiler = _profiled_telemetry().profiler
        with profiler.stage("epoch"):
            wrapped = [
                family.bucket(i, 987654321, 128) for i in range(3)
            ]
        assert wrapped == bare


# ----------------------------------------------------------------------
# Worker aggregation + Chrome-trace lanes
# ----------------------------------------------------------------------
class TestWorkerAggregation:
    def test_merge_payload_sums_and_absorbs(self):
        parent = _profiled_telemetry()
        worker = _profiled_telemetry()
        with worker.profiler.stage("dataplane.host", host=1):
            worker.profiler.add("fastpath.topk", 1_000_000, 5)
        payload = worker.profiler.to_payload()
        payload_json = json.loads(json.dumps(payload))

        with parent.profiler.stage("dataplane"):
            anchor = parent.tracer.current
            parent.profiler.merge_payload(
                payload_json, parent_span=anchor
            )
        stages = parent.profiler.stages
        assert stages["fastpath.topk"][2] == 5
        assert stages["dataplane.host"][2] == 1
        absorbed = [
            s
            for s in parent.tracer.spans
            if s.name == "dataplane.host"
        ]
        assert len(absorbed) == 1
        # Worker identity preserved; rooted under the parent span.
        assert absorbed[0].pid == payload["pid"]
        root = parent.tracer.spans[absorbed[0].parent]
        assert root.name == "dataplane"

    def test_pool_workers_get_separate_chrome_lanes(
        self, trace, truth, tmp_path
    ):
        telemetry = _profiled_telemetry()
        _run_pipeline(
            trace,
            truth,
            telemetry=telemetry,
            workers=2,
            profile=ProfileConfig(sample_hz=0.0),
        )
        destination = tmp_path / "trace.json"
        write_chrome_trace(telemetry.tracer, destination)
        events = json.loads(destination.read_text())["traceEvents"]
        assert events and all(
            e["pid"] > 0 and e["tid"] > 0 for e in events
        )
        host_pids = {
            e["pid"]
            for e in events
            if e["name"] == "dataplane.host"
        }
        parent_pid = os.getpid()
        # Host epochs ran in pool workers: their spans keep the worker
        # pid, giving each host its own lane next to the parent's.
        assert host_pids and parent_pid not in host_pids
        assert any(e["pid"] == parent_pid for e in events)
        # Worker stage totals merged into the parent profiler.
        assert "dataplane.host" in telemetry.profiler.stages
        assert telemetry.profiler.stages["switch.sketch_update"][2] > 0
        assert len(telemetry.profiler.rss) >= 2

    def test_absorb_rebases_and_remaps_parents(self):
        parent = Tracer()
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        with parent.span("root"):
            anchor = parent.current
            parent.absorb(
                worker.span_rows(),
                origin=worker.origin,
                parent=anchor,
            )
        names = [s.name for s in parent.spans]
        assert names == ["root", "outer", "inner"]
        outer = parent.spans[1]
        inner = parent.spans[2]
        assert parent.spans[outer.parent].name == "root"
        assert parent.spans[inner.parent].name == "outer"
        assert outer.depth == 1 and inner.depth == 2


# ----------------------------------------------------------------------
# Environment gates
# ----------------------------------------------------------------------
class TestEnvGates:
    def test_profile_from_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_from_env() is None
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert profile_from_env() is None

    def test_profile_from_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_HZ", "13.5")
        monkeypatch.setenv("REPRO_PROFILE_MEMORY", "1")
        config = profile_from_env()
        assert config is not None
        assert config.sample_hz == 13.5
        assert config.memory is True

    def test_telemetry_from_env_enables_profiler(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_HZ", "0")
        telemetry = telemetry_from_env()
        assert telemetry is not None
        assert telemetry.profiler is not None

    def test_pipeline_config_env_gate(self, monkeypatch, trace, truth):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_HZ", "0")
        config = PipelineConfig(num_hosts=1, seed=3, batch=True)
        assert isinstance(config.profile, ProfileConfig)
        assert config.telemetry is not None
        assert config.telemetry.profiler is not None

    def test_reset_recreates_profiler(self):
        telemetry = _profiled_telemetry()
        first = telemetry.profiler
        with first.stage("epoch"):
            pass
        telemetry.reset()
        assert telemetry.profiler is not None
        assert telemetry.profiler is not first
        assert telemetry.profiler.stages == {}


# ----------------------------------------------------------------------
# Memory tracking
# ----------------------------------------------------------------------
class TestMemory:
    def test_rss_high_water_recorded(self):
        profiler = _profiled_telemetry().profiler
        with profiler.stage("epoch"):
            data = [0] * 100_000
        assert profiler.rss.get(str(os.getpid()), 0) > 0
        del data

    def test_tracemalloc_top_sites(self):
        telemetry = Telemetry(
            profile=ProfileConfig(
                sample_hz=0.0, memory=True, memory_top=5
            )
        )
        profiler = telemetry.profiler
        with profiler.stage("epoch"):
            hoard = [bytes(1024) for _ in range(200)]
        assert profiler.memory_top
        assert len(profiler.memory_top) <= 5
        site, size = profiler.memory_top[0]
        assert isinstance(site, str) and size > 0
        del hoard
