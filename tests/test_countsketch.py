"""CountSketch: unbiased median estimator with sign hashes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.sketches.countsketch import CountSketch
from tests.conftest import make_flow


class TestCountSketch:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CountSketch(width=0)

    def test_exact_when_sparse(self):
        sketch = CountSketch(width=4096, depth=5)
        flow = make_flow(1)
        sketch.update(flow, 300)
        sketch.update(flow, 200)
        assert sketch.estimate(flow) == 500

    def test_roughly_unbiased_under_load(self):
        """Signed collisions should cancel: mean error near zero."""
        sketch = CountSketch(width=256, depth=5, seed=3)
        truth = {}
        rng = np.random.default_rng(5)
        for i in range(2000):
            size = int(rng.integers(50, 1500))
            sketch.update(make_flow(i), size)
            truth[i] = truth.get(i, 0) + size
        errors = [
            sketch.estimate(make_flow(i)) - truth[i]
            for i in range(0, 2000, 10)
        ]
        assert abs(float(np.mean(errors))) < float(np.std(errors))

    def test_merge_equals_union(self, small_trace):
        whole = CountSketch(width=256, depth=5, seed=9)
        a = CountSketch(width=256, depth=5, seed=9)
        b = CountSketch(width=256, depth=5, seed=9)
        for index, packet in enumerate(small_trace):
            whole.update(packet.flow, packet.size)
            (a if index % 2 else b).update(packet.flow, packet.size)
        a.merge(b)
        assert np.array_equal(a.counters, whole.counters)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            CountSketch(width=100).merge(CountSketch(width=128))

    def test_l2_estimate_positive_and_sane(self, small_trace):
        sketch = CountSketch(width=512, depth=5)
        truth = {}
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
            truth[packet.flow] = truth.get(packet.flow, 0) + packet.size
        true_l2 = sum(v * v for v in truth.values())
        assert sketch.l2_estimate() == pytest.approx(true_l2, rel=0.3)

    def test_positions_signed(self):
        sketch = CountSketch(width=128, depth=5)
        flow = make_flow(2)
        positions = sketch.matrix_positions(flow)
        assert len(positions) == 5
        assert all(coef in (1.0, -1.0) for _r, _c, coef in positions)
        sketch.update(flow, 99)
        matrix = np.zeros_like(sketch.counters)
        for row, col, coef in positions:
            matrix[row, col] += 99 * coef
        assert np.array_equal(matrix, sketch.counters)

    def test_matrix_roundtrip(self):
        sketch = CountSketch(width=64, depth=3)
        sketch.update(make_flow(1), 100)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert clone.estimate(make_flow(1)) == sketch.estimate(
            make_flow(1)
        )
