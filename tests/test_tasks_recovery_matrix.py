"""Every task under every recovery arm: nothing crashes, orderings hold.

A compressed version of the Figure 7-11 benches as fast unit tests:
light sketch configs, one shared trace, every (task, arm) combination.
"""

from __future__ import annotations

import pytest

from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.distribution import FlowSizeDistributionTask
from repro.tasks.entropy import EntropyTask
from repro.tasks.heavy_hitter import HeavyHitterTask

ARMS = [
    RecoveryMode.NO_RECOVERY,
    RecoveryMode.LOWER,
    RecoveryMode.UPPER,
    RecoveryMode.SKETCHVISOR,
]

_LIGHT_HH = {
    "deltoid": {"width": 256, "depth": 4},
    "flowradar": {"bloom_bits": 40_000, "num_cells": 12_000},
    "univmon": {
        "level_widths": (512, 256, 128),
        "depth": 5,
        "heap_size": 100,
    },
}


def _run(task, trace, truth, arm):
    pipeline = SketchVisorPipeline(
        task,
        dataplane=DataPlaneMode.SKETCHVISOR,
        recovery=arm,
        config=PipelineConfig(),
    )
    return pipeline.run_epoch(trace, truth)


class TestHeavyHitterMatrix:
    @pytest.mark.parametrize("solution", sorted(_LIGHT_HH))
    @pytest.mark.parametrize("arm", ARMS, ids=lambda a: a.value)
    def test_arm_runs_and_scores(
        self, solution, arm, medium_trace, medium_truth
    ):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask(
            solution,
            threshold=threshold,
            sketch_params=_LIGHT_HH[solution],
        )
        result = _run(task, medium_trace, medium_truth, arm)
        assert 0.0 <= result.score.recall <= 1.0
        if arm is RecoveryMode.SKETCHVISOR:
            assert result.score.recall >= 0.9

    @pytest.mark.parametrize("solution", sorted(_LIGHT_HH))
    def test_recovery_dominates_nr(
        self, solution, medium_trace, medium_truth
    ):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask(
            solution,
            threshold=threshold,
            sketch_params=_LIGHT_HH[solution],
        )
        nr = _run(task, medium_trace, medium_truth,
                  RecoveryMode.NO_RECOVERY)
        sv = _run(task, medium_trace, medium_truth,
                  RecoveryMode.SKETCHVISOR)
        assert sv.score.recall >= nr.score.recall
        assert sv.score.relative_error <= nr.score.relative_error


class TestEstimationMatrix:
    @pytest.mark.parametrize("arm", ARMS, ids=lambda a: a.value)
    def test_cardinality_arms(self, arm, medium_trace, medium_truth):
        result = _run(
            CardinalityTask("lc"), medium_trace, medium_truth, arm
        )
        assert result.answer >= 0

    @pytest.mark.parametrize("arm", ARMS, ids=lambda a: a.value)
    def test_entropy_arms(self, arm, medium_trace, medium_truth):
        result = _run(
            EntropyTask("univmon",
                        sketch_params=_LIGHT_HH["univmon"]),
            medium_trace, medium_truth, arm,
        )
        assert result.answer >= 0

    @pytest.mark.parametrize("arm", ARMS, ids=lambda a: a.value)
    def test_fsd_arms(self, arm, medium_trace, medium_truth):
        result = _run(
            FlowSizeDistributionTask("mrac"),
            medium_trace, medium_truth, arm,
        )
        assert result.score.mrd is not None
        assert result.score.mrd >= 0
