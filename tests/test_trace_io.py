"""Trace persistence: npz and CSV round trips."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.traffic.io import export_csv, import_csv, load_trace, save_trace


class TestNpzRoundTrip:
    def test_roundtrip_identical(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(small_trace)
        for original, restored in zip(small_trace, loaded):
            assert original.flow == restored.flow
            assert original.size == restored.size
            assert original.timestamp == pytest.approx(
                restored.timestamp
            )

    def test_ground_truth_preserved(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        assert load_trace(path).flow_sizes() == small_trace.flow_sizes()

    def test_missing_arrays_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, src=np.zeros(1))
        with pytest.raises(ConfigError):
            load_trace(path)


class TestCsvRoundTrip:
    def test_roundtrip_identical(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        export_csv(small_trace, path)
        loaded = import_csv(path)
        assert loaded.flow_sizes() == small_trace.flow_sizes()

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ConfigError):
            import_csv(path)

    def test_unsorted_rows_are_sorted(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text(
            "timestamp,src_ip,dst_ip,src_port,dst_port,proto,size\n"
            "2.0,1,2,3,4,6,100\n"
            "1.0,5,6,7,8,6,200\n"
        )
        trace = import_csv(path)
        assert trace[0].timestamp == 1.0
        assert trace[1].timestamp == 2.0
