"""Degraded-mode merge: quorum, rescaling, and accuracy bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import MergeError, QuorumError
from repro.controlplane.controller import Controller
from repro.controlplane.merge import rescale_sketch, rescale_snapshot
from repro.controlplane.recovery import DegradedEpoch, RecoveryMode
from repro.dataplane.host import Host
from repro.sketches.deltoid import Deltoid
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth

NUM_HOSTS = 4


@pytest.fixture(scope="module")
def zipf_trace():
    """Seeded Zipf trace, big enough for stable heavy-hitter sets."""
    return generate_trace(
        TraceConfig(num_flows=2000, zipf_alpha=1.2, seed=77)
    )


@pytest.fixture(scope="module")
def reports(zipf_trace):
    shards = zipf_trace.partition(NUM_HOSTS)
    return [
        Host(
            host_id,
            Deltoid(width=256, depth=2, seed=5),
            fastpath_bytes=8192,
        ).run_epoch(shard)
        for host_id, shard in enumerate(shards)
    ]


class TestQuorum:
    def test_full_set_is_not_degraded(self, reports):
        network = Controller().aggregate(
            reports, expected_hosts=NUM_HOSTS
        )
        assert network.degraded is None
        assert network.num_hosts == NUM_HOSTS

    def test_below_quorum_raises(self, reports):
        with pytest.raises(QuorumError):
            Controller(quorum=0.5).aggregate(
                reports[:1],
                expected_hosts=NUM_HOSTS,
                missing_hosts=[1, 2, 3],
            )

    def test_no_reports_with_expectation_raises_quorum(self):
        with pytest.raises(QuorumError):
            Controller().aggregate([], expected_hosts=4)

    def test_no_reports_without_expectation_raises_merge(self):
        with pytest.raises(MergeError):
            Controller().aggregate([])

    def test_invalid_quorum_rejected(self):
        with pytest.raises(MergeError):
            Controller(quorum=0.0)
        with pytest.raises(MergeError):
            Controller(quorum=1.5)

    def test_without_expected_hosts_behaviour_unchanged(self, reports):
        """Legacy callers (no expected_hosts) never see degradation."""
        network = Controller().aggregate(reports[:2])
        assert network.degraded is None
        assert network.num_hosts == 2


class TestDegradedAnnotation:
    def test_record_fields(self, reports):
        network = Controller(quorum=0.5).aggregate(
            reports[:3],
            expected_hosts=NUM_HOSTS,
            missing_hosts=[3],
            epoch=12,
        )
        degraded = network.degraded
        assert isinstance(degraded, DegradedEpoch)
        assert degraded.expected_hosts == NUM_HOSTS
        assert degraded.reported_hosts == 3
        assert degraded.missing_hosts == (3,)
        assert degraded.epoch == 12
        assert degraded.scale == pytest.approx(4 / 3)
        assert degraded.missing_share == pytest.approx(0.25)
        assert degraded.error_inflation == pytest.approx(1 / 3)

    def test_rescale_can_be_disabled(self, reports):
        network = Controller(
            quorum=0.5, degraded_rescale=False
        ).aggregate(
            reports[:3], expected_hosts=NUM_HOSTS, missing_hosts=[3]
        )
        assert network.degraded is not None
        assert network.degraded.scale == 1.0


class TestRescaleHelpers:
    def test_rescale_sketch_scales_counters(self, reports):
        sketch = reports[0].sketch
        scaled = rescale_sketch(sketch, 2.0)
        assert np.allclose(
            scaled.to_matrix(), sketch.to_matrix() * 2.0
        )
        # Original untouched; factor 1 is an exact copy.
        copy = rescale_sketch(sketch, 1.0)
        assert np.array_equal(copy.to_matrix(), sketch.to_matrix())

    def test_rescale_snapshot_scales_volume_not_entries(self, reports):
        snapshot = reports[0].fastpath
        scaled = rescale_snapshot(snapshot, 2.0)
        assert scaled.total_bytes == pytest.approx(
            snapshot.total_bytes * 2.0
        )
        assert scaled.total_decremented == pytest.approx(
            snapshot.total_decremented * 2.0
        )
        for flow, entry in snapshot.entries.items():
            assert scaled.entries[flow].e == entry.e
            assert scaled.entries[flow].r == entry.r

    def test_negative_factor_rejected(self, reports):
        with pytest.raises(MergeError):
            rescale_sketch(reports[0].sketch, -1.0)
        with pytest.raises(MergeError):
            rescale_snapshot(reports[0].fastpath, -0.5)


class TestDegradedAccuracy:
    """Satellite bound: with 1 of 4 reports dropped on a seeded Zipf
    trace, heavy-hitter recall loses at most the missing traffic share
    (plus solver noise) and precision stays close to baseline.

    The documented bound (docs/robustness.md):

        recall_degraded    >= recall_baseline - missing_share - 0.10
        precision_degraded >= precision_baseline - 0.15

    Recall must give up the missing hosts' flows (they are physically
    gone; hosts carry ~1/4 of traffic each); precision pays for the
    n/k counter rescale pushing near-threshold survivors over the
    line.
    """

    def _score(self, zipf_trace, kept_reports, expected):
        truth = GroundTruth.from_trace(zipf_trace)
        task = HeavyHitterTask(
            "deltoid", threshold=0.005 * truth.total_bytes
        )
        network = Controller(
            RecoveryMode.SKETCHVISOR, quorum=0.5
        ).aggregate(kept_reports, expected_hosts=expected)
        answer = task.answer(network.sketch)
        return task.score(answer, truth), network

    def test_one_missing_host_bound(self, zipf_trace, reports):
        baseline, base_net = self._score(
            zipf_trace, reports, NUM_HOSTS
        )
        assert base_net.degraded is None
        degraded, net = self._score(
            zipf_trace, reports[:3], NUM_HOSTS
        )
        assert net.degraded is not None
        missing_share = net.degraded.missing_share
        assert degraded.recall >= (
            baseline.recall - missing_share - 0.10
        )
        assert degraded.precision >= baseline.precision - 0.15
