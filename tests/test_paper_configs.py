"""The exact §7.1 paper configurations, exercised end to end.

The default test/bench configs are scaled for speed; this file builds
each solution at the *paper's* parameters and checks it still answers
correctly on a real trace (Ideal mode — accuracy of the structure
itself, no overload dynamics).
"""

from __future__ import annotations

import pytest

from repro.sketches.cardinality import (
    FMSketch,
    KMinSketch,
    LinearCounting,
)
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.sketches.twolevel import TwoLevelSketch
from repro.sketches.univmon import UnivMon
from repro.traffic.anomalies import inject_ddos_victims
from repro.traffic.groundtruth import GroundTruth


def _fill(sketch, trace):
    for packet in trace:
        sketch.update(packet.flow, packet.size)
    return sketch


class TestPaperConfigs:
    def test_deltoid_paper_config(self, small_trace, small_truth):
        sketch = _fill(Deltoid(width=4000, depth=4), small_trace)
        threshold = 0.01 * small_truth.total_bytes
        decoded = sketch.decode(threshold)
        true_hh = small_truth.heavy_hitters(threshold)
        assert set(true_hh) <= set(decoded)
        assert sketch.memory_bytes() > 10_000_000  # the paper's giant

    def test_flowradar_paper_config(self, small_trace, small_truth):
        sketch = _fill(FlowRadar(), small_trace)  # 100k bloom, 40k cells
        decoded, complete = sketch.decode()
        assert complete
        assert len(decoded) == small_truth.cardinality

    def test_univmon_paper_config(self, small_trace, small_truth):
        sketch = _fill(UnivMon(), small_trace)  # 8 levels, 500-heap
        threshold = 0.01 * small_truth.total_bytes
        found = sketch.heavy_hitters(threshold)
        true_hh = small_truth.heavy_hitters(threshold)
        hits = sum(1 for flow in true_hh if flow in found)
        assert hits / len(true_hh) > 0.9
        assert sketch.cardinality() == pytest.approx(
            small_truth.cardinality, rel=0.4
        )

    def test_twolevel_paper_config(self, small_trace):
        trace, victims = inject_ddos_victims(
            small_trace, num_victims=2, sources_per_victim=150
        )
        sketch = _fill(TwoLevelSketch.paper_config(), trace)
        detected = sketch.detect(spread_threshold=100)
        assert set(victims) <= set(detected)

    def test_fm_paper_config(self, small_trace, small_truth):
        sketch = _fill(
            FMSketch(num_registers=65_536, depth=4), small_trace
        )
        assert sketch.estimate() == pytest.approx(
            small_truth.cardinality, rel=0.25
        )

    def test_kmin_paper_config(self, small_trace, small_truth):
        sketch = _fill(KMinSketch(k=65_536, depth=4), small_trace)
        # k exceeds the flow count: bottom-k is exact.
        assert sketch.estimate() == pytest.approx(
            small_truth.cardinality, abs=2
        )

    def test_lc_paper_config(self, small_trace, small_truth):
        sketch = _fill(
            LinearCounting(width=10_000, depth=4), small_trace
        )
        assert sketch.estimate() == pytest.approx(
            small_truth.cardinality, rel=0.05
        )

    def test_mrac_paper_config(self, small_trace, small_truth):
        sketch = _fill(MRAC(width=4000), small_trace)
        assert sketch.cardinality() == pytest.approx(
            small_truth.cardinality, rel=0.15
        )
