"""ReportCollector: timeout, retry/backoff, dedup, stale rejection."""

from __future__ import annotations

import pytest

from repro.controlplane.transport import (
    ReportCollector,
    encode_report,
)
from repro.dataplane.host import Host
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sketches.countmin import CountMinSketch
from repro.traffic.generator import TraceConfig, generate_trace

NUM_HOSTS = 4


@pytest.fixture(scope="module")
def reports():
    trace = generate_trace(TraceConfig(num_flows=300, seed=13))
    shards = trace.partition(NUM_HOSTS)
    built = []
    for host_id, shard in enumerate(shards):
        host = Host(
            host_id,
            CountMinSketch(width=512, depth=2, seed=3),
            fastpath_bytes=4096,
        )
        built.append(host.run_epoch(shard))
    return built


def frames_for(reports, epoch):
    return {
        report.host_id: encode_report(report, epoch)
        for report in reports
    }


def collector_with(specs, **kwargs):
    injector = FaultInjector(FaultPlan(seed=1, specs=specs))
    return ReportCollector(injector=injector, **kwargs), injector


class TestCleanPath:
    def test_no_injector_collects_everything(self, reports):
        collector = ReportCollector()
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.complete
        assert [r.host_id for r in result.reports] == list(
            range(NUM_HOSTS)
        )
        assert result.stats.faults_seen == 0
        assert result.stats.retries == 0

    def test_inactive_plan_is_clean(self, reports):
        collector, _ = collector_with([])
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.complete
        assert result.stats.faults_seen == 0


class TestRetriableFaults:
    @pytest.mark.parametrize(
        "kind, stat",
        [
            (FaultKind.DROP, "drops"),
            (FaultKind.DELAY, "timeouts"),
            (FaultKind.TRUNCATE, "corrupt_frames"),
            (FaultKind.BITFLIP, "corrupt_frames"),
        ],
    )
    def test_single_fault_recovers_with_one_retry(
        self, reports, kind, stat
    ):
        collector, _ = collector_with(
            [FaultSpec(kind, epoch=0, host=2)]
        )
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.complete
        assert result.stats.retries == 1
        assert getattr(result.stats, stat) == 1
        assert result.stats.backoff_seconds > 0

    def test_retry_budget_exhausted_marks_missing(self, reports):
        # Four drops in a row beat max_retries=2 (3 attempts total).
        collector, _ = collector_with(
            [FaultSpec(FaultKind.DROP, epoch=0, host=1)] * 4,
            max_retries=2,
        )
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.missing_hosts == [1]
        assert len(result.reports) == NUM_HOSTS - 1
        assert result.stats.drops == 3  # one per attempt

    def test_backoff_grows_exponentially(self, reports):
        collector, _ = collector_with(
            [FaultSpec(FaultKind.DROP, epoch=0, host=0)] * 2,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_jitter=0.0,
        )
        result = collector.collect(frames_for(reports, 0), epoch=0)
        # Two retries: 0.1 + 0.2 (jitter disabled for exactness).
        assert result.stats.backoff_seconds == pytest.approx(0.3)

    def test_backoff_jitter_is_deterministic(self):
        a = ReportCollector(backoff_jitter=0.2, jitter_seed=9)
        b = ReportCollector(backoff_jitter=0.2, jitter_seed=9)
        draws_a = [
            a.backoff_for(epoch, host, attempt)
            for epoch in range(3)
            for host in range(5)
            for attempt in (1, 2, 3)
        ]
        draws_b = [
            b.backoff_for(epoch, host, attempt)
            for epoch in range(3)
            for host in range(5)
            for attempt in (1, 2, 3)
        ]
        assert draws_a == draws_b

    def test_backoff_jitter_decorrelates_hosts(self):
        # Same epoch, same attempt, different hosts: the whole point
        # is that simultaneous failures do NOT retry in lockstep.
        collector = ReportCollector(backoff_jitter=0.2, jitter_seed=0)
        sleeps = {
            collector.backoff_for(0, host, 1) for host in range(16)
        }
        assert len(sleeps) > 1
        base = collector.backoff_base
        for sleep in sleeps:
            assert base * 0.8 <= sleep <= base * 1.2

    def test_backoff_jitter_bounded_by_fraction(self):
        collector = ReportCollector(
            backoff_base=1.0,
            backoff_factor=2.0,
            backoff_jitter=0.5,
            jitter_seed=3,
        )
        for attempt in (1, 2, 3):
            nominal = 2.0 ** (attempt - 1)
            for host in range(8):
                sleep = collector.backoff_for(1, host, attempt)
                assert nominal * 0.5 <= sleep <= nominal * 1.5

    def test_invalid_jitter_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            ReportCollector(backoff_jitter=1.0)
        with pytest.raises(ConfigError):
            ReportCollector(backoff_jitter=-0.1)


class TestBackoffCap:
    """The exponent saturates: sleeps stop growing past the cap."""

    def test_exponent_saturates(self):
        from repro.controlplane.transport import (
            _MAX_BACKOFF_EXPONENT,
            jittered_backoff,
        )

        base, factor = 0.01, 2.0
        # Below (and at) the cap the schedule is the plain exponential.
        for attempt in range(1, _MAX_BACKOFF_EXPONENT + 2):
            assert jittered_backoff(
                base, factor, 0.0, 0, 0, 0, attempt
            ) == pytest.approx(base * factor ** (attempt - 1))
        # Past the cap every attempt sleeps the same finite amount —
        # a long-haul retry loop no longer overflows toward inf.
        ceiling = jittered_backoff(
            base, factor, 0.0, 0, 0, 0, _MAX_BACKOFF_EXPONENT + 1
        )
        assert ceiling == base * factor**_MAX_BACKOFF_EXPONENT
        for attempt in (_MAX_BACKOFF_EXPONENT + 2, 100, 100_000):
            assert (
                jittered_backoff(base, factor, 0.0, 0, 0, 0, attempt)
                == ceiling
            )

    def test_collector_and_cluster_schedules_bit_identical(self):
        """The in-process collector and the real-socket HostChannel
        must draw the *same* jittered sleep for the same
        (epoch, host, attempt) — including deep in the capped region —
        so chaos runs stay reproducible across transports."""
        from repro.cluster import ClusterConfig, HostChannel
        from repro.controlplane.transport import (
            _MAX_BACKOFF_EXPONENT,
            CollectionStats,
        )

        params = dict(
            backoff_base=0.05,
            backoff_factor=2.0,
            backoff_jitter=0.2,
            jitter_seed=7,
        )
        collector = ReportCollector(**params)
        cfg = ClusterConfig(**params)
        attempts = [1, 2, 3, 5, 9] + [
            _MAX_BACKOFF_EXPONENT,
            _MAX_BACKOFF_EXPONENT + 1,
            _MAX_BACKOFF_EXPONENT + 10,
            1_000,
        ]
        for epoch in range(2):
            for host in range(4):
                channel = HostChannel(
                    host,
                    epoch,
                    frame_factory=lambda: b"",
                    address=("127.0.0.1", 0),
                    config=cfg,
                    stats=CollectionStats(),
                )
                for attempt in attempts:
                    assert collector.backoff_for(
                        epoch, host, attempt
                    ) == channel._backoff(attempt)


class TestCrash:
    def test_crashed_host_is_missing(self, reports):
        collector, injector = collector_with(
            [FaultSpec(FaultKind.CRASH, epoch=0, host=3)]
        )
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.missing_hosts == [3]
        assert result.stats.crashes == 1
        assert injector.injected["crash"] == 1

    def test_crash_only_hits_its_epoch(self, reports):
        collector, _ = collector_with(
            [FaultSpec(FaultKind.CRASH, epoch=0, host=3)]
        )
        assert collector.collect(
            frames_for(reports, 0), epoch=0
        ).missing_hosts == [3]
        assert collector.collect(
            frames_for(reports, 1), epoch=1
        ).complete


class TestDuplicateAndReplay:
    def test_duplicate_delivery_deduped(self, reports):
        collector, _ = collector_with(
            [FaultSpec(FaultKind.DUPLICATE, epoch=0, host=1)]
        )
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.complete
        assert len(result.reports) == NUM_HOSTS
        assert result.stats.duplicates == 1

    def test_replay_without_fuel_degrades_to_drop(self, reports):
        collector, _ = collector_with(
            [FaultSpec(FaultKind.REPLAY, epoch=0, host=0)]
        )
        result = collector.collect(frames_for(reports, 0), epoch=0)
        assert result.complete  # retry delivered the real frame
        assert result.stats.drops == 1

    def test_stale_epoch_replay_rejected(self, reports):
        collector, _ = collector_with(
            [FaultSpec(FaultKind.REPLAY, epoch=1, host=0)]
        )
        # Epoch 0 delivers cleanly and primes the replay cache.
        assert collector.collect(
            frames_for(reports, 0), epoch=0
        ).complete
        result = collector.collect(frames_for(reports, 1), epoch=1)
        assert result.complete  # stale frame rejected, retry clean
        assert result.stats.stale_frames == 1
        assert result.stats.retries == 1


class TestDeterminism:
    def test_identical_runs_identical_outcomes(self, reports):
        plan = FaultPlan(
            seed=21,
            rates={
                FaultKind.DROP: 0.3,
                FaultKind.BITFLIP: 0.2,
                FaultKind.CRASH: 0.1,
            },
        )

        def run():
            collector = ReportCollector(
                injector=FaultInjector(plan)
            )
            outcomes = []
            for epoch in range(8):
                result = collector.collect(
                    frames_for(reports, epoch), epoch
                )
                outcomes.append(
                    (
                        tuple(result.missing_hosts),
                        result.stats.retries,
                        result.stats.faults_seen,
                    )
                )
            return outcomes

        assert run() == run()
