"""DDoS/SS, cardinality, flow size distribution, entropy tasks."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.ddos import DDoSTask
from repro.tasks.distribution import FlowSizeDistributionTask
from repro.tasks.entropy import EntropyTask
from repro.tasks.superspreader import SuperspreaderTask
from repro.traffic.anomalies import (
    inject_ddos_victims,
    inject_superspreaders,
)
from repro.traffic.groundtruth import GroundTruth


def _ideal_sketch(task, trace):
    sketch = task.create_sketch(seed=5)
    for packet in trace:
        sketch.update(packet.flow, packet.size)
    return sketch


class TestDDoSTask:
    def test_detects_injected_victims(self, small_trace):
        trace, victims = inject_ddos_victims(
            small_trace, num_victims=2, sources_per_victim=150
        )
        truth = GroundTruth.from_trace(trace)
        task = DDoSTask(threshold=100, sketch_params={"inner_width": 256})
        score = task.score(
            task.answer(_ideal_sketch(task, trace)), truth
        )
        assert score.recall >= 0.9

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            DDoSTask(threshold=0)


class TestSuperspreaderTask:
    def test_detects_injected_spreaders(self, small_trace):
        trace, spreaders = inject_superspreaders(
            small_trace, num_spreaders=2, destinations_per_spreader=150
        )
        truth = GroundTruth.from_trace(trace)
        task = SuperspreaderTask(
            threshold=100, sketch_params={"inner_width": 256}
        )
        score = task.score(
            task.answer(_ideal_sketch(task, trace)), truth
        )
        assert score.recall >= 0.9

    def test_mirror_of_ddos(self):
        assert SuperspreaderTask().create_sketch().mode == "superspreader"
        assert DDoSTask().create_sketch().mode == "ddos"


class TestCardinalityTask:
    @pytest.mark.parametrize("solution", ["fm", "kmin", "lc"])
    def test_estimates_close(self, solution, medium_trace, medium_truth):
        task = CardinalityTask(solution)
        score = task.score(
            task.answer(_ideal_sketch(task, medium_trace)), medium_truth
        )
        assert score.relative_error < 0.35

    def test_solution_validation(self):
        with pytest.raises(ConfigError):
            CardinalityTask("bogus")

    def test_paper_params_larger(self):
        small = CardinalityTask("fm").create_sketch()
        large = CardinalityTask("fm", paper_params=True).create_sketch()
        assert large.memory_bytes() > small.memory_bytes()


class TestFlowSizeDistributionTask:
    @pytest.mark.parametrize("solution", ["mrac", "flowradar"])
    def test_mrd_small_in_ideal(self, solution, small_trace, small_truth):
        task = FlowSizeDistributionTask(solution)
        score = task.score(
            task.answer(_ideal_sketch(task, small_trace)), small_truth
        )
        assert score.mrd is not None
        assert score.mrd < 0.05

    def test_flowradar_counts_packets(self):
        task = FlowSizeDistributionTask("flowradar")
        assert task.create_sketch().count_packets


class TestEntropyTask:
    @pytest.mark.parametrize("solution", ["flowradar", "univmon"])
    def test_estimates_close(self, solution, small_trace, small_truth):
        task = EntropyTask(solution)
        score = task.score(
            task.answer(_ideal_sketch(task, small_trace)), small_truth
        )
        assert score.relative_error < 0.25

    def test_empty_sketch_zero_entropy(self):
        task = EntropyTask("flowradar")
        assert task.answer(task.create_sketch()) == 0.0
