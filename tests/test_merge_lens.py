"""Control-plane merging and the LENS compressive-sensing solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.controlplane.lens import (
    LensConfig,
    lens_interpolate,
    singular_value_threshold,
)
from repro.controlplane.merge import (
    merge_fastpath_snapshots,
    merge_sketches,
)
from repro.fastpath.topk import FastPath
from repro.sketches.countmin import CountMinSketch
from repro.sketches.deltoid import Deltoid
from tests.conftest import make_flow


class TestMergeSketches:
    def test_merge_equals_single_observer(self, medium_trace):
        shards = medium_trace.partition(3)
        parts = []
        for shard in shards:
            sketch = CountMinSketch(width=512, depth=3, seed=7)
            for packet in shard:
                sketch.update(packet.flow, packet.size)
            parts.append(sketch)
        merged = merge_sketches(parts)
        whole = CountMinSketch(width=512, depth=3, seed=7)
        for packet in medium_trace:
            whole.update(packet.flow, packet.size)
        assert np.array_equal(merged.counters, whole.counters)

    def test_merge_does_not_mutate_inputs(self):
        a = CountMinSketch(width=64, depth=2, seed=1)
        a.update(make_flow(1), 100)
        before = a.counters.copy()
        merge_sketches([a, a.clone_empty()])
        assert np.array_equal(a.counters, before)

    def test_merge_empty_rejected(self):
        with pytest.raises(MergeError):
            merge_sketches([])


class TestMergeSnapshots:
    def test_sums_globals(self):
        fp_a, fp_b = FastPath(4096), FastPath(4096)
        fp_a.update(make_flow(1), 100)
        fp_b.update(make_flow(2), 250)
        merged = merge_fastpath_snapshots(
            [fp_a.snapshot(), fp_b.snapshot()]
        )
        assert merged.total_bytes == 350
        assert set(merged.entries) == {make_flow(1), make_flow(2)}

    def test_none_snapshots_ignored(self):
        fp = FastPath(4096)
        fp.update(make_flow(1), 100)
        merged = merge_fastpath_snapshots([None, fp.snapshot(), None])
        assert merged.total_bytes == 100

    def test_shared_flow_counters_add(self):
        fp_a, fp_b = FastPath(4096), FastPath(4096)
        fp_a.update(make_flow(1), 100)
        fp_b.update(make_flow(1), 50)
        merged = merge_fastpath_snapshots(
            [fp_a.snapshot(), fp_b.snapshot()]
        )
        assert merged.entries[make_flow(1)].r == 150

    def test_all_none(self):
        merged = merge_fastpath_snapshots([None, None])
        assert merged.total_bytes == 0 and not merged.entries


class TestSVT:
    def test_shrinks_singular_values(self):
        matrix = np.diag([10.0, 5.0, 1.0])
        shrunk = singular_value_threshold(matrix, 2.0)
        values = np.linalg.svd(shrunk, compute_uv=False)
        assert values[0] == pytest.approx(8.0)
        assert values[1] == pytest.approx(3.0)
        assert values[2] == pytest.approx(0.0, abs=1e-9)

    def test_all_shrunk_to_zero(self):
        matrix = np.ones((3, 3))
        assert singular_value_threshold(matrix, 100.0).sum() == 0.0


class TestLensInterpolate:
    def _setup(self, num_flows=20, width=256, seed=3):
        """A Count-Min N missing a known x; returns pieces + truth."""
        sketch = CountMinSketch(width=width, depth=4, seed=seed)
        rng = np.random.default_rng(seed)
        # Background (normal-path) traffic.
        for i in range(200):
            sketch.update(make_flow(1000 + i), int(rng.integers(64, 1500)))
        flows = [make_flow(i) for i in range(num_flows)]
        true_x = rng.integers(5_000, 50_000, size=num_flows).astype(float)
        positions = [sketch.matrix_positions(f) for f in flows]
        slack = rng.integers(50, 500, size=num_flows).astype(float)
        lower = true_x - slack
        upper = true_x + slack
        small_flow_mass = 30_000.0
        volume = float(true_x.sum() + small_flow_mass)
        return sketch, flows, positions, lower, upper, volume, true_x

    def test_x_respects_box(self):
        sketch, _f, positions, lower, upper, volume, _t = self._setup()
        result = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, volume,
            low_rank=False,
        )
        assert (result.x >= lower - 1e-6).all()
        assert (result.x <= upper + 1e-6).all()

    def test_x_close_to_truth(self):
        sketch, _f, positions, lower, upper, volume, truth = self._setup()
        result = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, volume,
            low_rank=False,
        )
        errors = np.abs(result.x - truth) / truth
        assert errors.mean() < 0.05  # the box is tight; stay inside it

    def test_volume_conserved(self):
        sketch, _f, positions, lower, upper, volume, _t = self._setup()
        result = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, volume,
            low_rank=False,
        )
        # sum(x) + noise mass / positions-per-flow ~= V
        mean_mass = np.mean([len(p) for p in positions])
        recovered_volume = result.x.sum() + result.noise.sum() / mean_mass
        assert recovered_volume == pytest.approx(volume, rel=0.05)

    def test_noise_nonnegative(self):
        sketch, _f, positions, lower, upper, volume, _t = self._setup()
        result = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, volume,
            low_rank=False,
        )
        assert (result.noise >= 0).all()

    def test_nuclear_term_runs_on_low_rank_sketch(self):
        sketch = Deltoid(width=64, depth=2, seed=5)
        for i in range(100):
            sketch.update(make_flow(i), 500)
        flows = [make_flow(1000)]
        positions = [sketch.matrix_positions(flows[0])]
        result = lens_interpolate(
            sketch.to_matrix(),
            positions,
            np.array([1000.0]),
            np.array([1200.0]),
            2000.0,
            low_rank=True,
            config=LensConfig(max_iterations=10),
        )
        assert 1000.0 - 1e-6 <= result.x[0] <= 1200.0 + 1e-6
        assert result.iterations <= 10

    def test_no_tracked_flows_spreads_volume(self):
        sketch = CountMinSketch(width=64, depth=2)
        result = lens_interpolate(
            sketch.to_matrix(), [], np.zeros(0), np.zeros(0), 1000.0
        )
        assert result.matrix.sum() == pytest.approx(
            1000.0 / (2 * 64) * 2 * 64
        )

    def test_validates_bounds(self):
        sketch = CountMinSketch(width=64, depth=2)
        flow = make_flow(1)
        with pytest.raises(ConfigError):
            lens_interpolate(
                sketch.to_matrix(),
                [sketch.matrix_positions(flow)],
                np.array([10.0]),
                np.array([5.0]),  # upper < lower
                100.0,
            )
        with pytest.raises(ConfigError):
            lens_interpolate(
                sketch.to_matrix(),
                [sketch.matrix_positions(flow)],
                np.array([1.0]),
                np.array([2.0]),
                -5.0,
            )
