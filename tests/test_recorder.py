"""Flight recorder: ring semantics, epoch distillation, dump artifacts."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro import PipelineConfig, Telemetry
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.framework.monitor import AlertKind, ContinuousMonitor
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry.recorder import DUMP_VERSION, FlightRecorder
from repro.telemetry.accuracy import SLOPolicy
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth

IMPOSSIBLE_POLICY = SLOPolicy.from_dict(
    {
        "rules": [
            {"name": "recall-11",
             "metric": "sketchvisor_accuracy_empirical_hh_recall",
             "op": ">=", "threshold": 1.1}
        ]
    }
)


# ----------------------------------------------------------------------
class TestRing:
    def test_record_and_sequence(self):
        recorder = FlightRecorder(capacity=8)
        first = recorder.record("checkpoint", epoch=0, host=1)
        second = recorder.record("quarantine", epoch=1, host=2)
        assert (first.seq, second.seq) == (0, 1)
        assert len(recorder) == 2
        assert recorder.events("quarantine") == [second]
        assert first.to_json() == {
            "seq": 0, "time": first.time, "kind": "checkpoint",
            "epoch": 0, "host": 1,
        }

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("tick", epoch=i)
        assert len(recorder) == 4
        assert recorder.total_events == 10
        assert recorder.dropped_events == 6
        assert [e.epoch for e in recorder.events()] == [6, 7, 8, 9]

    def test_capacity_floor_is_one(self):
        recorder = FlightRecorder(capacity=0)
        recorder.record("a")
        recorder.record("b")
        assert [e.kind for e in recorder.events()] == ["b"]

    def test_clear_keeps_lifetime_counters(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("tick")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_events == 1

    def test_telemetry_reset_clears_ring(self):
        telemetry = Telemetry()
        telemetry.recorder.record("tick")
        telemetry.reset()
        assert len(telemetry.recorder) == 0


# ----------------------------------------------------------------------
class TestDump:
    def test_dump_schema_and_ordering(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        for i in range(6):
            recorder.record("tick", epoch=i)
        path = recorder.dump(
            tmp_path / "deep" / "dump.json", reason="quarantine"
        )
        assert recorder.dumps == [path]
        loaded = json.loads(path.read_text())
        assert loaded["version"] == DUMP_VERSION
        assert loaded["reason"] == "quarantine"
        assert loaded["capacity"] == 4
        assert loaded["total_events"] == 6
        assert loaded["dropped_events"] == 2
        # Oldest-first; newest (the trigger neighbourhood) last.
        assert [e["epoch"] for e in loaded["events"]] == [2, 3, 4, 5]

    def test_dump_overwrites_previous_incident(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("first")
        target = tmp_path / "dump.json"
        recorder.dump(target, reason="crash")
        recorder.record("second")
        recorder.dump(target, reason="slo_breach")
        loaded = json.loads(target.read_text())
        assert loaded["reason"] == "slo_breach"
        assert [e["kind"] for e in loaded["events"]] == [
            "first", "second",
        ]


class TestDumpRotation:
    def test_rotated_names_carry_stamp_and_reason(self, tmp_path):
        recorder = FlightRecorder(max_dumps=4)
        recorder.record("tick")
        target = tmp_path / "serve_recorder.json"
        first = recorder.dump(target, reason="slo_breach")
        second = recorder.dump(target, reason="shutdown")
        assert first != second
        assert not target.exists()  # rotation never writes the base
        assert first.name.startswith("serve_recorder-")
        assert first.name.endswith("-slo_breach.json")
        assert second.name.endswith("-shutdown.json")
        assert json.loads(second.read_text())["reason"] == "shutdown"
        assert recorder.dumps == [first, second]

    def test_sweep_keeps_newest_max_dumps(self, tmp_path):
        recorder = FlightRecorder(max_dumps=3)
        recorder.record("tick")
        target = tmp_path / "dump.json"
        written = [
            recorder.dump(target, reason="breach") for _ in range(7)
        ]
        remaining = sorted(tmp_path.glob("dump-*.json"))
        assert remaining == sorted(written[-3:])

    def test_max_dumps_floor_never_deletes_fresh_dump(self, tmp_path):
        recorder = FlightRecorder(max_dumps=0)
        recorder.record("tick")
        path = recorder.dump(tmp_path / "dump.json", reason="crash")
        assert path.exists()

    def test_default_is_legacy_fixed_path(self, tmp_path):
        recorder = FlightRecorder()
        assert recorder.max_dumps is None
        recorder.record("tick")
        target = tmp_path / "dump.json"
        assert recorder.dump(target) == target
        assert list(tmp_path.iterdir()) == [target]


# ----------------------------------------------------------------------
def _report(host_id=0, high_water=0, kickouts=0):
    return SimpleNamespace(
        host_id=host_id,
        switch=SimpleNamespace(buffer_high_water=high_water),
        fastpath=SimpleNamespace(
            kickout_count=kickouts, evict_count=kickouts
        ),
    )


class TestEpochDistillation:
    def test_quiet_epoch_records_nothing(self):
        recorder = FlightRecorder()
        recorder.record_epoch_events(
            epoch=0,
            reports=[_report()],
            buffer_capacity=1024,
        )
        assert len(recorder) == 0

    def test_buffer_and_kickout_events(self):
        recorder = FlightRecorder()
        recorder.record_epoch_events(
            epoch=3,
            reports=[_report(host_id=1, high_water=1000, kickouts=7)],
            buffer_capacity=1024,
        )
        kinds = [e.kind for e in recorder.events()]
        assert kinds == ["buffer_high_water", "fastpath_kickout"]
        assert recorder.events()[1].fields["kickouts"] == 7

    def test_transport_and_missing_report_events(self):
        recorder = FlightRecorder()
        stats = SimpleNamespace(
            drops=2, timeouts=0, corrupt_frames=1, duplicates=0,
            stale_frames=0, crashes=0, retries=3, backoff_seconds=0.5,
        )
        collection = SimpleNamespace(stats=stats, missing_hosts=(4,))
        recorder.record_epoch_events(epoch=1, collection=collection)
        kinds = [e.kind for e in recorder.events()]
        assert kinds == [
            "transport_fault", "collector_retry", "missing_report",
        ]
        fault = recorder.events()[0]
        assert fault.fields == {"drops": 2, "corrupt_frames": 1}

    def test_outcome_and_degraded_events(self):
        recorder = FlightRecorder()
        outcome = SimpleNamespace(
            host_id=2, checkpoint_writes=5, checkpoint_bytes=4096,
            restores=1, restarts=1, crashes=1, hangs=0,
            replayed_packets=100, gave_up=False, quarantined=True,
        )
        degraded = SimpleNamespace(
            reported_hosts=2, expected_hosts=3,
            missing_hosts=(1,), scale=1.5,
        )
        recorder.record_epoch_events(
            epoch=2,
            outcomes=[outcome],
            network=SimpleNamespace(degraded=degraded),
            dp_missing=(1,),
        )
        kinds = [e.kind for e in recorder.events()]
        assert kinds == [
            "dp_fault", "checkpoint", "restore", "quarantine",
            "degraded_epoch",
        ]
        assert recorder.events()[-1].fields["scale"] == 1.5


# ----------------------------------------------------------------------
class TestChaosEndToEnd:
    """A chaos run that breaches an accuracy SLO must raise the
    monitor alert AND leave a dump whose trailing events show the
    injected fault — the acceptance path of the observability PR."""

    @pytest.fixture(scope="class")
    def soak(self):
        trace = generate_trace(TraceConfig(num_flows=900, seed=21))
        return trace, GroundTruth.from_trace(trace)

    def _monitor(self, truth, telemetry, plan, **config_kwargs):
        return ContinuousMonitor(
            [
                HeavyHitterTask(
                    "deltoid", threshold=0.01 * truth.total_bytes
                )
            ],
            config=PipelineConfig(
                num_hosts=3,
                seed=3,
                batch=True,
                telemetry=telemetry,
                faults=plan,
                slo=IMPOSSIBLE_POLICY,
                shadow_samples=64,
                **config_kwargs,
            ),
        )

    def test_breach_dump_ends_with_injected_fault(
        self, soak, tmp_path
    ):
        trace, truth = soak
        telemetry = Telemetry()
        dump_path = tmp_path / "incident.json"
        plan = FaultPlan(
            specs=[FaultSpec(FaultKind.CRASH, epoch=0, host=2)]
        )
        monitor = self._monitor(
            truth, telemetry, plan, recorder_path=dump_path
        )
        summary = monitor.process_epoch(trace)
        breaches = [
            alert
            for alert in summary.alerts
            if alert.kind is AlertKind.ACCURACY_SLO_BREACH
        ]
        assert len(breaches) == 1
        assert breaches[0].subject == "recall-11"
        loaded = json.loads(dump_path.read_text())
        assert loaded["reason"] == "slo_breach"
        trailing = [e["kind"] for e in loaded["events"]]
        # The injected crash shows up as the missing report and the
        # degraded merge right before the breach that tripped the dump.
        assert "missing_report" in trailing
        assert "degraded_epoch" in trailing
        assert trailing[-1] == "slo_breach"

    def test_alert_counter_parity_with_process_pool(self, soak):
        """Process-pool epochs must not drop accuracy alerts: the
        monitor's alert list and the telemetry counters stay 1:1
        even when hosts run in workers and an epoch degrades."""
        trace, truth = soak
        telemetry = Telemetry()
        plan = FaultPlan(
            specs=[FaultSpec(FaultKind.CRASH, epoch=1, host=0)]
        )
        monitor = self._monitor(truth, telemetry, plan, workers=2)
        for _ in range(3):
            monitor.process_epoch(trace)
        registry = telemetry.registry
        breach_alerts = monitor.alerts(AlertKind.ACCURACY_SLO_BREACH)
        assert len(breach_alerts) == registry.total(
            "sketchvisor_slo_breaches_total"
        )
        assert len(breach_alerts) == 3
        degraded_alerts = monitor.alerts(AlertKind.DEGRADED_EPOCH)
        assert len(degraded_alerts) == 1
        assert registry.total("sketchvisor_slo_evaluations_total") == 3
