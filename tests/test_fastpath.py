"""Algorithm 1 and Lemma 4.1 — the fast path's correctness core.

The three Lemma 4.1 properties are property-tested over random streams:
1. any flow with true size > E is tracked;
2. tracked flows satisfy r + d <= v_true <= r + d + e;
3. every flow's error is O(V/k).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.fastpath.topk import (
    ENTRY_BYTES,
    FastPath,
    UpdateKind,
    compute_thresh,
)
from tests.conftest import make_flow

streams = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 5000)),
    min_size=1,
    max_size=400,
)


def _run(stream, memory_bytes=10 * ENTRY_BYTES):
    fastpath = FastPath(memory_bytes=memory_bytes)
    truth: dict[int, int] = {}
    for index, size in stream:
        fastpath.update(make_flow(index), size)
        truth[index] = truth.get(index, 0) + size
    return fastpath, truth


class TestComputeThresh:
    def test_paper_example_figure4c(self):
        """Inputs {9, 7, 2} + v=3 must yield e ~= 2 (Figure 4)."""
        assert compute_thresh([9, 7, 2, 3]) == pytest.approx(2.04, abs=0.05)

    def test_paper_example_figure4e(self):
        """Inputs {7, 5, 1} + v=5 must yield e ~= 1 (Figure 4)."""
        assert compute_thresh([7, 5, 1, 5]) == pytest.approx(1.03, abs=0.05)

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e6),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_threshold_at_least_minimum(self, values):
        """e >= a_{k+1}: the smallest flow can always be kicked out."""
        assert compute_thresh(values) >= min(min(values), 1.0) * 0.999

    def test_degenerate_equal_top_values(self):
        assert compute_thresh([5.0, 5.0, 2.0]) == 2.0

    def test_degenerate_small_values(self):
        assert compute_thresh([1.0, 0.5, 0.2]) == 1.0

    def test_single_value(self):
        assert compute_thresh([10.0]) >= 10.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            compute_thresh([])

    def test_larger_skew_larger_margin(self):
        """A dominant top flow (larger b) widens the eviction margin."""
        mild = compute_thresh([10, 9, 2, 2])
        steep = compute_thresh([10_000, 9, 2, 2])
        assert steep > mild


class TestLemma41:
    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_flows_above_E_are_tracked(self, stream):
        fastpath, truth = _run(stream)
        for index, size in truth.items():
            if size > fastpath.total_decremented:
                assert make_flow(index) in fastpath.table

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_bounds_contain_truth(self, stream):
        fastpath, truth = _run(stream)
        for flow, entry in fastpath.table.items():
            true_size = truth[flow.src_ip - 1000]
            assert entry.lower_bound <= true_size + 1e-6
            assert true_size <= entry.upper_bound + 1e-6

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_by_V_over_k(self, stream):
        fastpath, truth = _run(stream)
        # Appendix B: error <= theta-root(1-delta) * V/(k+1); use a
        # small slack factor over V/(k+1) for the root term.
        bound = 1.5 * fastpath.total_bytes / (fastpath.capacity + 1)
        for flow, entry in fastpath.table.items():
            true_size = truth[flow.src_ip - 1000]
            assert abs(entry.estimate - true_size) <= entry.e / 2 + 1e-6
            assert entry.e <= fastpath.total_decremented + 1e-6
        assert fastpath.total_decremented <= bound * (
            1 + len(stream) * 0  # documentation: E itself obeys the bound
        ) or fastpath.total_decremented <= bound

    @given(streams)
    @settings(max_examples=40, deadline=None)
    def test_V_accounts_all_bytes(self, stream):
        fastpath, truth = _run(stream)
        assert fastpath.total_bytes == sum(
            size for _i, size in stream
        )

    def test_capacity_never_exceeded(self):
        fastpath = FastPath(memory_bytes=5 * ENTRY_BYTES)
        for i in range(500):
            fastpath.update(make_flow(i % 50), 100 + i)
            assert len(fastpath.table) <= fastpath.capacity


class TestMechanics:
    def test_update_kinds(self):
        fastpath = FastPath(memory_bytes=2 * ENTRY_BYTES)
        assert fastpath.update(make_flow(1), 10) is UpdateKind.INSERT
        assert fastpath.update(make_flow(1), 10) is UpdateKind.HIT
        assert fastpath.update(make_flow(2), 10) is UpdateKind.INSERT
        assert fastpath.update(make_flow(3), 10) is UpdateKind.KICKOUT

    def test_kickout_evicts_small_flows(self):
        fastpath = FastPath(memory_bytes=3 * ENTRY_BYTES)
        fastpath.update(make_flow(1), 10_000)
        fastpath.update(make_flow(2), 10)
        fastpath.update(make_flow(3), 10)
        fastpath.update(make_flow(4), 5_000)  # triggers kick-out
        assert make_flow(1) in fastpath.table
        assert fastpath.num_kickouts == 1
        assert fastpath.num_evicted >= 1

    def test_heavy_flow_survives_churn(self):
        fastpath = FastPath(memory_bytes=8 * ENTRY_BYTES)
        heavy = make_flow(0)
        fastpath.update(heavy, 1_000_000)
        for i in range(1, 2000):
            fastpath.update(make_flow(i), 64)
        assert heavy in fastpath.table
        entry = fastpath.table[heavy]
        assert entry.lower_bound <= 1_000_000 <= entry.upper_bound

    def test_snapshot_is_isolated(self):
        fastpath = FastPath(memory_bytes=4 * ENTRY_BYTES)
        fastpath.update(make_flow(1), 100)
        snapshot = fastpath.snapshot()
        fastpath.update(make_flow(1), 900)
        assert snapshot.entries[make_flow(1)].r == 100
        assert snapshot.total_bytes == 100

    def test_reset(self):
        fastpath = FastPath()
        fastpath.update(make_flow(1), 100)
        fastpath.reset()
        assert not fastpath.table
        assert fastpath.total_bytes == 0
        assert fastpath.total_decremented == 0

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            FastPath(memory_bytes=10)
        with pytest.raises(ConfigError):
            FastPath(delta=1.5)

    def test_capacity_from_memory(self):
        assert FastPath(memory_bytes=8192).capacity == 8192 // ENTRY_BYTES

    def test_bounds_and_estimates_views(self):
        fastpath = FastPath()
        fastpath.update(make_flow(1), 500)
        bounds = fastpath.bounds()
        estimates = fastpath.estimates()
        low, high = bounds[make_flow(1)]
        assert low <= estimates[make_flow(1)] <= high

    def test_error_bound_property(self):
        fastpath = FastPath(memory_bytes=10 * ENTRY_BYTES)
        for i in range(100):
            fastpath.update(make_flow(i), 100)
        assert fastpath.error_bound() == pytest.approx(
            fastpath.total_bytes / (fastpath.capacity + 1)
        )
