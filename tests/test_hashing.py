"""Hash substrate: determinism, independence, distribution quality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import (
    HashFamily,
    fold_key,
    mix64,
    mix64_array,
)

U64 = st.integers(min_value=0, max_value=2**64 - 1)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_zero_is_mixed(self):
        assert mix64(0) == 0  # splitmix64 finalizer fixes 0

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    @given(U64)
    def test_output_in_64_bits(self, value):
        assert 0 <= mix64(value) < 2**64

    @given(U64)
    def test_truncates_to_64_bits(self, value):
        assert mix64(value) == mix64(value + 2**64)

    def test_avalanche_single_bit_flip(self):
        """Flipping one input bit should flip ~half the output bits."""
        rng = np.random.default_rng(1)
        total_flips = 0
        trials = 200
        for _ in range(trials):
            value = int(rng.integers(0, 2**63))
            bit = int(rng.integers(0, 64))
            diff = mix64(value) ^ mix64(value ^ (1 << bit))
            total_flips += bin(diff).count("1")
        mean_flips = total_flips / trials
        assert 24 <= mean_flips <= 40

    def test_array_matches_scalar(self):
        values = np.arange(1000, dtype=np.uint64)
        hashed = mix64_array(values, seed=77)
        for i in (0, 1, 500, 999):
            assert int(hashed[i]) == mix64(i ^ 77)


class TestFoldKey:
    def test_int_folds_via_mix(self):
        assert fold_key(5) == mix64(5)

    def test_bytes_deterministic(self):
        assert fold_key(b"hello world") == fold_key(b"hello world")

    def test_bytes_length_sensitive(self):
        assert fold_key(b"ab") != fold_key(b"ab\x00")

    def test_tuple_order_sensitive(self):
        assert fold_key((1, 2)) != fold_key((2, 1))

    def test_nested_tuple(self):
        assert fold_key((1, (2, 3))) != fold_key((1, (3, 2)))

    @given(st.binary(max_size=64))
    def test_bytes_in_range(self, data):
        assert 0 <= fold_key(data) < 2**64


class TestHashFamily:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            HashFamily(0)

    def test_equal_seeds_equal_families(self):
        a, b = HashFamily(4, seed=9), HashFamily(4, seed=9)
        for key in (1, 999, 2**40):
            assert a.buckets(key, 100) == b.buckets(key, 100)
            assert a.signs(key) == b.signs(key)

    def test_different_seeds_differ(self):
        a, b = HashFamily(4, seed=1), HashFamily(4, seed=2)
        diffs = sum(
            a.buckets(key, 1000) != b.buckets(key, 1000)
            for key in range(100)
        )
        assert diffs > 90

    def test_rows_are_independent(self):
        family = HashFamily(2, seed=3)
        same = sum(
            family.bucket(0, key, 256) == family.bucket(1, key, 256)
            for key in range(5000)
        )
        # Expected collision rate 1/256.
        assert same < 60

    def test_buckets_match_bucket(self):
        family = HashFamily(3, seed=5)
        for key in (7, 123456):
            assert family.buckets(key, 77) == [
                family.bucket(row, key, 77) for row in range(3)
            ]

    def test_bucket_uniformity(self):
        family = HashFamily(1, seed=11)
        counts = np.zeros(16)
        for key in range(16_000):
            counts[family.bucket(0, mix64(key), 16)] += 1
        # Chi-square-ish sanity: all cells within 15% of the mean.
        assert counts.min() > 850 and counts.max() < 1150

    def test_signs_balanced(self):
        family = HashFamily(1, seed=13)
        total = sum(family.sign(0, mix64(key)) for key in range(10_000))
        assert abs(total) < 400

    def test_sign_independent_of_bucket(self):
        """Keys in the same bucket should not share a sign."""
        family = HashFamily(1, seed=17)
        by_bucket: dict[int, list[int]] = {}
        for key in range(4000):
            k = mix64(key)
            by_bucket.setdefault(family.bucket(0, k, 8), []).append(
                family.sign(0, k)
            )
        for signs in by_bucket.values():
            assert abs(sum(signs)) < len(signs)

    @given(U64)
    def test_uniform01_range(self, key):
        family = HashFamily(2, seed=19)
        for row in range(2):
            assert 0.0 <= family.uniform01(row, key) < 1.0

    def test_equality_and_hash(self):
        assert HashFamily(4, 1) == HashFamily(4, 1)
        assert HashFamily(4, 1) != HashFamily(4, 2)
        assert HashFamily(3, 1) != HashFamily(4, 1)
        assert hash(HashFamily(4, 1)) == hash(HashFamily(4, 1))
