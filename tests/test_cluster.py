"""Real-socket control plane: transport, aggregators, chaos over TCP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Aggregator,
    ClusterCollector,
    ClusterConfig,
    PartialAggregate,
    assign_aggregator,
    cluster_from_env,
    rendezvous_aggregator,
)
from repro.common.errors import ConfigError
from repro.controlplane.controller import Controller
from repro.controlplane.recovery import RecoveryMode
from repro.controlplane.transport import (
    ReportCollector,
    encode_report,
)
from repro.dataplane.host import Host
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    failover_plan,
    socket_plan,
)
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.sketches.deltoid import Deltoid
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry import Telemetry
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth

NUM_HOSTS = 8

#: Tight deadlines so injected connection faults resolve fast; the
#: margins stay far above localhost latency, keeping outcomes
#: deterministic.
FAST = dict(
    connect_timeout=1.0,
    ack_timeout=1.0,
    idle_timeout=0.15,
    epoch_deadline=20.0,
    backoff_base=0.002,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(num_flows=300, seed=13))


@pytest.fixture(scope="module")
def reports(trace):
    built = []
    for host_id in range(NUM_HOSTS):
        host = Host(
            host_id,
            Deltoid(width=128, depth=2, seed=5),
            fastpath_bytes=4096,
        )
        built.append(host.run_epoch(trace))
    return built


def stats_dict(stats):
    """Deterministic stats fields (backpressure waits are timing-
    dependent and excluded on purpose)."""
    fields = dict(vars(stats))
    fields.pop("backpressure_waits", None)
    return fields


# ---------------------------------------------------------------------------
# Zero faults: the wire must be invisible.
# ---------------------------------------------------------------------------
class TestZeroFaultBitIdentity:
    def test_flat_matches_in_process_collector(self, reports):
        frames = {r.host_id: encode_report(r, 2) for r in reports}
        base = ReportCollector().collect(frames, 2)
        over_wire = ClusterCollector(
            ClusterConfig(hierarchical=False, **FAST)
        ).collect(reports, 2)
        assert over_wire.missing_hosts == []
        assert over_wire.hosts_reported == NUM_HOSTS
        assert len(over_wire.reports) == len(base.reports)
        for a, b in zip(base.reports, over_wire.reports):
            assert a.host_id == b.host_id
            assert np.array_equal(
                a.sketch.to_matrix(), b.sketch.to_matrix()
            )
            assert a.fastpath.entries == b.fastpath.entries
            assert a.fastpath.total_bytes == b.fastpath.total_bytes

    def test_hierarchical_merge_is_exact(self, reports):
        collection = ClusterCollector(
            ClusterConfig(hierarchical=True, **FAST)
        ).collect(reports, 0)
        assert collection.hosts_reported == NUM_HOSTS
        assert 1 < len(collection.reports) < NUM_HOSTS
        assert all(
            isinstance(r, PartialAggregate) for r in collection.reports
        )
        covered = sorted(
            h for r in collection.reports for h in r.host_ids
        )
        assert covered == list(range(NUM_HOSTS))

        direct = Controller(RecoveryMode.SKETCHVISOR).aggregate(
            reports, expected_hosts=NUM_HOSTS, epoch=0
        )
        hier = Controller(RecoveryMode.SKETCHVISOR).aggregate(
            collection.reports,
            expected_hosts=NUM_HOSTS,
            epoch=0,
            reported_hosts=collection.hosts_reported,
        )
        assert np.array_equal(
            direct.sketch.to_matrix(), hier.sketch.to_matrix()
        )
        assert hier.num_hosts == NUM_HOSTS
        assert hier.degraded is None

    def test_pipeline_over_sockets_matches_in_process(self, trace):
        truth = GroundTruth.from_trace(trace)
        task = HeavyHitterTask(
            "univmon", threshold=0.002 * truth.total_bytes
        )

        def run(cluster):
            pipe = SketchVisorPipeline(
                HeavyHitterTask(
                    "univmon", threshold=0.002 * truth.total_bytes
                ),
                config=PipelineConfig(
                    num_hosts=5,
                    seed=3,
                    telemetry=Telemetry(),
                    cluster=cluster,
                ),
            )
            return pipe, pipe.run_epoch(trace, truth)

        _, base = run(None)
        _, flat = run(ClusterConfig(hierarchical=False, **FAST))
        pipe_h, hier = run(ClusterConfig(hierarchical=True, **FAST))

        for other in (flat, hier):
            assert np.array_equal(
                base.network.sketch.to_matrix(),
                other.network.sketch.to_matrix(),
            )
            assert vars(base.score) == vars(other.score)
        assert hier.collection.hosts_reported == 5

        # Same per-host telemetry counter totals: the wire changed,
        # the measurement did not.
        def dataplane_counters(result_pipe):
            snap = result_pipe.config.telemetry.registry.snapshot()
            return {
                name: fam
                for name, fam in snap.items()
                if name.startswith(
                    ("sketchvisor_switch", "sketchvisor_fastpath")
                )
            }

        base_pipe, base2 = run(None)
        hier_pipe, hier2 = run(ClusterConfig(hierarchical=True, **FAST))
        assert dataplane_counters(base_pipe) == dataplane_counters(
            hier_pipe
        )

    def test_clean_epoch_has_no_fault_stats(self, reports):
        collection = ClusterCollector(
            ClusterConfig(**FAST)
        ).collect(reports, 1)
        stats = collection.stats
        assert stats.faults_seen == 0
        assert stats.connection_faults == 0
        assert stats.retries == 0


# ---------------------------------------------------------------------------
# Chaos over real sockets.
# ---------------------------------------------------------------------------
class TestSocketChaos:
    def _run(self, reports, seed, epochs=4, **cfg_kwargs):
        injector = FaultInjector(socket_plan(seed=seed))
        collector = ClusterCollector(
            ClusterConfig(**FAST, **cfg_kwargs), injector=injector
        )
        outcomes = []
        for epoch in range(epochs):
            result = collector.collect(reports, epoch)
            outcomes.append(
                (
                    stats_dict(result.stats),
                    tuple(result.missing_hosts),
                    result.hosts_reported,
                )
            )
        return outcomes, dict(injector.injected)

    def test_fault_stats_are_deterministic(self, reports):
        first = self._run(reports, seed=7)
        second = self._run(reports, seed=7)
        assert first == second

    def test_faults_actually_fire(self, reports):
        outcomes, injected = self._run(reports, seed=3, epochs=6)
        assert sum(injected.values()) > 0
        total_faults = sum(
            sum(
                v
                for k, v in stats.items()
                if k not in ("retries", "backoff_seconds", "v1_frames")
            )
            for stats, _, _ in outcomes
        )
        assert total_faults > 0

    def test_report_path_kinds_match_in_process_collector(
        self, reports
    ):
        """A plan with only report-path kinds must produce *identical*
        delivery outcomes over the wire and in process — stats,
        missing hosts, and reports alike."""
        rates = {
            FaultKind.DROP: 0.1,
            FaultKind.DELAY: 0.05,
            FaultKind.BITFLIP: 0.05,
            FaultKind.TRUNCATE: 0.05,
            FaultKind.DUPLICATE: 0.05,
            FaultKind.REPLAY: 0.05,
            FaultKind.CRASH: 0.05,
        }
        in_process = ReportCollector(
            injector=FaultInjector(FaultPlan(seed=11, rates=rates)),
            backoff_base=0.002,
        )
        over_wire = ClusterCollector(
            ClusterConfig(hierarchical=False, **FAST),
            injector=FaultInjector(FaultPlan(seed=11, rates=rates)),
        )
        for epoch in range(3):
            frames = {
                r.host_id: encode_report(r, epoch) for r in reports
            }
            a = in_process.collect(frames, epoch)
            b = over_wire.collect(reports, epoch)
            assert stats_dict(a.stats) == stats_dict(b.stats)
            assert a.missing_hosts == b.missing_hosts
            assert [r.host_id for r in a.reports] == [
                r.host_id for r in b.reports
            ]

    def test_every_epoch_meets_quorum_or_degrades(self, reports):
        """Under sustained socket chaos no epoch hangs or leaks an
        exception: each one either meets quorum or produces a
        DegradedEpoch whose rescale matches the loss."""
        injector = FaultInjector(socket_plan(seed=5))
        collector = ClusterCollector(
            ClusterConfig(**FAST), injector=injector
        )
        controller = Controller(RecoveryMode.SKETCHVISOR, quorum=0.25)
        for epoch in range(6):
            collection = collector.collect(reports, epoch)
            network = controller.aggregate(
                collection.reports,
                expected_hosts=NUM_HOSTS,
                missing_hosts=collection.missing_hosts,
                epoch=epoch,
                reported_hosts=collection.hosts_reported,
            )
            reported = collection.hosts_reported
            assert (
                reported + len(collection.missing_hosts) == NUM_HOSTS
            )
            if reported < NUM_HOSTS:
                degraded = network.degraded
                assert degraded is not None
                assert degraded.reported_hosts == reported
                assert degraded.scale == pytest.approx(
                    NUM_HOSTS / reported
                )
            else:
                assert network.degraded is None

    def test_partitioned_host_quarantined_by_circuit_breaker(
        self, reports
    ):
        victim = 2
        specs = [
            FaultSpec(FaultKind.PARTITION, epoch=e, host=victim)
            for e in range(3)
        ]
        injector = FaultInjector(FaultPlan(seed=1, specs=specs))
        collector = ClusterCollector(
            ClusterConfig(
                quarantine_threshold=3, quarantine_epochs=2, **FAST
            ),
            injector=injector,
        )
        # Epochs 0-2: partition fires, host missing, breaker charging.
        for epoch in range(3):
            result = collector.collect(reports, epoch)
            assert result.missing_hosts == [victim]
            assert result.stats.partitions == 1
            assert result.stats.quarantined_hosts == 0
        # Epochs 3-4: quarantined — no fault fires (the plan is
        # exhausted), the host is skipped outright.
        for epoch in (3, 4):
            result = collector.collect(reports, epoch)
            assert result.missing_hosts == [victim]
            assert result.stats.quarantined_hosts == 1
            assert result.stats.partitions == 0
        # Epoch 5: breaker closes, the healthy host delivers again.
        result = collector.collect(reports, 5)
        assert result.missing_hosts == []
        assert result.stats.quarantined_hosts == 0

    def test_recorder_captures_connection_faults(self, reports):
        telemetry = Telemetry()
        injector = FaultInjector(
            FaultPlan(
                seed=1,
                specs=[
                    FaultSpec(FaultKind.CONN_RESET, epoch=0, host=1),
                    FaultSpec(FaultKind.SLOW_PEER, epoch=0, host=4),
                ],
            )
        )
        collector = ClusterCollector(
            ClusterConfig(**FAST), injector=injector
        )
        collection = collector.collect(reports, 0)
        telemetry.recorder.record_epoch_events(
            0, collection=collection
        )
        faults = [
            e
            for e in telemetry.recorder.events()
            if e.kind == "transport_fault"
        ]
        assert len(faults) == 1
        assert faults[0].fields["conn_resets"] == 1
        assert faults[0].fields["slow_peers"] == 1

    def test_chaos_pipeline_end_to_end(self, trace):
        """Full pipeline over sockets with a socket chaos plan:
        degraded epochs annotate, the flight recorder sees the
        transport faults, and nothing escapes."""
        truth = GroundTruth.from_trace(trace)
        telemetry = Telemetry()
        pipe = SketchVisorPipeline(
            HeavyHitterTask(
                "univmon", threshold=0.002 * truth.total_bytes
            ),
            config=PipelineConfig(
                num_hosts=6,
                seed=3,
                telemetry=telemetry,
                faults=socket_plan(seed=12),
                cluster=ClusterConfig(**FAST),
                quorum=0.25,
            ),
        )
        for _ in range(4):
            result = pipe.run_epoch(trace, truth)
            assert result.collection is not None
            missing = len(result.collection.missing_hosts)
            if missing:
                assert result.degraded is not None
                assert (
                    result.degraded.reported_hosts == 6 - missing
                )
        # Connection-level kinds flow into the shared fault counter.
        snap = telemetry.registry.snapshot()
        fam = snap["sketchvisor_transport_faults_total"]
        kinds = {
            entry["labels"]["kind"] for entry in fam["samples"]
        }
        assert {"conn_refused", "conn_reset", "partition"} <= kinds


# ---------------------------------------------------------------------------
# Aggregator tier mechanics.
# ---------------------------------------------------------------------------
class TestAggregatorTier:
    def test_eager_merge_keeps_two_resident(self, reports):
        aggregator = Aggregator(0)
        for report in reports:
            aggregator.add(report)
        assert aggregator.peak_resident == 2
        partial = aggregator.finish()
        assert partial.num_hosts == NUM_HOSTS
        assert partial.host_ids == tuple(range(NUM_HOSTS))

    def test_pairwise_merge_equals_flat_merge(self, reports):
        aggregator = Aggregator(3)
        for report in reports:
            aggregator.add(report)
        partial = aggregator.finish()
        flat = reports[0].sketch.clone_empty()
        for report in reports:
            flat.merge(report.sketch)
        assert np.array_equal(
            partial.sketch.to_matrix(), flat.to_matrix()
        )
        assert partial.host_id == 3  # duck-compat report slot

    def test_fastpath_entries_canonicalized(self, reports):
        forward = Aggregator(0)
        backward = Aggregator(0)
        for report in reports:
            forward.add(report)
        for report in reversed(reports):
            backward.add(report)
        fwd = forward.finish().fastpath
        bwd = backward.finish().fastpath
        assert list(fwd.entries) == list(bwd.entries)
        assert fwd.entries == bwd.entries

    def test_empty_aggregator_finishes_none(self):
        assert Aggregator(0).finish() is None

    def test_assignment_is_total_and_stable(self):
        for num_aggregators in (1, 3, 8):
            groups = {
                assign_aggregator(h, num_aggregators)
                for h in range(64)
            }
            assert groups == set(range(num_aggregators))
        assert assign_aggregator(5, 0) == 0  # degenerate tier


# ---------------------------------------------------------------------------
# Config plumbing.
# ---------------------------------------------------------------------------
class TestClusterConfig:
    def test_auto_aggregators_scale_sublinearly(self):
        cfg = ClusterConfig()
        assert cfg.resolve_aggregators(1) == 1
        assert cfg.resolve_aggregators(64) == 8
        assert cfg.resolve_aggregators(500) == 23
        assert cfg.resolve_aggregators(1000) == 32

    def test_fixed_aggregators_capped_by_hosts(self):
        cfg = ClusterConfig(aggregators=16)
        assert cfg.resolve_aggregators(500) == 16
        assert cfg.resolve_aggregators(4) == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(max_inflight=0)
        with pytest.raises(ConfigError):
            ClusterConfig(backoff_jitter=1.5)
        with pytest.raises(ConfigError):
            ClusterConfig(idle_timeout=0)

    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER", raising=False)
        assert cluster_from_env() is None
        monkeypatch.setenv("REPRO_CLUSTER", "0")
        assert cluster_from_env() is None
        monkeypatch.setenv("REPRO_CLUSTER", "1")
        cfg = cluster_from_env()
        assert cfg is not None and cfg.aggregators == 0
        monkeypatch.setenv("REPRO_CLUSTER", "6")
        assert cluster_from_env().aggregators == 6


# ---------------------------------------------------------------------------
# Fault plan: socket kinds are additive and isolated.
# ---------------------------------------------------------------------------
class TestSocketSchedules:
    def test_socket_kinds_do_not_perturb_report_draws(self, reports):
        base = FaultPlan(seed=4, rates={FaultKind.DROP: 0.2})
        extended = FaultPlan(
            seed=4,
            rates={
                FaultKind.DROP: 0.2,
                FaultKind.CONN_RESET: 0.3,
                FaultKind.SLOW_PEER: 0.2,
            },
        )
        for epoch in range(4):
            for host in range(8):
                assert base.schedule_for(
                    epoch, host
                ) == extended.schedule_for(epoch, host)

    def test_socket_schedule_is_deterministic(self):
        plan_a = socket_plan(seed=9)
        plan_b = socket_plan(seed=9)
        for epoch in range(4):
            for host in range(16):
                assert plan_a.socket_schedule_for(
                    epoch, host
                ) == plan_b.socket_schedule_for(epoch, host)

    def test_partition_dominates_socket_schedule(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(FaultKind.PARTITION, epoch=0, host=1),
                FaultSpec(FaultKind.CONN_RESET, epoch=0, host=1),
            ],
        )
        assert plan.socket_schedule_for(0, 1) == [
            FaultKind.PARTITION
        ]

    def test_report_schedule_never_contains_socket_kinds(self):
        plan = socket_plan(seed=2)
        for epoch in range(6):
            for host in range(16):
                for kind in plan.schedule_for(epoch, host):
                    assert kind in (
                        FaultKind.DROP,
                        FaultKind.BITFLIP,
                        FaultKind.DUPLICATE,
                    )


# ---------------------------------------------------------------------------
# Rendezvous placement: minimal disruption under tier shrink.
# ---------------------------------------------------------------------------
class TestRendezvousPlacement:
    def test_assignment_is_deterministic(self):
        first = [assign_aggregator(h, 5) for h in range(64)]
        second = [assign_aggregator(h, 5) for h in range(64)]
        assert first == second

    def test_all_groups_receive_hosts(self):
        for num_aggregators in (1, 3, 8):
            groups = {
                assign_aggregator(h, num_aggregators)
                for h in range(64)
            }
            assert groups == set(range(num_aggregators))

    def test_removal_only_rehomes_the_dead_shard(self):
        """The fail-over property modulo placement lacks: when one
        aggregator leaves the candidate set, every host NOT on its
        shard keeps its assignment."""
        candidates = set(range(8))
        before = {
            h: rendezvous_aggregator(h, candidates)
            for h in range(256)
        }
        for dead in range(8):
            survivors = candidates - {dead}
            for h in range(256):
                after = rendezvous_aggregator(h, survivors)
                if before[h] == dead:
                    assert after in survivors
                else:
                    assert after == before[h]

    def test_empty_candidate_set_routes_nowhere(self):
        assert rendezvous_aggregator(3, set()) is None


# ---------------------------------------------------------------------------
# Aggregator fault schedules: seeded, additive, isolated.
# ---------------------------------------------------------------------------
class TestAggregatorSchedules:
    def test_schedule_is_deterministic(self):
        def draws(plan):
            return [
                [
                    (fault.kind, fault.offset)
                    for fault in plan.aggregator_schedule_for(
                        epoch, agg, 5
                    )
                ]
                for epoch in range(10)
                for agg in range(4)
            ]

        assert draws(failover_plan(seed=9)) == draws(
            failover_plan(seed=9)
        )

    def test_aggregator_kinds_do_not_perturb_host_draws(self):
        """Adding agg_crash/agg_hang rates to a plan must leave the
        host-level report and socket schedules bit-identical — the
        aggregator stream is salted separately."""
        base = FaultPlan(
            seed=4,
            rates={
                FaultKind.DROP: 0.2,
                FaultKind.CONN_RESET: 0.1,
            },
        )
        extended = FaultPlan(
            seed=4,
            rates={
                FaultKind.DROP: 0.2,
                FaultKind.CONN_RESET: 0.1,
                FaultKind.AGG_CRASH: 0.5,
                FaultKind.AGG_HANG: 0.3,
            },
        )
        for epoch in range(6):
            for host in range(8):
                assert base.schedule_for(
                    epoch, host
                ) == extended.schedule_for(epoch, host)
                assert base.socket_schedule_for(
                    epoch, host
                ) == extended.socket_schedule_for(epoch, host)

    def test_host_schedules_never_contain_aggregator_kinds(self):
        plan = failover_plan(seed=2)
        for epoch in range(8):
            for host in range(16):
                kinds = set(plan.schedule_for(epoch, host)) | set(
                    plan.socket_schedule_for(epoch, host)
                )
                assert FaultKind.AGG_CRASH not in kinds
                assert FaultKind.AGG_HANG not in kinds

    def test_pinned_spec_offset_is_clamped(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(
                    FaultKind.AGG_CRASH,
                    epoch=0,
                    host=1,
                    packet_offset=99,
                )
            ],
        )
        [fault] = plan.aggregator_schedule_for(0, 1, 5)
        assert fault.kind is FaultKind.AGG_CRASH
        assert fault.offset == 5


# ---------------------------------------------------------------------------
# Aggregator fail-over over real sockets.
# ---------------------------------------------------------------------------
class TestAggregatorFailover:
    """A struck aggregator re-shards, redelivers, and merges exactly.

    Redelivery counts and detection latencies are timing-dependent, so
    assertions stick to conservation and bit-identity — never exact
    retry/redelivery tallies.
    """

    def _merge(self, collection, epoch, quorum=0.5):
        return Controller(
            RecoveryMode.SKETCHVISOR, quorum=quorum
        ).aggregate(
            collection.reports,
            expected_hosts=NUM_HOSTS,
            missing_hosts=collection.missing_hosts,
            epoch=epoch,
            reported_hosts=collection.hosts_reported,
        )

    def _clean_matrix(self, reports, epoch):
        collection = ClusterCollector(
            ClusterConfig(**FAST)
        ).collect(reports, epoch)
        return self._merge(collection, epoch).sketch.to_matrix()

    def _strike_collect(
        self, reports, kind, epoch=0, agg=0, offset=2, **cfg_kwargs
    ):
        specs = [
            FaultSpec(kind, epoch=epoch, host=agg, packet_offset=offset)
        ]
        injector = FaultInjector(FaultPlan(seed=2, specs=specs))
        collector = ClusterCollector(
            ClusterConfig(**FAST, **cfg_kwargs), injector=injector
        )
        return collector.collect(reports, epoch)

    def test_crash_with_full_redelivery_is_bit_identical(
        self, reports
    ):
        collection = self._strike_collect(
            reports, FaultKind.AGG_CRASH
        )
        assert collection.missing_hosts == []
        assert collection.hosts_reported == NUM_HOSTS
        assert collection.stats.agg_crashes == 1
        assert collection.stats.failovers == 1
        [record] = collection.failovers
        assert record.aggregator_id == 0
        assert record.kind == "agg_crash"
        assert record.recovered
        assert record.unrecovered_hosts == ()
        assert set(record.redelivered_hosts) == set(
            record.shard_hosts
        )
        assert record.shard_hosts  # the dead shard was not empty
        assert record.detect_seconds >= 0.0
        assert record.recovery_seconds is not None
        network = self._merge(collection, 0)
        assert network.degraded is None
        assert np.array_equal(
            network.sketch.to_matrix(),
            self._clean_matrix(reports, 0),
        )

    def test_hang_recovers_bit_identically(self, reports):
        collection = self._strike_collect(
            reports, FaultKind.AGG_HANG, offset=1
        )
        assert collection.missing_hosts == []
        assert collection.hosts_reported == NUM_HOSTS
        assert collection.stats.agg_hangs == 1
        assert collection.stats.failovers == 1
        [record] = collection.failovers
        assert record.kind == "agg_hang"
        assert record.recovered
        network = self._merge(collection, 0)
        assert network.degraded is None
        assert np.array_equal(
            network.sketch.to_matrix(),
            self._clean_matrix(reports, 0),
        )

    def test_suppressed_failover_degrades_instead_of_losing(
        self, reports
    ):
        """``failover=False``: the watchdog still detects the death
        (and forgets the dead shard's attendance), but no redelivery
        sweep runs — the un-recovered hosts flow into the quorum-gated
        degraded merge, never silently vanish."""
        collection = self._strike_collect(
            reports, FaultKind.AGG_CRASH, failover=False
        )
        assert collection.missing_hosts  # the lost shard stays lost
        [record] = collection.failovers
        assert collection.missing_hosts == sorted(
            record.unrecovered_hosts
        )
        assert (
            collection.hosts_reported
            + len(collection.missing_hosts)
            == NUM_HOSTS
        )
        network = self._merge(collection, 0, quorum=0.25)
        assert network.degraded is not None
        assert sorted(network.degraded.missing_hosts) == sorted(
            collection.missing_hosts
        )

    def test_flat_mode_discards_and_recovers_the_dead_bucket(
        self, reports
    ):
        collection = self._strike_collect(
            reports, FaultKind.AGG_CRASH, hierarchical=False
        )
        assert collection.missing_hosts == []
        assert [r.host_id for r in collection.reports] == list(
            range(NUM_HOSTS)
        )
        base = ReportCollector().collect(
            {r.host_id: encode_report(r, 0) for r in reports}, 0
        )
        for a, b in zip(base.reports, collection.reports):
            assert a.host_id == b.host_id
            assert np.array_equal(
                a.sketch.to_matrix(), b.sketch.to_matrix()
            )

    def test_sustained_chaos_soak_conserves_every_host(self, reports):
        """failover_plan chaos over several epochs: every host is
        accounted for every epoch (delivered or missing — never
        dropped on the floor), failover records partition their shards
        exactly, and clean-recovery epochs merge bit-identically."""
        injector = FaultInjector(failover_plan(seed=31))
        collector = ClusterCollector(
            ClusterConfig(**FAST), injector=injector
        )
        total_failovers = 0
        for epoch in range(5):
            collection = collector.collect(reports, epoch)
            assert (
                collection.hosts_reported
                + len(collection.missing_hosts)
                == NUM_HOSTS
            )
            for record in collection.failovers:
                total_failovers += 1
                assert set(record.redelivered_hosts) | set(
                    record.unrecovered_hosts
                ) == set(record.shard_hosts)
                assert set(record.unrecovered_hosts) <= set(
                    collection.missing_hosts
                )
            if not collection.missing_hosts:
                network = self._merge(collection, epoch)
                assert np.array_equal(
                    network.sketch.to_matrix(),
                    self._clean_matrix(reports, epoch),
                )
        assert total_failovers >= 1
        assert injector.injected.get("agg_crash", 0) >= 1
