"""Synthetic trace generation: determinism, skew, scale knobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.generator import (
    MIN_PACKET_SIZE,
    TraceConfig,
    generate_epochs,
    generate_trace,
    zipf_flow_sizes,
)


class TestZipfSizes:
    def test_counts_positive(self):
        rng = np.random.default_rng(1)
        counts = zipf_flow_sizes(1000, 1.2, rng)
        assert (counts >= 1).all()

    def test_skew_increases_with_alpha(self):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        mild = zipf_flow_sizes(2000, 0.8, rng1)
        steep = zipf_flow_sizes(2000, 1.8, rng2)
        top_share_mild = mild.max() / mild.sum()
        top_share_steep = steep.max() / steep.sum()
        assert top_share_steep > top_share_mild

    def test_validates_num_flows(self):
        with pytest.raises(ValueError):
            zipf_flow_sizes(0, 1.2, np.random.default_rng(1))


class TestGenerateTrace:
    def test_deterministic(self):
        config = TraceConfig(num_flows=300, seed=9)
        a = generate_trace(config)
        b = generate_trace(config)
        assert len(a) == len(b)
        assert all(
            pa.flow == pb.flow and pa.size == pb.size
            for pa, pb in zip(a, b)
        )

    def test_seed_changes_trace(self):
        a = generate_trace(TraceConfig(num_flows=300, seed=1))
        b = generate_trace(TraceConfig(num_flows=300, seed=2))
        assert a.flows() != b.flows()

    def test_flow_count(self):
        trace = generate_trace(TraceConfig(num_flows=250, seed=3))
        assert len(trace.flows()) == 250

    def test_mean_packet_size_near_target(self):
        trace = generate_trace(TraceConfig(num_flows=3000, seed=5))
        mean = trace.total_bytes / len(trace)
        assert 650 <= mean <= 850  # target 769, SYN packets pull down

    def test_custom_mean_packet_size(self):
        trace = generate_trace(
            TraceConfig(num_flows=3000, seed=5, mean_packet_size=400)
        )
        mean = trace.total_bytes / len(trace)
        assert 300 <= mean <= 500

    def test_heavy_tailed(self):
        trace = generate_trace(TraceConfig(num_flows=2000, seed=5))
        sizes = sorted(trace.flow_sizes().values(), reverse=True)
        top_decile = sum(sizes[: len(sizes) // 10])
        assert top_decile > 0.5 * sum(sizes)

    def test_timestamps_span_duration(self):
        trace = generate_trace(
            TraceConfig(num_flows=500, seed=5, duration=2.0)
        )
        assert trace[0].timestamp >= 0.0
        assert trace[-1].timestamp <= 2.0
        assert trace.duration > 1.5

    def test_most_flows_open_with_min_packet(self):
        trace = generate_trace(TraceConfig(num_flows=1000, seed=5))
        first_sizes = {}
        for packet in trace:
            first_sizes.setdefault(packet.flow, packet.size)
        syn_fraction = sum(
            1 for s in first_sizes.values() if s == MIN_PACKET_SIZE
        ) / len(first_sizes)
        assert syn_fraction > 0.7

    def test_with_seed_helper(self):
        config = TraceConfig(num_flows=10, seed=1)
        assert config.with_seed(5).seed == 5
        assert config.with_seed(5).num_flows == 10


class TestGenerateEpochs:
    def test_epoch_count_and_offsets(self):
        epochs = generate_epochs(
            TraceConfig(num_flows=300, seed=4, duration=1.0), 3
        )
        assert len(epochs) == 3
        for index, epoch in enumerate(epochs):
            assert epoch[0].timestamp >= index * 1.0
            assert epoch[-1].timestamp <= (index + 1) * 1.0

    def test_flow_population_persists(self):
        epochs = generate_epochs(
            TraceConfig(num_flows=300, seed=4), 2
        )
        overlap = epochs[0].flows() & epochs[1].flows()
        assert len(overlap) > 200

    def test_flow_sizes_change_across_epochs(self):
        epochs = generate_epochs(
            TraceConfig(num_flows=300, seed=4), 2
        )
        sizes_a = epochs[0].flow_sizes()
        sizes_b = epochs[1].flow_sizes()
        changed = sum(
            1
            for flow in set(sizes_a) & set(sizes_b)
            if abs(sizes_a[flow] - sizes_b[flow])
            > 0.5 * max(sizes_a[flow], sizes_b[flow])
        )
        assert changed > 10

    def test_validates_num_epochs(self):
        with pytest.raises(ValueError):
            generate_epochs(TraceConfig(num_flows=10), 0)
