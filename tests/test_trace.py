"""Trace container: ordering, epochs, host partitioning."""

from __future__ import annotations

import pytest

from repro.common.flow import FlowKey, Packet
from repro.traffic.trace import Trace
from tests.conftest import make_flow


def _packets(n, flow=None, start=0.0, gap=0.1, size=100):
    flow = flow or make_flow(0)
    return [Packet(flow, size, start + i * gap) for i in range(n)]


class TestTraceBasics:
    def test_rejects_out_of_order_timestamps(self):
        flow = make_flow(1)
        with pytest.raises(ValueError):
            Trace([Packet(flow, 10, 1.0), Packet(flow, 10, 0.5)])

    def test_len_iter_getitem(self):
        trace = Trace(_packets(5))
        assert len(trace) == 5
        assert sum(1 for _ in trace) == 5
        assert trace[0].timestamp == 0.0

    def test_duration_and_totals(self):
        trace = Trace(_packets(5, size=200))
        assert trace.duration == pytest.approx(0.4)
        assert trace.total_bytes == 1000

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.flow_sizes() == {}

    def test_flow_sizes_and_counts(self):
        a, b = make_flow(1), make_flow(2)
        trace = Trace(
            [
                Packet(a, 100, 0.0),
                Packet(b, 50, 0.1),
                Packet(a, 200, 0.2),
            ]
        )
        assert trace.flow_sizes() == {a: 300, b: 50}
        assert trace.flow_packet_counts() == {a: 2, b: 1}
        assert trace.flows() == {a, b}


class TestEpochSplitting:
    def test_split_sizes(self):
        trace = Trace(_packets(10, gap=0.1))  # spans [0, 0.9]
        epochs = trace.split_epochs(0.5)
        assert len(epochs) == 2
        assert len(epochs[0]) == 5 and len(epochs[1]) == 5

    def test_split_preserves_packets(self):
        trace = Trace(_packets(17, gap=0.07))
        epochs = trace.split_epochs(0.3)
        assert sum(len(e) for e in epochs) == 17

    def test_split_validates_length(self):
        with pytest.raises(ValueError):
            Trace(_packets(3)).split_epochs(0)

    def test_split_empty(self):
        assert Trace([]).split_epochs(1.0) == []


class TestPartitioning:
    def test_partition_is_flow_consistent(self, medium_trace):
        shards = medium_trace.partition(4)
        seen: dict[FlowKey, int] = {}
        for index, shard in enumerate(shards):
            for packet in shard:
                assert seen.setdefault(packet.flow, index) == index

    def test_partition_preserves_everything(self, medium_trace):
        shards = medium_trace.partition(4)
        assert sum(len(s) for s in shards) == len(medium_trace)
        assert (
            sum(s.total_bytes for s in shards)
            == medium_trace.total_bytes
        )

    def test_partition_balanced(self, medium_trace):
        shards = medium_trace.partition(4)
        sizes = [len(s) for s in shards]
        assert min(sizes) > 0.1 * len(medium_trace)

    def test_partition_single_host(self, small_trace):
        assert small_trace.partition(1)[0] is small_trace

    def test_partition_validates(self, small_trace):
        with pytest.raises(ValueError):
            small_trace.partition(0)

    def test_merge_inverts_partition(self, small_trace):
        shards = small_trace.partition(3)
        merged = Trace.merge(shards)
        assert len(merged) == len(small_trace)
        assert merged.flow_sizes() == small_trace.flow_sizes()


class TestConcat:
    def test_concat_shifts_second(self):
        first = Trace(_packets(3, gap=0.1))
        second = Trace(_packets(3, gap=0.1))
        joined = first.concat(second)
        assert len(joined) == 6
        assert joined[3].timestamp >= joined[2].timestamp

    def test_concat_with_empty(self):
        trace = Trace(_packets(2))
        assert first_len(trace.concat(Trace([]))) == 2
        assert first_len(Trace([]).concat(trace)) == 2


def first_len(trace):
    return len(trace)
