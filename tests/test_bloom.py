"""Bloom filter substrates: no false negatives, mergeability."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, MergeError
from repro.common.hashing import mix64
from repro.sketches.bloom import BloomFilter, CountingBloomFilter


class TestBloomFilter:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BloomFilter(0)

    @given(st.sets(st.integers(0, 2**40), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter(4096, 4)
        for key in keys:
            bloom.add(key)
        for key in keys:
            assert key in bloom

    def test_add_reports_prior_presence(self):
        bloom = BloomFilter(4096, 4)
        assert bloom.add(42) is False
        assert bloom.add(42) is True

    def test_false_positive_rate_grows_with_fill(self):
        bloom = BloomFilter(1024, 4)
        assert bloom.false_positive_rate() == 0.0
        for key in range(400):
            bloom.add(mix64(key))
        assert 0 < bloom.false_positive_rate() < 1

    def test_observed_fpr_reasonable(self):
        bloom = BloomFilter(10_000, 4)
        for key in range(1000):
            bloom.add(mix64(key))
        false_hits = sum(
            1 for key in range(1000, 6000) if mix64(key) in bloom
        )
        assert false_hits / 5000 < 0.05

    def test_merge_is_union(self):
        a = BloomFilter(2048, 4, seed=3)
        b = BloomFilter(2048, 4, seed=3)
        a.add(1)
        b.add(2)
        a.merge(b)
        assert 1 in a and 2 in a

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            BloomFilter(2048, seed=1).merge(BloomFilter(2048, seed=2))

    def test_reset(self):
        bloom = BloomFilter(256)
        bloom.add(7)
        bloom.reset()
        assert 7 not in bloom

    def test_memory(self):
        assert BloomFilter(800).memory_bytes() == 100


class TestCountingBloomFilter:
    def test_add_then_remove_restores(self):
        cbf = CountingBloomFilter(1024, 4)
        cbf.add(5)
        assert 5 in cbf
        cbf.remove(5)
        assert 5 not in cbf

    def test_volume_form(self):
        cbf = CountingBloomFilter(1024, 4)
        cbf.add(5, value=700.0)
        assert 5 in cbf
        assert cbf.counters.sum() == pytest.approx(4 * 700.0)

    def test_merge_adds_counters(self):
        a = CountingBloomFilter(512, 2, seed=1)
        b = CountingBloomFilter(512, 2, seed=1)
        a.add(1, 10)
        b.add(1, 20)
        a.merge(b)
        assert a.counters.sum() == pytest.approx(60.0)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            CountingBloomFilter(512).merge(CountingBloomFilter(256))
