"""``repro.dash`` rendering: HTML report, live frames, flamegraphs."""

from __future__ import annotations

import io

import pytest

from repro import PipelineConfig, SketchVisorPipeline
from repro.dash import (
    EPOCH_FIELDS,
    epoch_row,
    flamegraph_html,
    flamegraph_svg,
    html_report,
    paint_live_frame,
    write_flamegraph,
    write_html_report,
)
from repro.framework.modes import DataPlaneMode
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry import Telemetry
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth


@pytest.fixture(scope="module")
def result():
    trace = generate_trace(TraceConfig(num_flows=600, seed=11))
    truth = GroundTruth.from_trace(trace)
    pipeline = SketchVisorPipeline(
        HeavyHitterTask("univmon", threshold=0.001),
        dataplane=DataPlaneMode.SKETCHVISOR,
        config=PipelineConfig(num_hosts=2, seed=3, batch=True),
    )
    return pipeline.run_epoch(trace, truth)


@pytest.fixture(scope="module")
def rows(result):
    return [epoch_row(result)]


# ----------------------------------------------------------------------
# Epoch rows + live frame
# ----------------------------------------------------------------------
class TestEpochRows:
    def test_epoch_row_covers_display_fields(self, rows):
        for key, _label, _unit in EPOCH_FIELDS:
            assert key in rows[0]
        assert rows[0]["throughput_gbps"] > 0

    def test_paint_live_frame_plain(self, rows):
        stream = io.StringIO()
        paint_live_frame(rows, None, stream=stream, repaint=False)
        output = stream.getvalue()
        assert "throughput_gbps" in output
        assert "\x1b[" not in output  # no cursor control when plain


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
class TestHtmlReport:
    def test_report_well_formed(self, rows):
        html = html_report(
            rows, None, title="T<itle>", subtitle="a & b"
        )
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        # Title/subtitle are escaped, raw JSON payload is defanged.
        assert "T&lt;itle&gt;" in html
        assert "a &amp; b" in html
        assert "</script>" in html  # the real closing tag survives
        assert '"rows"' in html

    def test_report_empty_metrics(self):
        html = html_report([], None, title="empty")
        assert html.startswith("<!DOCTYPE html>")
        assert "<tbody></tbody>" in html

    def test_report_single_epoch(self, rows):
        html = html_report(rows, None)
        assert html.count("<tr><td>0</td>") == 1

    def test_report_includes_registry_summary(self, rows):
        telemetry = Telemetry()
        telemetry.registry.counter(
            "sketchvisor_test_total", "help text"
        ).inc(3)
        html = html_report(rows, telemetry.registry)
        assert "sketchvisor_test_total" in html

    def test_write_html_report(self, tmp_path, rows):
        destination = write_html_report(
            tmp_path / "report.html", rows
        )
        assert destination.exists()
        assert destination.read_text().startswith("<!DOCTYPE html>")

    def test_none_values_render_as_dashes(self):
        row = {key: None for key, _l, _u in EPOCH_FIELDS}
        row["throughput_gbps"] = 1.5
        html = html_report([row], None)
        assert html.startswith("<!DOCTYPE html>")


# ----------------------------------------------------------------------
# Flamegraph
# ----------------------------------------------------------------------
FOLDED = {
    "epoch;dataplane;switch.sketch_update": 40,
    "epoch;dataplane;fastpath.topk": 55,
    "epoch;controlplane.merge": 5,
}


class TestFlamegraph:
    def test_svg_structure_and_tooltips(self):
        svg = flamegraph_svg(FOLDED)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "<style>" in svg  # self-contained, dark-mode aware
        assert "prefers-color-scheme: dark" in svg
        # Native hover tooltips carry name, samples, share.
        assert svg.count("<title>") >= 4
        assert "fastpath.topk" in svg and "55" in svg

    def test_widths_proportional_to_samples(self):
        svg = flamegraph_svg(
            {"root;a": 75, "root;b": 25}, width=1000
        )
        # 'root' spans the full width; a and b split it 3:1.
        assert 'width="1000.00"' in svg
        assert 'width="750.00"' in svg
        assert 'width="250.00"' in svg

    def test_children_sorted_widest_first(self):
        svg = flamegraph_svg({"root;tiny": 1, "root;huge": 99})
        assert svg.index("huge") < svg.index("tiny")

    def test_empty_folded_renders_notice(self):
        svg = flamegraph_svg({})
        assert svg.startswith("<svg")
        assert "No profile samples" in svg

    def test_frame_names_escaped(self):
        svg = flamegraph_svg({"<stage>;a": 10})
        assert "<stage>" not in svg
        assert "&lt;stage&gt;" in svg

    def test_html_wrapper_and_stage_table(self):
        html = flamegraph_html(
            FOLDED,
            title="Flame",
            subtitle="sub",
            stage_table={
                "epoch": {
                    "wall_seconds": 1.25,
                    "cpu_seconds": 1.0,
                    "count": 3,
                }
            },
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "Stage totals" in html
        assert "1.2500" in html

    def test_write_flamegraph_by_suffix(self, tmp_path):
        svg_path = write_flamegraph(tmp_path / "f.svg", FOLDED)
        html_path = write_flamegraph(tmp_path / "f.html", FOLDED)
        assert svg_path.read_text().startswith("<svg")
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_profiler_folded_round_trip(self):
        """A real profiler's folded stacks render without error."""
        from repro.telemetry import ProfileConfig

        telemetry = Telemetry(
            profile=ProfileConfig(sample_hz=400.0)
        )
        with telemetry.profiler.stage("busy"):
            total = 0
            for _ in range(100):
                total += sum(range(10_000))
        svg = flamegraph_svg(telemetry.profiler.folded)
        assert svg.startswith("<svg")
