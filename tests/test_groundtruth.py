"""Exact ground truth computation for every §2.1 statistic."""

from __future__ import annotations

import math

import pytest

from repro.common.flow import FlowKey, Packet
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace
from tests.conftest import make_flow, make_trace


@pytest.fixture()
def tiny_truth():
    a = make_flow(1)
    b = make_flow(2)
    c = make_flow(3)
    trace = make_trace([(a, [100, 200]), (b, [50]), (c, [1000, 1000])])
    return a, b, c, GroundTruth.from_trace(trace)


class TestBasics:
    def test_flow_bytes(self, tiny_truth):
        a, b, c, truth = tiny_truth
        assert truth.flow_bytes == {a: 300, b: 50, c: 2000}

    def test_flow_packets(self, tiny_truth):
        a, b, c, truth = tiny_truth
        assert truth.flow_packets == {a: 2, b: 1, c: 2}

    def test_cardinality_and_total(self, tiny_truth):
        *_flows, truth = tiny_truth
        assert truth.cardinality == 3
        assert truth.total_bytes == 2350

    def test_heavy_hitters(self, tiny_truth):
        a, b, c, truth = tiny_truth
        assert truth.heavy_hitters(299) == {a: 300, c: 2000}
        assert truth.heavy_hitters(2000) == {}

    def test_entropy_matches_manual(self, tiny_truth):
        *_flows, truth = tiny_truth
        total = 2350
        expected = -sum(
            (v / total) * math.log2(v / total) for v in (300, 50, 2000)
        )
        assert truth.entropy == pytest.approx(expected)

    def test_entropy_empty(self):
        assert GroundTruth.from_trace(Trace([])).entropy == 0.0


class TestHeavyChangers:
    def test_detects_change(self):
        a, b = make_flow(1), make_flow(2)
        epoch1 = make_trace([(a, [1000]), (b, [100])])
        epoch2 = make_trace([(a, [100]), (b, [100])])
        t1 = GroundTruth.from_trace(epoch1)
        t2 = GroundTruth.from_trace(epoch2)
        changes = t1.heavy_changers(t2, 500)
        assert changes == {a: 900}

    def test_symmetric(self):
        a = make_flow(1)
        t1 = GroundTruth.from_trace(make_trace([(a, [1000])]))
        t2 = GroundTruth.from_trace(make_trace([(a, [100])]))
        assert t1.heavy_changers(t2, 500) == t2.heavy_changers(t1, 500)

    def test_appearing_flow_is_a_change(self):
        a, b = make_flow(1), make_flow(2)
        t1 = GroundTruth.from_trace(make_trace([(a, [100])]))
        t2 = GroundTruth.from_trace(make_trace([(a, [100]), (b, [999])]))
        assert t1.heavy_changers(t2, 500) == {b: 999}


class TestConnectivity:
    def test_fanin_fanout(self):
        packets = [
            Packet(FlowKey(src, 500, 1000 + src, 80), 64, i * 0.01)
            for i, src in enumerate(range(1, 11))
        ]
        truth = GroundTruth.from_trace(Trace(packets))
        assert truth.ddos_victims(9) == {500: 10}
        assert truth.ddos_victims(10) == {}
        assert truth.superspreaders(0) == {
            src: 1 for src in range(1, 11)
        }

    def test_repeat_flows_do_not_inflate_fanin(self):
        flow = FlowKey(1, 500, 1000, 80)
        packets = [Packet(flow, 64, i * 0.01) for i in range(20)]
        truth = GroundTruth.from_trace(Trace(packets))
        assert truth.fanin[500] == {1}


class TestDistribution:
    def test_flow_size_distribution(self, tiny_truth):
        *_flows, truth = tiny_truth
        assert truth.flow_size_distribution() == {2: 2, 1: 1}

    def test_bucketized_distribution(self, tiny_truth):
        *_flows, truth = tiny_truth
        histogram = truth.flow_size_distribution(bucket_edges=[1, 2])
        assert histogram == {0: 1, 1: 2}


class TestMerge:
    def test_merge_is_network_wide_truth(self, medium_trace):
        shards = medium_trace.partition(3)
        merged = GroundTruth.from_trace(shards[0])
        for shard in shards[1:]:
            merged = merged.merge(GroundTruth.from_trace(shard))
        whole = GroundTruth.from_trace(medium_trace)
        assert merged.flow_bytes == whole.flow_bytes
        assert merged.cardinality == whole.cardinality
        assert merged.fanin == whole.fanin
        assert merged.fanout == whole.fanout
