"""Space-Saving top-k (the non-paper ablation alternative)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.fastpath.space_saving import SpaceSavingTopK
from repro.fastpath.topk import ENTRY_BYTES, UpdateKind
from tests.conftest import make_flow

streams = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 5000)),
    min_size=1,
    max_size=300,
)


class TestSpaceSaving:
    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates(self, stream):
        """Space-Saving's signature: count >= true size for tracked."""
        tracker = SpaceSavingTopK(memory_bytes=10 * ENTRY_BYTES)
        truth: dict[int, int] = {}
        for index, size in stream:
            tracker.update(make_flow(index), size)
            truth[index] = truth.get(index, 0) + size
        for flow, entry in tracker.table.items():
            assert entry.count >= truth[flow.src_ip - 1000] - 1e-6

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_bounds_contain_truth(self, stream):
        tracker = SpaceSavingTopK(memory_bytes=10 * ENTRY_BYTES)
        truth: dict[int, int] = {}
        for index, size in stream:
            tracker.update(make_flow(index), size)
            truth[index] = truth.get(index, 0) + size
        for flow, (low, high) in tracker.bounds().items():
            true_size = truth[flow.src_ip - 1000]
            assert low - 1e-6 <= true_size <= high + 1e-6

    def test_table_always_full_after_warmup(self):
        """Space-Saving never leaves slots empty: misses replace."""
        tracker = SpaceSavingTopK(memory_bytes=5 * ENTRY_BYTES)
        for i in range(100):
            tracker.update(make_flow(i), 100)
        assert len(tracker.table) == tracker.capacity

    def test_heavy_flow_survives(self):
        tracker = SpaceSavingTopK(memory_bytes=8 * ENTRY_BYTES)
        heavy = make_flow(0)
        tracker.update(heavy, 1_000_000)
        for i in range(1, 1000):
            tracker.update(make_flow(i), 64)
        assert heavy in tracker.table

    def test_error_bound_classic(self):
        tracker = SpaceSavingTopK(memory_bytes=10 * ENTRY_BYTES)
        for i in range(100):
            tracker.update(make_flow(i), 100)
        assert tracker.error_bound() == pytest.approx(
            tracker.total_bytes / tracker.capacity
        )

    def test_every_miss_is_a_takeover(self):
        tracker = SpaceSavingTopK(memory_bytes=3 * ENTRY_BYTES)
        for i in range(3):
            tracker.update(make_flow(i), 100)
        for i in range(3, 13):
            assert (
                tracker.update(make_flow(i), 10) is UpdateKind.KICKOUT
            )
        assert tracker.num_kickouts == 10
        assert tracker.num_evicted == 10

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            SpaceSavingTopK(memory_bytes=1)

    def test_reset(self):
        tracker = SpaceSavingTopK()
        tracker.update(make_flow(1), 100)
        tracker.reset()
        assert not tracker.table and tracker.total_bytes == 0
