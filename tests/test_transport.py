"""Host → controller report serialization."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.controlplane.controller import Controller
from repro.controlplane.recovery import RecoveryMode
from repro.controlplane.transport import (
    decode_report,
    decode_stream,
    encode_report,
    encode_stream,
)
from repro.dataplane.host import Host
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar


@pytest.fixture(scope="module")
def report(small_trace):
    host = Host(0, Deltoid(width=128, depth=2, seed=5), fastpath_bytes=8192)
    return host.run_epoch(small_trace)


class TestRoundTrip:
    def test_report_roundtrip(self, report):
        restored = decode_report(encode_report(report))
        assert restored.host_id == report.host_id
        assert np.array_equal(
            restored.sketch.to_matrix(), report.sketch.to_matrix()
        )
        assert restored.fastpath.total_bytes == (
            report.fastpath.total_bytes
        )
        assert restored.fastpath.entries.keys() == (
            report.fastpath.entries.keys()
        )

    def test_restored_report_aggregates_identically(
        self, report, small_trace
    ):
        """Aggregating the wire copy must answer exactly like the
        original — transport is lossless for the control plane."""
        restored = decode_report(encode_report(report))
        threshold = 0.01 * small_trace.total_bytes
        original_network = Controller(
            RecoveryMode.SKETCHVISOR
        ).aggregate([report])
        restored_network = Controller(
            RecoveryMode.SKETCHVISOR
        ).aggregate([restored])
        assert restored_network.sketch.decode(threshold).keys() == (
            original_network.sketch.decode(threshold).keys()
        )

    def test_nonlinear_sketch_roundtrip(self, small_trace):
        host = Host(
            1,
            FlowRadar(bloom_bits=20_000, num_cells=4000, seed=5),
            fastpath_bytes=8192,
        )
        report = host.run_epoch(small_trace)
        restored = decode_report(encode_report(report))
        original, _ = report.sketch.decode()
        recovered, _ = restored.sketch.decode()
        assert original == recovered

    def test_stream_roundtrip(self, report):
        stream = encode_stream([report, report, report])
        reports = decode_stream(stream)
        assert len(reports) == 3


class TestAllSolutionsSerialize:
    """The wire format must round-trip every Table 1 solution."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: Deltoid(width=64, depth=2, seed=4),
            lambda: FlowRadar(bloom_bits=5000, num_cells=1000, seed=4),
        ],
        ids=["deltoid", "flowradar"],
    )
    def test_reversible_sketches(self, build, small_trace):
        host = Host(0, build(), fastpath_bytes=8192)
        report = host.run_epoch(small_trace)
        restored = decode_report(encode_report(report))
        assert np.array_equal(
            restored.sketch.to_matrix(), report.sketch.to_matrix()
        )

    def test_every_registry_solution(self, small_trace):
        from repro.framework.registry import TASK_REGISTRY, create_task

        seen: set[str] = set()
        for task_name, (_cls, solutions) in TASK_REGISTRY.items():
            for solution in solutions:
                if solution in seen:
                    continue
                seen.add(solution)
                kwargs = {}
                if task_name in ("heavy_hitter", "heavy_changer"):
                    kwargs["threshold"] = 1000
                if task_name in ("ddos", "superspreader"):
                    kwargs["threshold"] = 10
                task = create_task(task_name, solution, **kwargs)
                host = Host(
                    0, task.create_sketch(seed=2), fastpath_bytes=8192
                )
                report = host.run_epoch(small_trace)
                restored = decode_report(encode_report(report))
                assert type(restored.sketch) is type(report.sketch)
        assert len(seen) == 9


class TestFrameValidation:
    def test_short_message(self):
        with pytest.raises(ConfigError):
            decode_report(b"SK")

    def test_bad_magic(self, report):
        message = bytearray(encode_report(report))
        message[0:4] = b"XXXX"
        with pytest.raises(ConfigError):
            decode_report(bytes(message))

    def test_bad_version(self, report):
        message = bytearray(encode_report(report))
        message[4] = 99
        with pytest.raises(ConfigError):
            decode_report(bytes(message))

    def test_truncated_payload(self, report):
        message = encode_report(report)
        with pytest.raises(ConfigError):
            decode_report(message[:-10])

    def test_trailing_garbage_in_stream(self, report):
        with pytest.raises(ConfigError):
            decode_stream(encode_report(report) + b"\x01\x02")


class TestRestrictedUnpickler:
    def _frame(self, payload: bytes) -> bytes:
        import struct

        return struct.pack(">4sBI", b"SKVR", 1, len(payload)) + payload

    def test_rejects_arbitrary_classes(self):
        payload = pickle.dumps(object())  # builtins.object is allowed...
        # ...but the result is not a LocalReport.
        with pytest.raises(ConfigError):
            decode_report(self._frame(payload))

    def test_rejects_os_system_gadget(self):
        class Evil:
            def __reduce__(self):
                import os

                return (os.system, ("true",))

        payload = pickle.dumps(Evil())
        with pytest.raises(ConfigError):
            decode_report(self._frame(payload))

    def test_rejects_eval_gadget(self):
        class Evil:
            def __reduce__(self):
                return (eval, ("1+1",))

        payload = pickle.dumps(Evil())
        with pytest.raises(ConfigError):
            decode_report(self._frame(payload))
