"""Host → controller report serialization."""

from __future__ import annotations

import pickle
import random
import struct

import numpy as np
import pytest

from repro.common.errors import ConfigError, CorruptFrameError
from repro.controlplane.controller import Controller
from repro.controlplane.recovery import RecoveryMode
from repro.controlplane.transport import (
    decode_report,
    decode_stream,
    encode_report,
    encode_stream,
    peek_header,
)
from repro.dataplane.host import Host
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar


@pytest.fixture(scope="module")
def report(small_trace):
    host = Host(0, Deltoid(width=128, depth=2, seed=5), fastpath_bytes=8192)
    return host.run_epoch(small_trace)


class TestRoundTrip:
    def test_report_roundtrip(self, report):
        restored = decode_report(encode_report(report))
        assert restored.host_id == report.host_id
        assert np.array_equal(
            restored.sketch.to_matrix(), report.sketch.to_matrix()
        )
        assert restored.fastpath.total_bytes == (
            report.fastpath.total_bytes
        )
        assert restored.fastpath.entries.keys() == (
            report.fastpath.entries.keys()
        )

    def test_restored_report_aggregates_identically(
        self, report, small_trace
    ):
        """Aggregating the wire copy must answer exactly like the
        original — transport is lossless for the control plane."""
        restored = decode_report(encode_report(report))
        threshold = 0.01 * small_trace.total_bytes
        original_network = Controller(
            RecoveryMode.SKETCHVISOR
        ).aggregate([report])
        restored_network = Controller(
            RecoveryMode.SKETCHVISOR
        ).aggregate([restored])
        assert restored_network.sketch.decode(threshold).keys() == (
            original_network.sketch.decode(threshold).keys()
        )

    def test_nonlinear_sketch_roundtrip(self, small_trace):
        host = Host(
            1,
            FlowRadar(bloom_bits=20_000, num_cells=4000, seed=5),
            fastpath_bytes=8192,
        )
        report = host.run_epoch(small_trace)
        restored = decode_report(encode_report(report))
        original, _ = report.sketch.decode()
        recovered, _ = restored.sketch.decode()
        assert original == recovered

    def test_stream_roundtrip(self, report):
        stream = encode_stream([report, report, report])
        reports = decode_stream(stream)
        assert len(reports) == 3


class TestAllSolutionsSerialize:
    """The wire format must round-trip every Table 1 solution."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: Deltoid(width=64, depth=2, seed=4),
            lambda: FlowRadar(bloom_bits=5000, num_cells=1000, seed=4),
        ],
        ids=["deltoid", "flowradar"],
    )
    def test_reversible_sketches(self, build, small_trace):
        host = Host(0, build(), fastpath_bytes=8192)
        report = host.run_epoch(small_trace)
        restored = decode_report(encode_report(report))
        assert np.array_equal(
            restored.sketch.to_matrix(), report.sketch.to_matrix()
        )

    def test_every_registry_solution(self, small_trace):
        from repro.framework.registry import TASK_REGISTRY, create_task

        seen: set[str] = set()
        for task_name, (_cls, solutions) in TASK_REGISTRY.items():
            for solution in solutions:
                if solution in seen:
                    continue
                seen.add(solution)
                kwargs = {}
                if task_name in ("heavy_hitter", "heavy_changer"):
                    kwargs["threshold"] = 1000
                if task_name in ("ddos", "superspreader"):
                    kwargs["threshold"] = 10
                task = create_task(task_name, solution, **kwargs)
                host = Host(
                    0, task.create_sketch(seed=2), fastpath_bytes=8192
                )
                report = host.run_epoch(small_trace)
                restored = decode_report(encode_report(report))
                assert type(restored.sketch) is type(report.sketch)
        assert len(seen) == 9


class TestFrameValidation:
    def test_short_message(self):
        with pytest.raises(ConfigError):
            decode_report(b"SK")

    def test_bad_magic(self, report):
        message = bytearray(encode_report(report))
        message[0:4] = b"XXXX"
        with pytest.raises(ConfigError):
            decode_report(bytes(message))

    def test_bad_version(self, report):
        message = bytearray(encode_report(report))
        message[4] = 99
        with pytest.raises(ConfigError):
            decode_report(bytes(message))

    def test_truncated_payload(self, report):
        message = encode_report(report)
        with pytest.raises(ConfigError):
            decode_report(message[:-10])

    def test_trailing_garbage_in_stream(self, report):
        with pytest.raises(ConfigError):
            decode_stream(encode_report(report) + b"\x01\x02")


class TestFrameV2:
    """The CRC-checked v2 format and v1 backward compatibility."""

    def test_header_carries_host_and_epoch(self, report):
        frame = encode_report(report, epoch=17)
        header = peek_header(frame)
        assert header.version == 2
        assert header.host_id == report.host_id
        assert header.epoch == 17
        assert header.length == len(frame) - header.size

    def test_v1_frames_rejected_by_default(self, report, monkeypatch):
        monkeypatch.delenv("REPRO_ALLOW_V1_FRAMES", raising=False)
        payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
        v1 = struct.pack(">4sBI", b"SKVR", 1, len(payload)) + payload
        with pytest.raises(CorruptFrameError, match="no longer"):
            decode_report(v1)

    def test_v1_escape_hatch_still_decodes(self, report, monkeypatch):
        monkeypatch.setenv("REPRO_ALLOW_V1_FRAMES", "1")
        payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
        v1 = struct.pack(">4sBI", b"SKVR", 1, len(payload)) + payload
        with pytest.deprecated_call():
            restored = decode_report(v1)
        assert restored.host_id == report.host_id
        assert np.array_equal(
            restored.sketch.to_matrix(), report.sketch.to_matrix()
        )

    def test_v1_escape_hatch_zero_means_off(self, report, monkeypatch):
        monkeypatch.setenv("REPRO_ALLOW_V1_FRAMES", "0")
        payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
        v1 = struct.pack(">4sBI", b"SKVR", 1, len(payload)) + payload
        with pytest.raises(CorruptFrameError, match="no longer"):
            decode_report(v1)

    def test_v1_and_v2_mix_in_stream_under_escape_hatch(
        self, report, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ALLOW_V1_FRAMES", "1")
        payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
        v1 = struct.pack(">4sBI", b"SKVR", 1, len(payload)) + payload
        stream = encode_report(report, epoch=3) + v1
        with pytest.deprecated_call():
            assert len(decode_stream(stream)) == 2

    def test_oversized_payload_rejected(self, report):
        frame = encode_report(report)
        with pytest.raises(CorruptFrameError, match="oversized"):
            decode_report(frame + b"\x00\x00\x00")

    def test_truncated_payload_rejected(self, report):
        frame = encode_report(report)
        with pytest.raises(CorruptFrameError, match="truncated"):
            decode_report(frame[:-3])

    def test_host_field_mismatch_rejected(self, report):
        frame = bytearray(encode_report(report, epoch=0))
        # host_id field lives at bytes [5, 9); rewrite it wholesale so
        # the CRC (payload-only) stays valid and only the cross-check
        # against the payload's host can catch it.
        frame[5:9] = struct.pack(">I", report.host_id + 7)
        with pytest.raises(CorruptFrameError, match="host"):
            decode_report(bytes(frame))


class TestCorruptionProperty:
    """Property-style sweeps: random reports survive the round trip;
    every corruption mode is rejected with the right error type."""

    def _frames(self, report):
        return [encode_report(report, epoch=e) for e in (0, 1, 42)]

    def test_random_reports_roundtrip(self, small_trace):
        for seed in range(5):
            host = Host(
                seed,
                Deltoid(width=64, depth=2, seed=seed + 1),
                fastpath_bytes=4096,
            )
            report = host.run_epoch(small_trace)
            restored = decode_report(encode_report(report, epoch=seed))
            assert restored.host_id == report.host_id
            assert np.array_equal(
                restored.sketch.to_matrix(), report.sketch.to_matrix()
            )
            assert (
                restored.fastpath.entries.keys()
                == report.fastpath.entries.keys()
            )

    def test_random_truncations_rejected(self, report):
        frame = encode_report(report, epoch=1)
        rng = random.Random(5)
        for _ in range(30):
            cut = frame[: rng.randrange(1, len(frame))]
            with pytest.raises(CorruptFrameError):
                decode_report(cut)

    def test_payload_bitflips_rejected_by_crc(self, report):
        frame = encode_report(report, epoch=1)
        header_size = peek_header(frame).size
        rng = random.Random(6)
        for _ in range(30):
            corrupted = bytearray(frame)
            position = rng.randrange(header_size, len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            with pytest.raises(CorruptFrameError):
                decode_report(bytes(corrupted))

    def test_header_bitflips_rejected(self, report):
        """Flips in magic/version/host/length/CRC fields are caught at
        decode time.  (Epoch-field flips — bytes [9, 13) — decode fine
        by design and are rejected by the collector's epoch check.)"""
        frame = encode_report(report, epoch=1)
        protected = [b for b in range(13, 21)]  # length + crc
        protected += list(range(0, 9))  # magic, version, host_id
        for position in protected:
            for bit in range(8):
                corrupted = bytearray(frame)
                corrupted[position] ^= 1 << bit
                with pytest.raises(ConfigError):
                    decode_report(bytes(corrupted))

    def test_bad_magic_rejected(self, report):
        frame = bytearray(encode_report(report))
        frame[0:4] = b"NOPE"
        with pytest.raises(CorruptFrameError, match="magic"):
            decode_report(bytes(frame))

    def test_bad_version_rejected(self, report):
        frame = bytearray(encode_report(report))
        frame[4] = 9
        with pytest.raises(CorruptFrameError, match="version"):
            decode_report(bytes(frame))

    def test_garbage_payload_with_valid_crc_rejected(self):
        import zlib

        payload = b"\x99" * 64  # not a pickle
        frame = (
            struct.pack(
                ">4sBIIII", b"SKVR", 2, 0, 0, len(payload),
                zlib.crc32(payload),
            )
            + payload
        )
        with pytest.raises(CorruptFrameError, match="pickle"):
            decode_report(frame)


class TestRestrictedUnpickler:
    def _frame(self, payload: bytes) -> bytes:
        import struct
        import zlib

        return (
            struct.pack(
                ">4sBIIII",
                b"SKVR",
                2,
                0,
                0,
                len(payload),
                zlib.crc32(payload),
            )
            + payload
        )

    def test_rejects_arbitrary_classes(self):
        payload = pickle.dumps(object())  # builtins.object is allowed...
        # ...but the result is not a LocalReport.
        with pytest.raises(ConfigError):
            decode_report(self._frame(payload))

    def test_rejects_os_system_gadget(self):
        class Evil:
            def __reduce__(self):
                import os

                return (os.system, ("true",))

        payload = pickle.dumps(Evil())
        with pytest.raises(ConfigError):
            decode_report(self._frame(payload))

    def test_rejects_eval_gadget(self):
        class Evil:
            def __reduce__(self):
                return (eval, ("1+1",))

        payload = pickle.dumps(Evil())
        with pytest.raises(ConfigError):
            decode_report(self._frame(payload))
