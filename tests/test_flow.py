"""FlowKey / Packet invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.flow import (
    FlowKey,
    Packet,
    destination_key,
    flow_pair_key,
    source_key,
)

flow_keys = st.builds(
    FlowKey,
    src_ip=st.integers(0, 2**32 - 1),
    dst_ip=st.integers(0, 2**32 - 1),
    src_port=st.integers(0, 2**16 - 1),
    dst_port=st.integers(0, 2**16 - 1),
    proto=st.integers(0, 255),
)


class TestFlowKey:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            FlowKey(src_ip=2**32, dst_ip=1, src_port=1, dst_port=1)
        with pytest.raises(ValueError):
            FlowKey(src_ip=1, dst_ip=1, src_port=2**16, dst_port=1)
        with pytest.raises(ValueError):
            FlowKey(src_ip=1, dst_ip=1, src_port=1, dst_port=1, proto=256)
        with pytest.raises(ValueError):
            FlowKey(src_ip=-1, dst_ip=1, src_port=1, dst_port=1)

    @given(flow_keys)
    def test_key104_roundtrip(self, flow):
        assert FlowKey.from_key104(flow.key104) == flow

    @given(flow_keys)
    def test_key104_width(self, flow):
        assert 0 <= flow.key104 < 2**104

    @given(flow_keys)
    def test_key64_stable(self, flow):
        assert flow.key64 == flow.key64

    def test_key64_differs_across_flows(self):
        keys = {
            FlowKey(1, 2, p, 80).key64 for p in range(1024, 3024)
        }
        assert len(keys) == 2000

    @given(flow_keys)
    def test_reversed_is_involution(self, flow):
        assert flow.reversed().reversed() == flow

    def test_reversed_swaps_endpoints(self):
        flow = FlowKey(1, 2, 10, 20, proto=17)
        back = flow.reversed()
        assert (back.src_ip, back.dst_ip) == (2, 1)
        assert (back.src_port, back.dst_port) == (20, 10)
        assert back.proto == 17

    def test_hashable_and_frozen(self):
        flow = FlowKey(1, 2, 3, 4)
        assert flow in {flow}
        with pytest.raises(AttributeError):
            flow.src_ip = 9

    def test_host_projections(self):
        flow = FlowKey(111, 222, 3, 4)
        assert source_key(flow) == 111
        assert destination_key(flow) == 222
        assert flow_pair_key(flow) == flow_pair_key(FlowKey(111, 222, 9, 9))
        assert flow_pair_key(flow) != flow_pair_key(flow.reversed())


class TestPacket:
    def test_positive_size_required(self):
        flow = FlowKey(1, 2, 3, 4)
        with pytest.raises(ValueError):
            Packet(flow, 0)
        with pytest.raises(ValueError):
            Packet(flow, -5)

    def test_defaults(self):
        packet = Packet(FlowKey(1, 2, 3, 4), 100)
        assert packet.timestamp == 0.0
