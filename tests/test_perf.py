"""``repro.perf``: trajectory loading, gating, and the dashboard."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.perf import (
    SERIES_BY_FILE,
    SeriesSpec,
    discover_trajectories,
    load_trajectory,
    perf_dashboard_html,
    perf_text_summary,
    series_points,
    stage_breakdown,
    validate_entry,
    write_perf_dashboard,
)


REPO_ROOT = Path(__file__).resolve().parents[1]


def _dataplane_entry(
    sha="abc1234", smoke=False, ideal=10.0, accuracy=2.0, **extra
):
    entry = {
        "timestamp": "2026-08-06T00:00:00+00:00",
        "git_sha": sha,
        "smoke": smoke,
        "switch": {
            "ideal": {"speedup": ideal},
            "sketchvisor": {"speedup": 2.5},
        },
        "accuracy_overhead": {"overhead_pct": accuracy},
    }
    entry.update(extra)
    return entry


def _write_trajectory(path, runs):
    path.write_text(json.dumps({"runs": runs}))
    return path


# ----------------------------------------------------------------------
# Loading + schema validation
# ----------------------------------------------------------------------
class TestLoading:
    def test_validate_entry_flags_unstamped(self):
        problems, warnings = validate_entry(
            {"timestamp": "t"}, index=2
        )
        assert not problems
        assert any("unstamped" in w for w in warnings)
        # "unknown" (the bench fallback) also counts as unstamped.
        _p, warnings = validate_entry(
            {"timestamp": "t", "git_sha": "unknown"}, 0
        )
        assert any("unstamped" in w for w in warnings)

    def test_validate_entry_rejects_non_object(self):
        problems, _w = validate_entry("not-a-dict", 0)
        assert problems

    def test_validate_entry_clean(self):
        problems, warnings = validate_entry(_dataplane_entry(), 0)
        assert not problems and not warnings

    def test_load_trajectory_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{nope")
        trajectory = load_trajectory(path)
        assert trajectory.problems
        assert trajectory.runs == []

    def test_load_trajectory_missing_runs_list(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"not_runs": []}')
        assert load_trajectory(path).problems

    def test_load_keeps_good_entries_drops_bad(self, tmp_path):
        path = _write_trajectory(
            tmp_path / "BENCH_mixed.json",
            [_dataplane_entry(), "garbage", _dataplane_entry()],
        )
        trajectory = load_trajectory(path)
        assert len(trajectory.runs) == 2
        assert trajectory.problems

    def test_discover_finds_bench_files(self, tmp_path):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json", [_dataplane_entry()]
        )
        _write_trajectory(tmp_path / "BENCH_checkpoint.json", [])
        (tmp_path / "other.json").write_text("{}")
        names = [
            t.name for t in discover_trajectories(tmp_path)
        ]
        assert names == ["BENCH_checkpoint", "BENCH_dataplane"]


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
class TestGating:
    def test_ceiling_gate_flags_overhead(self):
        runs = [
            _dataplane_entry(accuracy=2.0),
            _dataplane_entry(accuracy=7.5),
        ]
        spec = next(
            s
            for s in SERIES_BY_FILE["BENCH_dataplane"]
            if s.key == "accuracy_overhead"
        )
        points = series_points(runs, spec)
        assert points[0].violation is None
        assert points[1].violation is not None
        assert "ceiling" in points[1].violation

    def test_smoke_runs_exempt_from_gates(self):
        runs = [_dataplane_entry(accuracy=50.0, smoke=True)]
        spec = next(
            s
            for s in SERIES_BY_FILE["BENCH_dataplane"]
            if s.key == "accuracy_overhead"
        )
        assert series_points(runs, spec)[0].violation is None

    def test_speedup_floor_gate(self):
        runs = [
            _dataplane_entry(ideal=10.0),
            _dataplane_entry(ideal=11.0),
            _dataplane_entry(ideal=5.0),  # > 15% below best=11
        ]
        spec = next(
            s
            for s in SERIES_BY_FILE["BENCH_dataplane"]
            if s.key == "ideal_speedup"
        )
        points = series_points(runs, spec)
        assert [p.violation is None for p in points] == [
            True,
            True,
            False,
        ]

    def test_profiling_overhead_series_exists(self):
        spec = next(
            s
            for s in SERIES_BY_FILE["BENCH_dataplane"]
            if s.key == "profiling_overhead"
        )
        assert spec.limit == 10.0
        runs = [
            _dataplane_entry(
                profiling={"overhead_pct": 12.0}
            )
        ]
        assert series_points(runs, spec)[0].violation is not None

    def test_checkpoint_overhead_series(self):
        (spec,) = SERIES_BY_FILE["BENCH_checkpoint"]
        runs = [
            {"git_sha": "a", "default_overhead": 0.04},
            {"git_sha": "b", "default_overhead": 0.2},
        ]
        points = series_points(runs, spec)
        assert points[0].violation is None
        assert points[1].violation is not None

    def test_failover_gates(self):
        specs = {
            spec.key: spec
            for spec in SERIES_BY_FILE["BENCH_failover"]
        }
        assert set(specs) == {
            "failover_unaccounted",
            "failover_redelivery_overhead",
            "failover_recovery_p95",
        }
        # Conservation is a hard zero: a single unaccounted
        # host-epoch is a violation.
        assert specs["failover_unaccounted"].limit == 0.0
        runs = [
            {
                "git_sha": "a",
                "summary": {
                    "unaccounted_host_epochs": 0,
                    "redelivery_overhead": 0.09,
                    "recovery_p95_seconds": 2.6,
                },
            },
            {
                "git_sha": "b",
                "summary": {
                    "unaccounted_host_epochs": 1,
                    "redelivery_overhead": 0.7,
                    "recovery_p95_seconds": 30.0,
                },
            },
        ]
        for spec in specs.values():
            points = series_points(runs, spec)
            assert points[0].violation is None, spec.key
            assert points[1].violation is not None, spec.key

    def test_committed_failover_trajectory_is_clean(self):
        trajectory = load_trajectory(REPO_ROOT / "BENCH_failover.json")
        assert not trajectory.problems
        for spec in SERIES_BY_FILE["BENCH_failover"]:
            points = series_points(trajectory.runs, spec)
            assert points, spec.key
            assert all(
                point.violation is None for point in points
            ), spec.key


# ----------------------------------------------------------------------
# Stage breakdown
# ----------------------------------------------------------------------
class TestStageBreakdown:
    def test_latest_and_deltas(self):
        runs = [
            _dataplane_entry(
                profiling={
                    "stages": {
                        "dataplane": {
                            "wall_seconds": 1.0,
                            "cpu_seconds": 1.0,
                            "count": 1,
                        }
                    }
                }
            ),
            _dataplane_entry(
                profiling={
                    "stages": {
                        "dataplane": {
                            "wall_seconds": 1.5,
                            "cpu_seconds": 1.4,
                            "count": 1,
                        }
                    }
                }
            ),
        ]
        latest, deltas = stage_breakdown(runs)
        assert latest["dataplane"]["wall_seconds"] == 1.5
        assert deltas["dataplane"] == pytest.approx(50.0)

    def test_no_profiled_runs(self):
        latest, deltas = stage_breakdown([_dataplane_entry()])
        assert latest == {} and deltas == {}


# ----------------------------------------------------------------------
# Dashboard rendering
# ----------------------------------------------------------------------
class TestDashboard:
    def test_dashboard_html_well_formed(self, tmp_path):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json",
            [_dataplane_entry(), _dataplane_entry(ideal=11.0)],
        )
        trajectories = discover_trajectories(tmp_path)
        html = perf_dashboard_html(trajectories)
        assert html.startswith("<!DOCTYPE html>")
        assert "Metric trajectories" in html
        assert "Ideal batch speedup" in html
        assert "<title>" in html  # sparkline point tooltips

    def test_violations_render_with_icon_and_label(self, tmp_path):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json",
            [_dataplane_entry(accuracy=9.0)],
        )
        html = perf_dashboard_html(discover_trajectories(tmp_path))
        # Status is never colour-alone: the glyph + GATE label appear.
        assert "&#9888; GATE" in html or "⚠" in html
        assert "ceiling" in html

    def test_unstamped_warning_surfaces(self, tmp_path):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json",
            [_dataplane_entry(sha=None)],
        )
        trajectories = discover_trajectories(tmp_path)
        html = perf_dashboard_html(trajectories)
        assert "provenance" in html
        assert "unstamped" in perf_text_summary(trajectories)

    def test_empty_root(self, tmp_path):
        assert (
            "no BENCH_"
            in perf_text_summary(discover_trajectories(tmp_path))
        )

    def test_write_perf_dashboard(self, tmp_path):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json", [_dataplane_entry()]
        )
        destination = write_perf_dashboard(
            tmp_path / "perf.html",
            discover_trajectories(tmp_path),
        )
        assert destination.read_text().startswith("<!DOCTYPE html>")

    def test_committed_trajectories_render(self):
        """The repo's own BENCH_*.json files load and chart."""
        trajectories = discover_trajectories(".")
        assert any(
            t.name == "BENCH_dataplane" for t in trajectories
        )
        html = perf_dashboard_html(trajectories)
        assert "SketchVisor batch speedup" in html


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_repro_perf_prints_and_writes(self, tmp_path, capsys):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json", [_dataplane_entry()]
        )
        out = tmp_path / "perf.html"
        code = cli_main(
            ["perf", "--root", str(tmp_path), "--html", str(out)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "Ideal batch speedup" in captured
        assert out.exists()

    def test_repro_perf_strict_fails_on_violation(
        self, tmp_path, capsys
    ):
        _write_trajectory(
            tmp_path / "BENCH_dataplane.json",
            [_dataplane_entry(accuracy=9.0)],
        )
        code = cli_main(["perf", "--root", str(tmp_path), "--strict"])
        assert code == 1
        assert "STRICT" in capsys.readouterr().out

    def test_repro_run_profile_artifacts(self, tmp_path, capsys):
        flame = tmp_path / "flame.html"
        folded = tmp_path / "stacks.folded"
        code = cli_main(
            [
                "run",
                "--task",
                "heavy_hitter",
                "--solution",
                "univmon",
                "--flows",
                "400",
                "--profile",
                "--profile-hz",
                "200",
                "--flame-out",
                str(flame),
                "--folded-out",
                str(folded),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "stage profile" in captured
        assert "epoch attribution" in captured
        assert flame.read_text().startswith("<!DOCTYPE html>")
        assert folded.exists()
