"""Streaming service mode: scheduler, sources, HTTP plane, CLI."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.framework.pipeline import (
    PipelineConfig,
    SketchVisorPipeline,
    WindowScheduler,
)
from repro.serve import (
    PROMETHEUS_CONTENT_TYPE,
    MeasurementService,
    ReplaySource,
    ServeConfig,
    SyntheticSource,
    serialize_answer,
)
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.io import save_trace
from repro.traffic.trace import Trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(num_flows=400, seed=23))


def _windows_as_packet_tuples(windows):
    return [window.trace.packets for window in windows]


class TestWindowScheduler:
    def test_requires_a_bound(self):
        with pytest.raises(ConfigError):
            WindowScheduler()
        with pytest.raises(ConfigError):
            WindowScheduler(window_packets=0)
        with pytest.raises(ConfigError):
            WindowScheduler(window_seconds=0.0)

    def test_packet_windows_deterministic_under_chunking(self, trace):
        """Any chunking of the same stream closes identical windows."""
        reference = None
        for chunk_size in (1, 7, 64, len(trace)):
            scheduler = WindowScheduler(window_packets=100)
            windows = []
            packets = trace.packets
            for start in range(0, len(packets), chunk_size):
                windows.extend(
                    scheduler.offer(packets[start:start + chunk_size])
                )
            final = scheduler.flush()
            if final is not None:
                windows.append(final)
            shape = _windows_as_packet_tuples(windows)
            assert all(
                len(window.trace) == 100 for window in windows[:-1]
            )
            if reference is None:
                reference = shape
            else:
                assert shape == reference
        assert [w for shape in [reference] for w in shape]

    def test_one_big_chunk_closes_many_windows(self, trace):
        scheduler = WindowScheduler(window_packets=100)
        windows = scheduler.offer(trace)
        assert len(windows) == len(trace) // 100
        assert scheduler.pending_packets == len(trace) % 100
        assert [window.index for window in windows] == list(
            range(len(windows))
        )

    def test_flush_drains_partial_window(self, trace):
        scheduler = WindowScheduler(window_packets=10 ** 9)
        assert scheduler.offer(trace) == []
        final = scheduler.flush()
        assert final is not None
        assert final.trace.packets == trace.packets
        assert scheduler.flush() is None

    def test_wall_clock_deadline_with_fake_clock(self, trace):
        now = [0.0]
        scheduler = WindowScheduler(
            window_seconds=5.0, clock=lambda: now[0]
        )
        assert scheduler.offer(trace.packets[:10]) == []
        assert scheduler.poll() == []
        now[0] = 5.1
        windows = scheduler.poll()
        assert len(windows) == 1
        assert windows[0].trace.packets == trace.packets[:10]
        # The next packets open a fresh window on the new clock.
        assert scheduler.offer(trace.packets[10:20]) == []
        now[0] = 7.0
        assert scheduler.poll() == []
        now[0] = 10.2
        assert len(scheduler.poll()) == 1


class TestSources:
    def test_replay_first_pass_is_bit_identical(self, trace):
        source = ReplaySource(trace, chunk_packets=97)
        replayed = tuple(
            packet for chunk in source for packet in chunk
        )
        assert replayed == trace.packets

    def test_replay_rejects_empty_trace(self):
        with pytest.raises(ConfigError):
            ReplaySource(Trace([]))

    def test_looped_replay_stays_monotonic(self, trace):
        source = ReplaySource(trace, chunk_packets=256, loop=True)
        seen = []
        for chunk in source:
            seen.extend(packet.timestamp for packet in chunk)
            if len(seen) >= 2 * len(trace):
                source.stop_event = threading.Event()
                source.stop_event.set()
        assert all(a <= b for a, b in zip(seen, seen[1:]))
        assert len(seen) >= 2 * len(trace)

    def test_synthetic_segments_are_monotonic_and_bounded(self):
        config = TraceConfig(num_flows=150, seed=5)
        source = SyntheticSource(
            config, chunk_packets=500, max_segments=3
        )
        stamps = [
            packet.timestamp
            for chunk in source
            for packet in chunk
        ]
        single = len(generate_trace(config))
        assert len(stamps) > single  # more than one segment arrived
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))


class TestSerializeAnswer:
    def test_cardinality(self):
        assert serialize_answer("cardinality", 41.5) == {
            "estimate": 41.5
        }

    def test_fsd_sorted_by_size(self):
        body = serialize_answer(
            "flow_size_distribution", {3: 2.0, 1: 5.0}
        )
        assert body == {
            "distribution": [
                {"size": 1, "flows": 5.0},
                {"size": 3, "flows": 2.0},
            ]
        }

    def test_heavy_hitters_largest_first(self, trace):
        truth = GroundTruth.from_trace(trace)
        sizes = dict(
            list(trace.flow_sizes().items())[:4]
        )
        body = serialize_answer("heavy_hitter", sizes)
        estimates = [
            entry["estimate"] for entry in body["heavy_hitters"]
        ]
        assert estimates == sorted(estimates, reverse=True)
        assert truth.cardinality >= 4


def _get(port: int, path: str):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), (
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _service(trace, *, window_packets, max_windows, tasks=None):
    truth = GroundTruth.from_trace(trace)
    tasks = tasks or [
        HeavyHitterTask(
            "deltoid", threshold=0.02 * truth.total_bytes
        ),
        CardinalityTask("lc"),
    ]
    return MeasurementService(
        tasks,
        ReplaySource(trace, chunk_packets=173),
        ServeConfig(
            window_packets=window_packets,
            max_windows=max_windows,
        ),
        pipeline_config=PipelineConfig(num_hosts=2),
    )


class TestMeasurementService:
    def test_not_ready_before_first_window(self, trace):
        service = _service(trace, window_packets=200, max_windows=2)
        port = service.start_http()
        try:
            code, _, body = _get(port, "/readyz")
            assert code == 503
            assert json.loads(body)["status"] == "no_window_yet"
            code, _, body = _get(port, "/query/heavy-hitters")
            assert code == 503
            assert "no recovered window" in json.loads(body)["error"]
            # Liveness is fine — the loop just hasn't advanced yet.
            code, _, _ = _get(port, "/healthz")
            assert code == 200
        finally:
            service.shutdown_http()

    def test_unknown_and_unconfigured_queries_404(self, trace):
        service = _service(trace, window_packets=200, max_windows=1)
        port = service.start_http()
        try:
            assert _get(port, "/query/bogus")[0] == 404
            assert _get(port, "/query/fsd")[0] == 404  # not configured
            assert _get(port, "/nope")[0] == 404
        finally:
            service.shutdown_http()

    def test_live_run_serves_every_surface(self, trace):
        """All endpoints answer 200 with live data during a run, and
        /metrics stays scrape-consistent while windows advance."""
        window_packets = len(trace) // 4
        service = _service(
            trace, window_packets=window_packets, max_windows=4
        )
        port = service.start()
        scrape_results = []
        stop_scraping = threading.Event()

        def scrape_loop():
            while not stop_scraping.is_set():
                code, headers, body = _get(port, "/metrics")
                scrape_results.append((code, headers, body))

        scrapers = [
            threading.Thread(target=scrape_loop) for _ in range(3)
        ]
        for thread in scrapers:
            thread.start()
        try:
            assert service.wait(120)
        finally:
            stop_scraping.set()
            for thread in scrapers:
                thread.join(10)
        assert service.stop() == 0
        assert service.windows_processed == 4

        assert scrape_results
        for code, headers, body in scrape_results:
            assert code == 200
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            # A torn snapshot would truncate mid-family; every scrape
            # must parse as complete TYPE/sample blocks.
            text = body.decode()
            assert not text.strip() or text.rstrip().splitlines()[
                -1
            ].startswith(("sketchvisor_", "repro_"))
        # Server is shut down now; the in-process view must agree.
        assert "sketchvisor_serve_windows_total 4" in (
            service.metrics_text()
        )

    def test_query_provenance_and_ring(self, trace):
        window_packets = len(trace) // 3
        service = _service(
            trace, window_packets=window_packets, max_windows=3
        )
        port = service.start()
        assert service.wait(120)
        try:
            code, _, body = _get(port, "/query/heavy-hitters")
            assert code == 200
            document = json.loads(body)
            assert document["task"] == "heavy_hitter"
            newest = document["window"]
            assert newest["window_id"] == 2
            assert newest["packets"] == window_packets
            assert newest["closed_at"] >= newest["opened_at"]
            assert newest["heavy_hitters"]
            ids = [
                entry["window_id"] for entry in document["recent"]
            ]
            assert ids == [2, 1, 0]
            # Provenance is stable across repeated queries.
            again = json.loads(_get(port, "/query/heavy-hitters")[2])
            assert again["window"] == newest

            code, _, body = _get(port, "/query/cardinality")
            assert code == 200
            assert json.loads(body)["window"]["estimate"] > 0

            code, _, body = _get(port, "/readyz")
            assert code == 200
            assert json.loads(body)["last_window_id"] == 2

            code, _, body = _get(port, "/dash")
            assert code == 200
            assert b"<html" in body.lower()

            code, _, body = _get(port, "/")
            assert code == 200
            assert "/query/heavy-hitters" in json.loads(body)[
                "endpoints"
            ]
        finally:
            service.stop()


class TestBatchEquivalence:
    def test_serve_windows_match_batch_epochs(self, trace):
        """`repro serve --windows 3` over a replayed trace recovers
        per-window heavy-hitter sets bit-identical to the same trace
        run as 3 batch epochs."""
        truth = GroundTruth.from_trace(trace)
        threshold = 0.02 * truth.total_bytes
        window_packets = -(-len(trace) // 3)  # ceil

        service = _service(
            trace,
            window_packets=window_packets,
            max_windows=3,
            tasks=[HeavyHitterTask("deltoid", threshold=threshold)],
        )
        service.start()
        assert service.wait(120)
        assert service.stop() == 0

        batch = SketchVisorPipeline(
            HeavyHitterTask("deltoid", threshold=threshold),
            config=PipelineConfig(num_hosts=2),
        )
        slices = [
            Trace(trace.packets[start:start + window_packets])
            for start in range(0, len(trace), window_packets)
        ]
        assert len(slices) == 3
        batch_answers = [
            serialize_answer(
                "heavy_hitter", batch.run_epoch(piece).answer
            )
            for piece in slices
        ]
        served = [
            record.queries["heavy-hitters"]
            for record in service._ring
        ]
        assert served == batch_answers
        for answer in batch_answers:
            assert answer["heavy_hitters"]


class TestServeCLI:
    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--flows", "200", "--hosts", "1",
                "--port", "0", *extra,
            ],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def _port_from(self, process):
        line = process.stdout.readline()
        assert "serving on http://" in line, line
        return int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1].rstrip(")"))

    def _wait_ready(self, port, deadline=60.0):
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            try:
                if _get(port, "/readyz")[0] == 200:
                    return
            except OSError:
                pass
            time.sleep(0.1)
        raise AssertionError("service never became ready")

    def test_sigterm_drains_and_flushes_recorder(self, tmp_path):
        process = self._spawn(
            tmp_path,
            "--window-packets", "400",
            "--recorder-out", "serve_recorder.json",
        )
        try:
            port = self._port_from(process)
            self._wait_ready(port)
            code, headers, body = _get(port, "/metrics")
            assert code == 200
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, out
        dumps = sorted(tmp_path.glob("serve_recorder-*.json"))
        assert dumps, list(tmp_path.iterdir())
        document = json.loads(dumps[-1].read_text())
        assert document["reason"] == "shutdown"

    def test_bounded_run_exits_zero(self, tmp_path, trace):
        trace_file = tmp_path / "trace.npz"
        save_trace(trace, trace_file)
        process = self._spawn(
            tmp_path,
            "--trace-file", str(trace_file),
            "--windows", "2",
            "--no-aux",
        )
        out, _ = process.communicate(timeout=120)
        assert process.returncode == 0, out
        assert "served 2 window(s)" in out
