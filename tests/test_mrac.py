"""MRAC: counter-array flow size distribution via Poisson inversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.sketches.mrac import MRAC, power_series_log
from tests.conftest import make_flow


class TestPowerSeriesLog:
    def test_inverts_exp(self):
        """log of the power series of exp(c*x) recovers c at degree 1."""
        # exp(lambda*(x-1)) truncated: Poisson pmf over 0..n.
        lam = 0.7
        from math import exp, factorial

        pmf = np.array(
            [exp(-lam) * lam**k / factorial(k) for k in range(20)]
        )
        log_coeffs = power_series_log(pmf)
        assert log_coeffs[0] == pytest.approx(-lam)
        assert log_coeffs[1] == pytest.approx(lam, rel=1e-6)
        assert abs(log_coeffs[2]) < 1e-9

    def test_compound_poisson_mixture(self):
        """Flows of sizes 1 and 3 appear at the right coefficients."""
        from math import exp

        lam1, lam3 = 0.4, 0.2
        # PGF = exp(lam1*(x-1) + lam3*(x^3-1)); build via convolutions.
        degree = 24
        log_target = np.zeros(degree)
        log_target[0] = -(lam1 + lam3)
        log_target[1] = lam1
        log_target[3] = lam3
        # exponentiate the series numerically
        series = np.zeros(degree)
        series[0] = 1.0
        term = np.zeros(degree)
        term[0] = 1.0
        for n in range(1, 40):
            term = np.convolve(term, log_target)[:degree] / n
            series += term
        series[0] *= exp(0)  # already includes the constant
        recovered = power_series_log(series / series.sum())
        assert recovered[1] == pytest.approx(lam1, rel=0.02)
        assert recovered[3] == pytest.approx(lam3, rel=0.02)

    def test_requires_positive_constant(self):
        with pytest.raises(ValueError):
            power_series_log(np.array([0.0, 1.0]))


class TestMRAC:
    def test_counts_packets_not_bytes(self):
        sketch = MRAC(width=1024)
        flow = make_flow(1)
        for _ in range(7):
            sketch.update(flow, 1500)
        assert sketch.counters.sum() == 7

    def test_decode_recovers_distribution(self):
        sketch = MRAC(width=4000, seed=3)
        # 600 flows of size 1, 200 of size 3, 50 of size 8.
        truth = {1: 600, 3: 200, 8: 50}
        index = 0
        for size, count in truth.items():
            for _ in range(count):
                flow = make_flow(index)
                index += 1
                for _ in range(size):
                    sketch.update(flow, 100)
        estimated = sketch.decode()
        for size, count in truth.items():
            assert estimated.get(size, 0.0) == pytest.approx(
                count, rel=0.25
            )

    def test_cardinality_estimate(self, small_trace, small_truth):
        sketch = MRAC(width=4000)
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        assert sketch.cardinality() == pytest.approx(
            small_truth.cardinality, rel=0.15
        )

    def test_saturated_array_falls_back(self):
        sketch = MRAC(width=4)
        for i in range(100):
            sketch.update(make_flow(i), 10)
        estimated = sketch.decode()  # no zero counters: fallback path
        assert sum(estimated.values()) > 0

    def test_inject_converts_bytes(self):
        sketch = MRAC(width=1024)
        sketch.inject(make_flow(1), 7690)  # ~10 packets
        assert sketch.counters.sum() == 10

    def test_merge(self):
        a = MRAC(width=512, seed=2)
        b = MRAC(width=512, seed=2)
        a.update(make_flow(1), 10)
        b.update(make_flow(1), 10)
        a.merge(b)
        assert a.counters.sum() == 2

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            MRAC(width=512).merge(MRAC(width=256))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MRAC(width=0)
        with pytest.raises(ConfigError):
            MRAC(max_size=0)

    def test_cheapest_cost_profile(self):
        profile = MRAC().cost_profile()
        assert profile.hashes == 1
        assert profile.counter_updates == 1
