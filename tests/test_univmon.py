"""UnivMon: level sampling, universal g-sums, multi-statistic queries."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.sketches.univmon import UnivMon
from tests.conftest import make_flow


def _small_univmon(seed=1, heap_size=200):
    return UnivMon(
        level_widths=(1024, 512, 256, 128),
        depth=5,
        heap_size=heap_size,
        seed=seed,
    )


class TestLevels:
    def test_flow_level_deterministic(self):
        sketch = _small_univmon()
        for i in range(100):
            key = make_flow(i).key64
            assert sketch.flow_level(key) == sketch.flow_level(key)

    def test_levels_halve_geometrically(self):
        sketch = _small_univmon()
        counts = [0] * sketch.num_levels
        for i in range(20_000):
            counts[sketch.flow_level(make_flow(i).key64)] += 1
        # ~half the flows stop at level 0, a quarter at level 1, ...
        assert 0.4 < counts[0] / 20_000 < 0.6
        assert 0.15 < counts[1] / 20_000 < 0.35

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            UnivMon(level_widths=())
        with pytest.raises(ConfigError):
            UnivMon(heap_size=0)


class TestQueries:
    def test_heavy_hitters(self, small_trace, small_truth):
        sketch = _small_univmon()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        threshold = 0.01 * small_truth.total_bytes
        found = sketch.heavy_hitters(threshold)
        true_hh = small_truth.heavy_hitters(threshold)
        hits = sum(1 for flow in true_hh if flow in found)
        assert hits / len(true_hh) > 0.9

    def test_cardinality_estimate(self, small_trace, small_truth):
        sketch = _small_univmon()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        estimate = sketch.cardinality()
        assert estimate == pytest.approx(
            small_truth.cardinality, rel=0.35
        )

    def test_entropy_estimate(self, small_trace, small_truth):
        sketch = _small_univmon()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        estimate = sketch.entropy(small_truth.total_bytes)
        assert estimate == pytest.approx(small_truth.entropy, rel=0.25)

    def test_gsum_identity_estimates_volume(self, small_trace):
        sketch = _small_univmon()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        estimate = sketch.g_sum(lambda v: v)
        assert estimate == pytest.approx(
            small_trace.total_bytes, rel=0.3
        )

    def test_moment_family(self, small_trace, small_truth):
        sketch = _small_univmon()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        f0 = sketch.moment(0)
        f1 = sketch.moment(1)
        f2 = sketch.moment(2)
        assert f0 == pytest.approx(small_truth.cardinality, rel=0.35)
        assert f1 == pytest.approx(small_truth.total_bytes, rel=0.3)
        true_f2 = sum(v * v for v in small_truth.flow_bytes.values())
        assert f2 == pytest.approx(true_f2, rel=0.5)

    def test_moment_validation(self):
        with pytest.raises(ConfigError):
            _small_univmon().moment(-1)

    def test_empty_sketch_zero_answers(self):
        sketch = _small_univmon()
        assert sketch.cardinality() == 0.0
        assert sketch.entropy(0) == 0.0
        assert sketch.heavy_hitters(100) == {}


class TestAlgebra:
    def test_merge_counters_add(self):
        a = _small_univmon(seed=9)
        b = _small_univmon(seed=9)
        whole = _small_univmon(seed=9)
        for i in range(400):
            flow = make_flow(i)
            whole.update(flow, 100 + i)
            (a if i % 2 else b).update(flow, 100 + i)
        a.merge(b)
        for mine, theirs in zip(a.sketches, whole.sketches):
            assert np.array_equal(mine.counters, theirs.counters)

    def test_merge_preserves_heavy_hitters(self, small_trace, small_truth):
        shards = small_trace.partition(2)
        parts = [_small_univmon(seed=4) for _ in shards]
        for part, shard in zip(parts, shards):
            for packet in shard:
                part.update(packet.flow, packet.size)
        parts[0].merge(parts[1])
        threshold = 0.01 * small_truth.total_bytes
        found = parts[0].heavy_hitters(threshold)
        true_hh = small_truth.heavy_hitters(threshold)
        hits = sum(1 for flow in true_hh if flow in found)
        assert hits / len(true_hh) > 0.85

    def test_merge_keeps_tracker_union(self):
        """The control plane has no per-host memory limit: merging
        must not prune the union of trackers (Figure 12's mechanism)."""
        a = _small_univmon(seed=3, heap_size=4)
        b = _small_univmon(seed=3, heap_size=4)
        for i in range(8):
            a.update(make_flow(i), 100_000)
        for i in range(8, 16):
            b.update(make_flow(i), 100_000)
        a.merge(b)
        found = a.heavy_hitters(threshold=50_000)
        assert len(found) >= 10

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            _small_univmon().merge(UnivMon(level_widths=(64, 32)))

    def test_matrix_roundtrip(self):
        sketch = _small_univmon()
        for i in range(100):
            sketch.update(make_flow(i), 100)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert np.array_equal(clone.to_matrix(), sketch.to_matrix())

    def test_positions_match_update(self):
        sketch = _small_univmon()
        flow = make_flow(5)
        sketch.update(flow, 64)
        replayed = np.zeros_like(sketch.to_matrix())
        for row, col, coef in sketch.matrix_positions(flow):
            replayed[row, col] += 64 * coef
        assert np.array_equal(replayed, sketch.to_matrix())

    def test_tracker_prune_keeps_heavies(self):
        sketch = _small_univmon(heap_size=10)
        heavy = make_flow(0)
        for i in range(1, 300):
            sketch.update(make_flow(i), 50)
        sketch.update(heavy, 100_000)
        for i in range(300, 600):
            sketch.update(make_flow(i), 50)
        found = sketch.heavy_hitters(threshold=50_000)
        assert heavy in found

    def test_reset(self):
        sketch = _small_univmon()
        sketch.update(make_flow(1), 500)
        sketch.reset()
        assert sketch.to_matrix().sum() == 0
        assert all(not t for t in sketch.trackers)
