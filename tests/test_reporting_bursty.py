"""Reporting helpers and bursty traffic generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reporting import ascii_bar_chart, comparison_table, sparkline
from repro.traffic.generator import TraceConfig, generate_trace


class TestAsciiBarChart:
    def test_bars_proportional(self):
        chart = ascii_bar_chart({"a": 4.0, "b": 2.0}, width=8)
        lines = chart.splitlines()
        assert lines[0].count("█") == 8
        assert lines[1].count("█") == 4

    def test_labels_aligned(self):
        chart = ascii_bar_chart({"long-name": 1.0, "x": 1.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_unit_suffix(self):
        chart = ascii_bar_chart({"a": 5.0}, width=2, unit=" Gbps")
        assert chart.endswith("5 Gbps")


class TestComparisonTable:
    def test_alignment_and_formats(self):
        table = comparison_table(
            {
                "deltoid": {"recall": 0.97, "tput": 9.6},
                "mrac": {"recall": 1.0, "tput": 41.3},
            },
            formats={"recall": ".0%"},
        )
        lines = table.splitlines()
        assert "recall" in lines[0] and "tput" in lines[0]
        assert "97%" in table and "41.3" in table

    def test_missing_cells_dashed(self):
        table = comparison_table(
            {"a": {"x": 1.0}, "b": {}}, columns=["x"]
        )
        assert "-" in table.splitlines()[-1]

    def test_empty(self):
        assert comparison_table({}) == "(no data)"


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBurstyTraffic:
    def test_zero_burstiness_is_smooth(self):
        config = TraceConfig(num_flows=500, seed=3, burstiness=0.0)
        trace = generate_trace(config)
        # Roughly uniform: each decile gets ~10% of packets.
        times = np.array([p.timestamp for p in trace])
        histogram, _ = np.histogram(times, bins=10, range=(0, 1))
        assert histogram.max() < 0.2 * len(trace)

    def test_bursts_concentrate_packets(self):
        config = TraceConfig(
            num_flows=500, seed=3, burstiness=0.7, burst_width=0.02
        )
        trace = generate_trace(config)
        times = np.array([p.timestamp for p in trace])
        histogram, _ = np.histogram(times, bins=50, range=(0, 1))
        # The busiest 2%-window holds far more than its uniform share.
        assert histogram.max() > 3 * len(trace) / 50

    def test_burstiness_validation(self):
        with pytest.raises(ValueError):
            generate_trace(
                TraceConfig(num_flows=10, burstiness=1.5)
            )

    def test_flow_population_unchanged(self):
        smooth = generate_trace(TraceConfig(num_flows=300, seed=4))
        bursty = generate_trace(
            TraceConfig(num_flows=300, seed=4, burstiness=0.5)
        )
        assert len(smooth.flows()) == len(bursty.flows()) == 300

    def test_bursts_overflow_the_buffer(self):
        """The §1 story: bursts at a *fixed average load* divert
        traffic to the fast path that smooth arrivals would not."""
        from repro.dataplane.switch import SoftwareSwitch
        from repro.fastpath.topk import FastPath
        from repro.sketches.flowradar import FlowRadar

        def run(burstiness):
            trace = generate_trace(
                TraceConfig(
                    num_flows=2000, seed=9, burstiness=burstiness
                )
            )
            switch = SoftwareSwitch(
                FlowRadar(bloom_bits=60_000, num_cells=24_000),
                fastpath=FastPath(8192),
                buffer_packets=256,
            )
            # Offered at ~the sketch's capacity: smooth fits, bursts don't.
            return switch.process(trace, offered_gbps=5.0)

        smooth = run(0.0)
        bursty = run(0.8)
        assert (
            bursty.fastpath_packet_fraction
            > smooth.fastpath_packet_fraction
        )
