"""FaultPlan / FaultInjector: seeded, deterministic chaos schedules."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.faults import (
    RETRIABLE_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    faults_from_env,
    moderate_plan,
)


class TestFaultPlan:
    def test_schedule_is_deterministic(self):
        plan = FaultPlan(seed=9, rates={FaultKind.DROP: 0.5})
        first = [
            plan.schedule_for(epoch, host)
            for epoch in range(10)
            for host in range(4)
        ]
        second = [
            plan.schedule_for(epoch, host)
            for epoch in range(10)
            for host in range(4)
        ]
        assert first == second

    def test_schedule_independent_of_call_order(self):
        plan = FaultPlan(
            seed=3,
            rates={FaultKind.DROP: 0.4, FaultKind.BITFLIP: 0.4},
        )
        forward = {
            (e, h): plan.schedule_for(e, h)
            for e in range(6)
            for h in range(3)
        }
        backward = {
            (e, h): plan.schedule_for(e, h)
            for e in reversed(range(6))
            for h in reversed(range(3))
        }
        assert forward == backward

    def test_different_seeds_differ(self):
        rates = {FaultKind.DROP: 0.5}
        a = FaultPlan(seed=1, rates=rates)
        b = FaultPlan(seed=2, rates=rates)
        cells = [(e, h) for e in range(20) for h in range(4)]
        assert [a.schedule_for(*c) for c in cells] != [
            b.schedule_for(*c) for c in cells
        ]

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, rates={FaultKind.DELAY: 1.0})
        for epoch in range(5):
            assert plan.schedule_for(epoch, 0) == [FaultKind.DELAY]

    def test_crash_preempts_everything_else(self):
        plan = FaultPlan(
            seed=0,
            rates={FaultKind.DROP: 1.0, FaultKind.CRASH: 1.0},
        )
        assert plan.schedule_for(0, 0) == [FaultKind.CRASH]

    def test_pinned_specs(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(FaultKind.CRASH, epoch=2, host=1),
                FaultSpec(FaultKind.DROP, host=3),  # every epoch
            ],
        )
        assert plan.schedule_for(2, 1) == [FaultKind.CRASH]
        assert plan.schedule_for(0, 1) == []
        assert plan.schedule_for(0, 3) == [FaultKind.DROP]
        assert plan.schedule_for(7, 3) == [FaultKind.DROP]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(rates={FaultKind.DROP: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(rates={FaultKind.DROP: -0.1})

    def test_string_kinds_normalized(self):
        plan = FaultPlan(rates={"drop": 0.5})
        assert plan.rates == {FaultKind.DROP: 0.5}

    def test_active_flag(self):
        assert not FaultPlan().active
        assert not FaultPlan(rates={FaultKind.DROP: 0.0}).active
        assert FaultPlan(rates={FaultKind.DROP: 0.1}).active
        assert FaultPlan(specs=[FaultSpec(FaultKind.DROP)]).active


class TestJsonRoundTrip:
    def test_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=11,
            rates={FaultKind.DROP: 0.1, FaultKind.REPLAY: 0.05},
            specs=[FaultSpec(FaultKind.CRASH, epoch=4, host=2)],
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = FaultPlan.load(str(path))
        assert loaded.seed == plan.seed
        assert loaded.rates == plan.rates
        assert loaded.specs == plan.specs
        cells = [(e, h) for e in range(10) for h in range(4)]
        assert [loaded.schedule_for(*c) for c in cells] == [
            plan.schedule_for(*c) for c in cells
        ]

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_json("not json {")
        with pytest.raises(ConfigError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ConfigError):
            FaultPlan.from_json('{"rates": {"no_such_kind": 0.5}}')


class TestInjector:
    def test_truncate_deterministic_and_shorter(self):
        injector = FaultInjector(FaultPlan(seed=4))
        frame = bytes(range(200))
        cut = injector.truncate(frame, epoch=1, host=2)
        assert cut == injector.truncate(frame, epoch=1, host=2)
        assert 0 < len(cut) < len(frame)
        assert frame.startswith(cut)

    def test_bitflip_deterministic_single_bit(self):
        injector = FaultInjector(FaultPlan(seed=4))
        frame = bytes(200)
        flipped = injector.bitflip(frame, epoch=0, host=0)
        assert flipped == injector.bitflip(frame, epoch=0, host=0)
        assert len(flipped) == len(frame)
        diff = [
            a ^ b for a, b in zip(frame, flipped) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_replay_fuel(self):
        injector = FaultInjector(FaultPlan())
        assert injector.stale_frame(0) is None
        injector.remember(0, b"frame-epoch-0")
        assert injector.stale_frame(0) == b"frame-epoch-0"


class TestModeratePlanAndEnv:
    def test_moderate_plan_is_recoverable_only(self):
        plan = moderate_plan()
        assert plan.active
        assert FaultKind.CRASH not in plan.rates
        for kind in plan.rates:
            assert kind in RETRIABLE_KINDS or kind is FaultKind.DUPLICATE

    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert faults_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "0")
        assert faults_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "1")
        plan = faults_from_env()
        assert plan is not None and plan.active
        monkeypatch.setenv("REPRO_CHAOS", "99")
        assert faults_from_env().seed == 99
