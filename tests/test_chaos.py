"""End-to-end chaos: soak runs, determinism, inertness, crash fallback."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.controlplane.recovery import RecoveryMode
from repro.dataplane.host import Host
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.framework.modes import DataPlaneMode
from repro.framework.monitor import AlertKind, ContinuousMonitor
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry import Telemetry
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth

NUM_HOSTS = 4
SOAK_EPOCHS = 20

#: The acceptance-criteria mix: drop / delay / corruption / crash at a
#: combined ~10% per-host rate.  Seed 7 is verified below to keep every
#: epoch at or above quorum (2 of 4 hosts).
SOAK_PLAN = dict(
    seed=7,
    rates={
        FaultKind.DROP: 0.04,
        FaultKind.DELAY: 0.02,
        FaultKind.TRUNCATE: 0.01,
        FaultKind.BITFLIP: 0.01,
        FaultKind.CRASH: 0.02,
    },
)


@pytest.fixture(scope="module")
def soak_trace():
    return generate_trace(TraceConfig(num_flows=600, seed=31))


@pytest.fixture(scope="module")
def soak_truth(soak_trace):
    return GroundTruth.from_trace(soak_trace)


def make_pipeline(faults, **overrides):
    trace_bytes = overrides.pop("trace_bytes")
    task = HeavyHitterTask("deltoid", threshold=0.01 * trace_bytes)
    config = PipelineConfig(
        num_hosts=NUM_HOSTS, seed=3, faults=faults, **overrides
    )
    return SketchVisorPipeline(
        task,
        DataPlaneMode.SKETCHVISOR,
        RecoveryMode.SKETCHVISOR,
        config=config,
    )


def run_soak(soak_trace, soak_truth):
    pipeline = make_pipeline(
        FaultPlan(**SOAK_PLAN), trace_bytes=soak_truth.total_bytes
    )
    outcomes = []
    for _ in range(SOAK_EPOCHS):
        result = pipeline.run_epoch(soak_trace, truth=soak_truth)
        degraded = result.degraded
        outcomes.append(
            (
                tuple(result.collection.missing_hosts),
                result.collection.stats.faults_seen,
                result.collection.stats.retries,
                None if degraded is None else degraded.missing_hosts,
                round(result.score.recall, 9),
                round(result.score.precision, 9),
            )
        )
    return outcomes, pipeline


class TestChaosSoak:
    def test_soak_completes_every_epoch(self, soak_trace, soak_truth):
        """20 epochs, 4 hosts, ~10% per-host fault pressure including
        crashes: no unhandled exception, every lossy epoch annotated."""
        outcomes, pipeline = run_soak(soak_trace, soak_truth)
        assert len(outcomes) == SOAK_EPOCHS
        # The plan actually bites: faults were injected somewhere...
        assert sum(o[1] for o in outcomes) > 0
        assert pipeline._injector.injected  # counters registered
        # ...and at least one epoch lost a host (seed chosen so the
        # soak exercises degraded mode, not just clean retries).
        lossy = [o for o in outcomes if o[0]]
        assert lossy
        for missing, _, _, degraded_hosts, _, _ in outcomes:
            if missing:
                assert degraded_hosts == missing
            else:
                assert degraded_hosts is None

    def test_identical_seeds_identical_results(
        self, soak_trace, soak_truth
    ):
        first, _ = run_soak(soak_trace, soak_truth)
        second, _ = run_soak(soak_trace, soak_truth)
        assert first == second

    def test_different_seed_differs(self, soak_trace, soak_truth):
        pipeline = make_pipeline(
            FaultPlan(seed=8, rates=dict(SOAK_PLAN["rates"])),
            trace_bytes=soak_truth.total_bytes,
        )
        schedule = [
            tuple(
                pipeline.run_epoch(
                    soak_trace, truth=soak_truth
                ).collection.missing_hosts
            )
            for _ in range(SOAK_EPOCHS)
        ]
        baseline, _ = run_soak(soak_trace, soak_truth)
        assert schedule != [o[0] for o in baseline]


class TestInertness:
    """No FaultPlan → the chaos subsystem must not exist at all."""

    def test_zero_fault_run_is_bit_identical(
        self, monkeypatch, soak_trace, soak_truth
    ):
        # The env gate would inject a plan into the faults=None config
        # under REPRO_CHAOS=1 CI runs; this test is explicitly about
        # the un-gated default, so clear it.
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        direct = make_pipeline(
            None, trace_bytes=soak_truth.total_bytes
        )
        wired = make_pipeline(
            FaultPlan(), trace_bytes=soak_truth.total_bytes
        )
        a = direct.run_epoch(soak_trace, truth=soak_truth)
        b = wired.run_epoch(soak_trace, truth=soak_truth)
        # Direct path: no collector, no collection bookkeeping.
        assert direct._collector is None
        assert a.collection is None
        assert a.degraded is None
        # Inactive-plan path went through the wire codec yet produced
        # the exact same merged state and answer.
        assert b.collection is not None and b.collection.complete
        assert np.array_equal(
            a.network.sketch.to_matrix(), b.network.sketch.to_matrix()
        )
        assert a.answer == b.answer
        assert a.score == b.score

    def test_chaos_flag_in_describe(self, soak_truth):
        on = make_pipeline(
            FaultPlan(), trace_bytes=soak_truth.total_bytes
        )
        assert "chaos=on" in on.describe()


class TestDegradedTelemetryAndAlerts:
    def test_monitor_raises_degraded_alert(self, soak_trace, soak_truth):
        plan = FaultPlan(
            specs=[FaultSpec(FaultKind.CRASH, epoch=0, host=2)]
        )
        monitor = ContinuousMonitor(
            [
                HeavyHitterTask(
                    "deltoid", threshold=0.01 * soak_truth.total_bytes
                )
            ],
            config=PipelineConfig(
                num_hosts=NUM_HOSTS, seed=3, faults=plan
            ),
        )
        summary = monitor.process_epoch(soak_trace)
        degraded = [
            alert
            for alert in summary.alerts
            if alert.kind is AlertKind.DEGRADED_EPOCH
        ]
        assert len(degraded) == 1
        assert degraded[0].subject == (2,)
        assert degraded[0].magnitude == pytest.approx(1 / 3)
        # The next epoch is clean: no standing alert.
        assert not [
            alert
            for alert in monitor.process_epoch(soak_trace).alerts
            if alert.kind is AlertKind.DEGRADED_EPOCH
        ]

    def test_collection_counters_published(self, soak_trace, soak_truth):
        telemetry = Telemetry()
        pipeline = make_pipeline(
            FaultPlan(
                specs=[FaultSpec(FaultKind.DROP, epoch=0, host=1)]
            ),
            trace_bytes=soak_truth.total_bytes,
            telemetry=telemetry,
        )
        pipeline.run_epoch(soak_trace, truth=soak_truth)
        registry = telemetry.registry
        assert registry.value(
            "sketchvisor_transport_faults_total", kind="drop"
        ) == 1
        assert registry.total(
            "sketchvisor_transport_retries_total"
        ) == 1
        assert registry.total(
            "sketchvisor_transport_backoff_seconds_total"
        ) > 0
        assert registry.value(
            "sketchvisor_controller_epochs_total", quality="full"
        ) == 1


class CrashingHost(Host):
    """A host whose epoch run kills the worker process it lands in.

    Only processes other than ``parent_pid`` die, so the pool path
    breaks (``BrokenProcessPool``) while the serial retry in the
    parent completes normally.
    """

    def __init__(self, *args, parent_pid: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.parent_pid = parent_pid

    def run_epoch(self, *args, **kwargs):
        if os.getpid() != self.parent_pid:
            os._exit(1)
        return super().run_epoch(*args, **kwargs)


class TestWorkerCrashFallback:
    def test_broken_pool_falls_back_to_serial(
        self, monkeypatch, soak_trace, soak_truth
    ):
        telemetry = Telemetry()
        pipeline = make_pipeline(
            None,
            trace_bytes=soak_truth.total_bytes,
            workers=2,
            telemetry=telemetry,
        )
        parent_pid = os.getpid()

        def crashing_hosts():
            return [
                CrashingHost(
                    host_id=host_id,
                    sketch=pipeline.task.create_sketch(seed=3),
                    fastpath_bytes=8192,
                    parent_pid=parent_pid,
                )
                for host_id in range(NUM_HOSTS)
            ]

        monkeypatch.setattr(
            pipeline, "_build_hosts", crashing_hosts
        )
        result = pipeline.run_epoch(soak_trace, truth=soak_truth)
        assert len(result.reports) == NUM_HOSTS
        assert [r.host_id for r in result.reports] == list(
            range(NUM_HOSTS)
        )
        assert (
            telemetry.registry.total(
                "sketchvisor_pipeline_worker_crashes_total"
            )
            >= 1
        )

    def test_serial_fallback_matches_serial_run(
        self, monkeypatch, soak_trace, soak_truth
    ):
        """Reports recovered through the fallback are the same reports
        a workers=1 run produces."""
        serial = make_pipeline(
            None, trace_bytes=soak_truth.total_bytes, workers=1
        )
        expected = serial.run_epoch(soak_trace, truth=soak_truth)

        pipeline = make_pipeline(
            None, trace_bytes=soak_truth.total_bytes, workers=2
        )
        parent_pid = os.getpid()
        monkeypatch.setattr(
            pipeline,
            "_build_hosts",
            lambda: [
                CrashingHost(
                    host_id=host_id,
                    sketch=pipeline.task.create_sketch(seed=3),
                    fastpath_bytes=8192,
                    parent_pid=parent_pid,
                )
                for host_id in range(NUM_HOSTS)
            ],
        )
        recovered = pipeline.run_epoch(soak_trace, truth=soak_truth)
        assert np.array_equal(
            recovered.network.sketch.to_matrix(),
            expected.network.sketch.to_matrix(),
        )
        assert recovered.score == expected.score
