"""Count-Min sketch: the one-sided error guarantee and merge algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, MergeError
from repro.sketches.countmin import CountMinSketch
from tests.conftest import make_flow

flow_streams = st.lists(
    st.tuples(st.integers(0, 30), st.integers(1, 1500)),
    min_size=1,
    max_size=200,
)


class TestCountMin:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CountMinSketch(width=0)
        with pytest.raises(ConfigError):
            CountMinSketch(depth=0)

    @given(flow_streams)
    @settings(max_examples=50, deadline=None)
    def test_never_underestimates(self, stream):
        sketch = CountMinSketch(width=64, depth=3)
        truth: dict[int, int] = {}
        for index, size in stream:
            flow = make_flow(index)
            sketch.update(flow, size)
            truth[index] = truth.get(index, 0) + size
        for index, total in truth.items():
            assert sketch.estimate(make_flow(index)) >= total

    def test_exact_without_collisions(self):
        sketch = CountMinSketch(width=4096, depth=4)
        flow = make_flow(1)
        sketch.update(flow, 500)
        sketch.update(flow, 250)
        assert sketch.estimate(flow) == 750

    def test_unknown_flow_small_estimate(self):
        sketch = CountMinSketch(width=4096, depth=4)
        for i in range(50):
            sketch.update(make_flow(i), 100)
        assert sketch.estimate(make_flow(9999)) <= 200

    def test_merge_equals_union_stream(self, small_trace):
        whole = CountMinSketch(width=512, depth=3, seed=5)
        part_a = CountMinSketch(width=512, depth=3, seed=5)
        part_b = CountMinSketch(width=512, depth=3, seed=5)
        for index, packet in enumerate(small_trace):
            whole.update(packet.flow, packet.size)
            (part_a if index % 2 else part_b).update(
                packet.flow, packet.size
            )
        part_a.merge(part_b)
        assert np.array_equal(part_a.counters, whole.counters)

    def test_merge_rejects_mismatched(self):
        with pytest.raises(MergeError):
            CountMinSketch(seed=1).merge(CountMinSketch(seed=2))
        with pytest.raises(MergeError):
            CountMinSketch(width=100).merge(CountMinSketch(width=200))

    def test_matrix_roundtrip(self):
        sketch = CountMinSketch(width=64, depth=3)
        for i in range(30):
            sketch.update(make_flow(i), 10 * (i + 1))
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert np.array_equal(clone.counters, sketch.counters)

    def test_load_matrix_validates_shape(self):
        sketch = CountMinSketch(width=64, depth=3)
        with pytest.raises(ConfigError):
            sketch.load_matrix(np.zeros((2, 64)))

    def test_positions_match_update(self):
        sketch = CountMinSketch(width=128, depth=4)
        flow = make_flow(7)
        positions = sketch.matrix_positions(flow)
        assert len(positions) == 4
        sketch.update(flow, 111)
        matrix = sketch.to_matrix()
        replayed = np.zeros_like(matrix)
        for row, col, coef in positions:
            replayed[row, col] += 111 * coef
        assert np.array_equal(matrix, replayed)

    def test_reset(self):
        sketch = CountMinSketch(width=64, depth=2)
        sketch.update(make_flow(1), 10)
        sketch.reset()
        assert sketch.counters.sum() == 0

    def test_memory_bytes(self):
        assert CountMinSketch(width=100, depth=4).memory_bytes() == 3200

    def test_cost_profile(self):
        profile = CountMinSketch(width=100, depth=4).cost_profile()
        assert profile.hashes == 4
        assert profile.counter_updates == 4

    def test_estimate_key64_agrees(self):
        sketch = CountMinSketch(width=128, depth=3)
        flow = make_flow(3)
        sketch.update(flow, 42)
        assert sketch.estimate_key64(flow.key64) == sketch.estimate(flow)
