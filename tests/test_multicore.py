"""Multi-core host (§7.2 extension): parallel paths, merged results."""

from __future__ import annotations

import pytest

from repro.controlplane.recovery import RecoveryMode, recover
from repro.dataplane.host import Host, MultiCoreHost
from repro.metrics import recall
from repro.sketches.deltoid import Deltoid
from repro.sketches.mrac import MRAC


def _deltoid_factory():
    counter = {"seed": 9}

    def factory():
        return Deltoid(width=512, depth=4, seed=counter["seed"])

    return factory


class TestMultiCoreHost:
    def test_throughput_scales(self, medium_trace):
        single = Host(0, Deltoid(width=512, depth=4, seed=9))
        single_report = single.run_epoch(medium_trace)
        dual = MultiCoreHost(
            0, _deltoid_factory(), num_cores=2
        )
        dual_report = dual.run_epoch(medium_trace)
        assert (
            dual_report.switch.throughput_gbps
            > 1.5 * single_report.switch.throughput_gbps
        )

    def test_two_cores_forty_gbps_for_cheap_sketch(self, medium_trace):
        """§7.2: 'two CPU cores are sufficient to achieve above
        40 Gbps' — trivially true for MRAC, the paper's lower bound."""
        dual = MultiCoreHost(
            0, lambda: MRAC(width=2000, seed=3), num_cores=2
        )
        report = dual.run_epoch(medium_trace)
        assert report.switch.throughput_gbps > 40.0

    def test_results_merge_losslessly(self, medium_trace):
        dual = MultiCoreHost(0, _deltoid_factory(), num_cores=4)
        report = dual.run_epoch(medium_trace)
        assert report.switch.total_packets == len(medium_trace)
        assert report.switch.total_bytes == medium_trace.total_bytes
        # Merged sketch + snapshot still recover heavy hitters.
        state = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        truth = medium_trace.flow_sizes()
        threshold = 0.005 * medium_trace.total_bytes
        true_hh = {
            flow: size for flow, size in truth.items() if size > threshold
        }
        found = state.sketch.decode(threshold)
        assert recall(found, true_hh) > 0.9

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            MultiCoreHost(0, _deltoid_factory(), num_cores=0)

    def test_reset(self, small_trace):
        dual = MultiCoreHost(0, _deltoid_factory(), num_cores=2)
        dual.run_epoch(small_trace)
        dual.reset()
        report = dual.run_epoch(small_trace)
        assert report.switch.total_bytes == small_trace.total_bytes