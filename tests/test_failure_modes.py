"""Failure injection: degraded inputs, overload, and edge regimes.

A robust measurement system must degrade gracefully, not crash: empty
epochs, single-flow floods, tables too small to matter, sketches past
their design capacity, hosts that report nothing, adversarial key
patterns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.flow import FlowKey, Packet
from repro.controlplane.controller import Controller
from repro.controlplane.recovery import RecoveryMode, recover
from repro.dataplane.host import Host
from repro.fastpath.topk import ENTRY_BYTES, FastPath
from repro.framework.pipeline import SketchVisorPipeline
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace
from tests.conftest import make_flow


class TestEmptyAndDegenerate:
    def test_empty_epoch(self):
        task = HeavyHitterTask("flowradar", threshold=1000)
        pipeline = SketchVisorPipeline(task)
        result = pipeline.run_epoch(Trace([]))
        assert result.answer == {}
        assert result.score.recall == 1.0

    def test_single_packet_epoch(self):
        trace = Trace([Packet(make_flow(1), 1500, 0.0)])
        task = HeavyHitterTask("deltoid", threshold=1000)
        result = SketchVisorPipeline(task).run_epoch(trace)
        assert make_flow(1) in result.answer

    def test_single_flow_flood(self):
        """One elephant, nothing else: every component must cope."""
        flow = make_flow(7)
        trace = Trace(
            [Packet(flow, 1500, i * 1e-5) for i in range(5000)]
        )
        task = HeavyHitterTask("deltoid", threshold=100_000)
        result = SketchVisorPipeline(task).run_epoch(trace)
        assert result.answer.keys() == {flow}
        assert result.answer[flow] == pytest.approx(
            7_500_000, rel=0.01
        )

    def test_all_flows_identical_size(self):
        """No skew at all — the PLC fit degenerates, bounds must hold."""
        packets = [
            Packet(make_flow(i), 100, i * 1e-4)
            for i in range(2000)
        ]
        trace = Trace(packets)
        fastpath = FastPath(8192)
        for packet in trace:
            fastpath.update(packet.flow, packet.size)
        for flow, entry in fastpath.table.items():
            assert entry.lower_bound <= 100 <= entry.upper_bound


class TestOverloadRegimes:
    def test_fastpath_of_one_entry(self, small_trace):
        """Pathologically tiny fast path: still no crash, V exact."""
        fastpath = FastPath(memory_bytes=ENTRY_BYTES)
        for packet in small_trace:
            fastpath.update(packet.flow, packet.size)
        assert fastpath.total_bytes == small_trace.total_bytes
        assert len(fastpath.table) <= 1

    def test_flowradar_over_capacity_recovery_does_not_crash(self):
        """Sketch past design capacity: partial decode, no exception."""
        trace = Trace(
            [
                Packet(make_flow(i), 100, i * 1e-5)
                for i in range(4000)
            ]
        )
        host = Host(
            0,
            FlowRadar(bloom_bits=8000, num_cells=800, seed=2),
            fastpath_bytes=4096,
        )
        report = host.run_epoch(trace)
        state = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        decoded, complete = state.sketch.decode()
        assert not complete  # genuinely over capacity
        assert isinstance(decoded, dict)

    def test_buffer_of_one_packet(self, small_trace):
        task = HeavyHitterTask("deltoid", threshold=10_000)
        from repro.framework.pipeline import PipelineConfig

        pipeline = SketchVisorPipeline(
            task, config=PipelineConfig(buffer_packets=1)
        )
        result = pipeline.run_epoch(small_trace)
        assert result.fastpath_byte_fraction > 0.8
        assert result.score.recall >= 0.9  # recovery still carries it


class TestPartialReports:
    def test_hosts_without_fastpath_state(self, small_trace):
        """A mixed fleet: some hosts ran NoFastPath; merging and
        recovery must treat their missing snapshots as empty."""
        shards = small_trace.partition(2)
        with_fp = Host(
            0, Deltoid(width=256, depth=4, seed=3), fastpath_bytes=8192
        )
        without_fp = Host(
            1, Deltoid(width=256, depth=4, seed=3), fastpath_bytes=None
        )
        reports = [
            with_fp.run_epoch(shards[0]),
            without_fp.run_epoch(shards[1]),
        ]
        assert reports[1].fastpath is None
        network = Controller(RecoveryMode.SKETCHVISOR).aggregate(reports)
        assert network.sketch is not None

    def test_recovery_with_zero_volume_snapshot(self):
        """Fast path armed but never hit: recovery is a pass-through."""
        sketch = Deltoid(width=128, depth=2, seed=3)
        sketch.update(make_flow(1), 1000)
        fastpath = FastPath(8192)
        state = recover(
            sketch, fastpath.snapshot(), RecoveryMode.SKETCHVISOR
        )
        assert np.array_equal(
            state.sketch.to_matrix(), sketch.to_matrix()
        )


class TestAdversarialKeys:
    def test_sequential_ips_do_not_skew_sketches(self):
        """Sequential addresses (scanning) must spread across buckets."""
        from repro.sketches.countmin import CountMinSketch

        sketch = CountMinSketch(width=256, depth=2)
        for i in range(10_000):
            sketch.update(FlowKey(i, 1, 1, 1), 1)
        per_bucket = sketch.counters[0]
        assert per_bucket.max() < 12 * per_bucket.mean()

    def test_zero_sized_estimates_never_negative(self, small_trace):
        task = CardinalityTask("lc")
        result = SketchVisorPipeline(task).run_epoch(small_trace)
        assert result.answer >= 0

    def test_extreme_port_values(self):
        flow = FlowKey(2**32 - 1, 0, 65_535, 0, proto=255)
        sketch = Deltoid(width=64, depth=2)
        sketch.update(flow, 5000)
        decoded = sketch.decode(threshold=1000)
        assert flow in decoded
