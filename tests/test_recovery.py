"""Network-wide recovery: the NR / LR / UR / SketchVisor arms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.controlplane.merge import (
    merge_fastpath_snapshots,
    merge_sketches,
)
from repro.controlplane.recovery import RecoveryMode, recover
from repro.dataplane.host import Host
from repro.metrics import recall, relative_error
from repro.sketches.cardinality import KMinSketch, LinearCounting
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from tests.conftest import make_flow


@pytest.fixture(scope="module")
def overloaded_run(medium_trace):
    """One host under overload: Deltoid normal path + fast path."""
    host = Host(0, Deltoid(width=512, depth=4, seed=9), fastpath_bytes=8192)
    report = host.run_epoch(medium_trace)
    return report, medium_trace


class TestModes:
    def test_nr_discards_fastpath(self, overloaded_run):
        report, _trace = overloaded_run
        state = recover(
            report.sketch, report.fastpath, RecoveryMode.NO_RECOVERY
        )
        assert state.flow_estimates == {}
        assert np.array_equal(
            state.sketch.to_matrix(), report.sketch.to_matrix()
        )

    def test_nr_does_not_alias_input(self, overloaded_run):
        report, _trace = overloaded_run
        state = recover(
            report.sketch, report.fastpath, RecoveryMode.NO_RECOVERY
        )
        state.sketch.update(make_flow(424242), 10_000)
        assert not np.array_equal(
            state.sketch.to_matrix(), report.sketch.to_matrix()
        )

    def test_lr_le_ur_estimates(self, overloaded_run):
        report, _trace = overloaded_run
        low = recover(report.sketch, report.fastpath, RecoveryMode.LOWER)
        high = recover(report.sketch, report.fastpath, RecoveryMode.UPPER)
        assert low.flow_estimates.keys() == high.flow_estimates.keys()
        for flow, low_est in low.flow_estimates.items():
            assert low_est <= high.flow_estimates[flow] + 1e-6

    def test_sketchvisor_estimates_within_bounds(self, overloaded_run):
        report, _trace = overloaded_run
        state = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        for flow, estimate in state.flow_estimates.items():
            entry = report.fastpath.entries[flow]
            assert (
                entry.lower_bound - 1.0
                <= estimate
                <= entry.upper_bound + 1.0
            )

    def test_sketchvisor_improves_hh_recall_over_nr(self, overloaded_run):
        report, trace = overloaded_run
        truth = trace.flow_sizes()
        threshold = 0.005 * trace.total_bytes
        true_hh = {
            flow: size for flow, size in truth.items() if size > threshold
        }
        nr = recover(
            report.sketch, report.fastpath, RecoveryMode.NO_RECOVERY
        )
        sv = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        nr_found = nr.sketch.decode(threshold)
        sv_found = sv.sketch.decode(threshold)
        assert recall(sv_found, true_hh) > recall(nr_found, true_hh)
        assert recall(sv_found, true_hh) > 0.9
        assert relative_error(sv_found, true_hh) < 0.2

    def test_no_snapshot_passthrough(self, overloaded_run):
        report, _trace = overloaded_run
        state = recover(report.sketch, None, RecoveryMode.SKETCHVISOR)
        assert np.array_equal(
            state.sketch.to_matrix(), report.sketch.to_matrix()
        )


class TestNonLinearSketches:
    def test_flowradar_recovery_restores_flows(self, medium_trace):
        host = Host(
            0,
            FlowRadar(bloom_bits=60_000, num_cells=24_000, seed=3),
            fastpath_bytes=8192,
        )
        report = host.run_epoch(medium_trace)
        assert report.switch.fastpath_packets > 0
        sv = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        decoded, _complete = sv.sketch.decode()
        # Every fast-path tracked flow is decodable post-recovery.
        tracked = set(report.fastpath.entries)
        assert tracked <= set(decoded)

    def test_kmin_falls_back_to_midpoint_injection(self, medium_trace):
        host = Host(0, KMinSketch(k=512, depth=2, seed=5), fastpath_bytes=8192)
        report = host.run_epoch(medium_trace)
        sv = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        for flow, estimate in sv.flow_estimates.items():
            entry = report.fastpath.entries[flow]
            assert estimate == pytest.approx(
                (entry.lower_bound + entry.upper_bound) / 2
            )

    def test_cardinality_recovery_improves(self, medium_trace):
        """§7.3: recovery restores non-zero counters for cardinality."""
        truth_cardinality = len(medium_trace.flows())
        host = Host(
            0, LinearCounting(width=10_000, depth=4, seed=5),
            fastpath_bytes=8192,
        )
        report = host.run_epoch(medium_trace)
        nr = recover(
            report.sketch, report.fastpath, RecoveryMode.NO_RECOVERY
        )
        sv = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        nr_error = abs(nr.sketch.estimate() - truth_cardinality)
        sv_error = abs(sv.sketch.estimate() - truth_cardinality)
        assert sv_error <= nr_error


class TestMergedRecovery:
    def test_two_host_merge_then_recover(self, medium_trace):
        shards = medium_trace.partition(2)
        reports = []
        for host_id, shard in enumerate(shards):
            host = Host(
                host_id,
                Deltoid(width=512, depth=4, seed=9),
                fastpath_bytes=8192,
            )
            reports.append(host.run_epoch(shard))
        merged_sketch = merge_sketches([r.sketch for r in reports])
        merged_snapshot = merge_fastpath_snapshots(
            [r.fastpath for r in reports]
        )
        state = recover(
            merged_sketch, merged_snapshot, RecoveryMode.SKETCHVISOR
        )
        threshold = 0.005 * medium_trace.total_bytes
        truth = medium_trace.flow_sizes()
        true_hh = {
            flow: size for flow, size in truth.items() if size > threshold
        }
        found = state.sketch.decode(threshold)
        assert recall(found, true_hh) > 0.9
