"""Shared fixtures: small deterministic traces and ground truths."""

from __future__ import annotations

import pytest

from repro.common.flow import FlowKey, Packet
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """~500 flows, a few thousand packets; fast enough for unit tests."""
    return generate_trace(TraceConfig(num_flows=500, seed=42))


@pytest.fixture(scope="session")
def small_truth(small_trace: Trace) -> GroundTruth:
    return GroundTruth.from_trace(small_trace)


@pytest.fixture(scope="session")
def medium_trace() -> Trace:
    """~2000 flows; used by integration-level tests."""
    return generate_trace(TraceConfig(num_flows=2000, seed=7))


@pytest.fixture(scope="session")
def medium_truth(medium_trace: Trace) -> GroundTruth:
    return GroundTruth.from_trace(medium_trace)


def make_flow(index: int, dst: int = 9999) -> FlowKey:
    """A deterministic distinct flow for hand-built streams."""
    return FlowKey(
        src_ip=1000 + index,
        dst_ip=dst,
        src_port=1024 + (index % 60000),
        dst_port=80,
    )


def make_trace(sized_flows: list[tuple[FlowKey, list[int]]]) -> Trace:
    """Build a trace from (flow, [packet sizes]) pairs, interleaved."""
    packets = []
    timestamp = 0.0
    remaining = [
        (flow, list(sizes)) for flow, sizes in sized_flows if sizes
    ]
    while remaining:
        next_round = []
        for flow, sizes in remaining:
            packets.append(Packet(flow, sizes.pop(0), timestamp))
            timestamp += 0.001
            if sizes:
                next_round.append((flow, sizes))
        remaining = next_round
    return Trace(packets)
