"""Checkpointer and write-ahead-log behavior under crashes.

Covers the failure envelope of the files themselves: torn WAL tails,
snapshots corrupted at rest (walk-back to an older good one), atomic
write-then-rename, per-epoch pruning, and the environment gate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dataplane.engine import HostEngine
from repro.durability import (
    DEFAULT_CHECKPOINT_EVERY,
    Checkpointer,
    WriteAheadLog,
    checkpoint_from_env,
)
from repro.fastpath.topk import FastPath
from repro.sketches import CountMinSketch


def make_engine():
    return HostEngine(
        sketch=CountMinSketch(width=64, depth=3, seed=3),
        fastpath=FastPath(memory_bytes=1024),
        buffer_packets=32,
    )


class TestWriteAheadLog:
    def test_append_and_read(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.reset()
        wal.append({"offset": 0})
        wal.append({"offset": 128})
        assert wal.records() == [{"offset": 0}, {"offset": 128}]

    def test_missing_file_reads_empty(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "nope.jsonl"))
        assert wal.records() == []

    def test_torn_tail_is_ignored(self, tmp_path):
        """A crash mid-append leaves a partial last line; reads must
        stop at the last complete record, not explode."""
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(str(path))
        wal.reset()
        wal.append({"offset": 0})
        wal.append({"offset": 128})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"offset": 256, "fi')  # torn mid-write
        assert wal.records() == [{"offset": 0}, {"offset": 128}]

    def test_reset_truncates(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.reset()
        wal.append({"offset": 0})
        wal.reset()
        assert wal.records() == []


class TestCheckpointer:
    def test_begin_epoch_writes_baseline(self, tmp_path, small_trace):
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=64)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        assert ckpt.stats.writes == 1
        restored = ckpt.restore(0, engine.cost_model)
        assert restored is not None
        assert restored.offset == 0

    def test_restore_returns_newest(self, tmp_path, small_trace):
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=64)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        engine.run(
            small_trace.packets,
            stop_at=200,
            checkpoint_every=64,
            on_checkpoint=lambda e: ckpt.write(0, e),
        )
        restored = ckpt.restore(0, engine.cost_model)
        assert restored.offset == 192  # newest 64-aligned boundary

    def test_corrupt_newest_walks_back(self, tmp_path, small_trace):
        """Flip a byte in the newest snapshot: restore must skip it
        (counting it) and land on the previous boundary."""
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=64)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        engine.run(
            small_trace.packets,
            stop_at=200,
            checkpoint_every=64,
            on_checkpoint=lambda e: ckpt.write(0, e),
        )
        newest = os.path.join(
            ckpt.directory, ckpt._snapshot_name(0, 192)
        )
        blob = bytearray(open(newest, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(newest, "wb") as handle:
            handle.write(bytes(blob))
        restored = ckpt.restore(0, engine.cost_model)
        assert restored.offset == 128
        assert ckpt.stats.corrupt_snapshots == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=64)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        for name in os.listdir(ckpt.directory):
            if name.startswith("ckpt_"):
                path = os.path.join(ckpt.directory, name)
                with open(path, "wb") as handle:
                    handle.write(b"garbage")
        assert ckpt.restore(0, engine.cost_model) is None
        assert ckpt.stats.corrupt_snapshots >= 1

    def test_no_tmp_files_left_behind(self, tmp_path, small_trace):
        """Atomic write-then-rename: the directory never accumulates
        ``.tmp`` files under the journaled names."""
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=32)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        engine.run(
            small_trace.packets,
            stop_at=100,
            checkpoint_every=32,
            on_checkpoint=lambda e: ckpt.write(0, e),
        )
        names = os.listdir(ckpt.directory)
        assert not [n for n in names if n.endswith(".tmp")]

    def test_begin_epoch_prunes_previous(self, tmp_path, small_trace):
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=32)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        engine.run(
            small_trace.packets,
            stop_at=100,
            checkpoint_every=32,
            on_checkpoint=lambda e: ckpt.write(0, e),
        )
        ckpt.begin_epoch(1, make_engine())
        names = os.listdir(ckpt.directory)
        assert all("000001" in n for n in names), names
        assert ckpt.restore(0, engine.cost_model) is None

    def test_wal_rejects_path_escape(self, tmp_path):
        """A doctored WAL record must not read files outside the
        checkpoint directory."""
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=32)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        wal = WriteAheadLog(ckpt._wal_path(0))
        wal.append(
            {"epoch": 0, "offset": 1, "file": "../../etc/passwd"}
        )
        restored = ckpt.restore(0, engine.cost_model)
        assert restored is not None  # fell back to the baseline
        assert restored.offset == 0

    def test_cycle_budget_trigger(self, tmp_path, small_trace):
        ckpt = Checkpointer(
            str(tmp_path),
            host_id=0,
            every_packets=10**9,  # never by packet count
            cycle_budget=1.0,  # always by cycle budget
        )
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        engine.run(small_trace.packets, stop_at=100)
        assert ckpt.maybe_cycle_write(0, engine) is True
        assert ckpt.stats.writes == 2
        # Immediately after a write the budget is spent again.
        assert ckpt.maybe_cycle_write(0, engine) is False


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert checkpoint_from_env() == (None, None)

    def test_dir_and_interval(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "123")
        assert checkpoint_from_env() == (str(tmp_path), 123)

    def test_bad_interval_falls_back(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "zero")
        directory, every = checkpoint_from_env()
        assert directory == str(tmp_path)
        assert every is None

    def test_default_interval_is_sane(self):
        assert DEFAULT_CHECKPOINT_EVERY == 16384


class TestWalRecordShape:
    def test_records_are_json_per_line(self, tmp_path, small_trace):
        ckpt = Checkpointer(str(tmp_path), host_id=0, every_packets=64)
        engine = make_engine()
        ckpt.begin_epoch(0, engine)
        engine.run(
            small_trace.packets,
            stop_at=70,
            checkpoint_every=64,
            on_checkpoint=lambda e: ckpt.write(0, e),
        )
        with open(ckpt._wal_path(0), encoding="utf-8") as handle:
            lines = [json.loads(l) for l in handle if l.strip()]
        assert [r["offset"] for r in lines] == [0, 64]
        for record in lines:
            assert set(record) == {"epoch", "offset", "file", "bytes"}
