"""StateCodec round-trip properties across every sketch type.

The durability contract starts here: if ``decode(encode(x))`` is not
*exactly* ``x`` for every piece of host state, checkpoint/replay cannot
be bit-identical.  These tests sweep every registered sketch type
through the codec — empty, lightly updated, batch-updated, and
saturated — plus the flattened fast-path tables and the full engine
snapshot, and then hammer the frame with the corruptions the CRC is
there to catch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptSnapshotError
from repro.dataplane.engine import HostEngine
from repro.durability.codec import (
    StateCodec,
    _freeze_fastpath,
    _thaw_fastpath,
)
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath
from repro.sketches import (
    MRAC,
    CountMinSketch,
    CountSketch,
    Deltoid,
    FlowRadar,
    FMSketch,
    HyperLogLog,
    KMinSketch,
    LinearCounting,
    ReversibleSketch,
    TwoLevelSketch,
    UnivMon,
)
from tests.conftest import make_flow

#: Small instances of every registered sketch type (§ Table 1), sized
#: for test speed — the codec is structure-generic, so small is enough.
SKETCH_FACTORIES = {
    "countmin": lambda: CountMinSketch(width=64, depth=3, seed=3),
    "countsketch": lambda: CountSketch(width=64, depth=3, seed=3),
    "deltoid": lambda: Deltoid(seed=3),
    "revsketch": lambda: ReversibleSketch(seed=3),
    "flowradar": lambda: FlowRadar(
        bloom_bits=2048, num_cells=512, seed=3
    ),
    "univmon": lambda: UnivMon(
        level_widths=(64, 32, 16), depth=3, heap_size=20, seed=3
    ),
    "twolevel": lambda: TwoLevelSketch(seed=3),
    "mrac": lambda: MRAC(seed=3),
    "fm": lambda: FMSketch(seed=3),
    "hll": lambda: HyperLogLog(seed=3),
    "kmin": lambda: KMinSketch(seed=3),
    "linear": lambda: LinearCounting(seed=3),
}


def state_equal(a, b, path="") -> bool:
    """Recursive exact equality over arbitrary repro state objects."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, dict):
        if set(a) != set(b):
            return False
        # Insertion order is load-bearing for fast-path tables.
        if list(a) != list(b):
            return False
        return all(state_equal(a[k], b[k], f"{path}.{k}") for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            state_equal(x, y, f"{path}[]") for x, y in zip(a, b)
        )
    if isinstance(a, (set, frozenset)):
        return a == b
    if hasattr(a, "__dict__"):
        return state_equal(vars(a), vars(b), f"{path}.__dict__")
    if hasattr(a, "__slots__"):
        return all(
            state_equal(
                getattr(a, slot), getattr(b, slot), f"{path}.{slot}"
            )
            for slot in a.__slots__
        )
    return a == b


def updates_strategy(max_size=200):
    """(flow index, byte count) streams over a small flow pool, so
    collisions, kick-outs, and heap churn all actually happen."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=24),
            st.integers(min_value=40, max_value=1500),
        ),
        max_size=max_size,
    )


@pytest.fixture(scope="module")
def codec() -> StateCodec:
    return StateCodec()


class TestSketchRoundTrip:
    @pytest.mark.parametrize("name", sorted(SKETCH_FACTORIES))
    def test_empty_sketch_round_trips(self, codec, name):
        sketch = SKETCH_FACTORIES[name]()
        restored = codec.decode(codec.encode(sketch))
        assert state_equal(sketch, restored), name

    @pytest.mark.parametrize("name", sorted(SKETCH_FACTORIES))
    @settings(max_examples=20, deadline=None)
    @given(updates=updates_strategy())
    def test_updated_sketch_round_trips(self, codec, name, updates):
        sketch = SKETCH_FACTORIES[name]()
        for index, size in updates:
            sketch.update(make_flow(index), size)
        restored = codec.decode(codec.encode(sketch))
        assert state_equal(sketch, restored), name
        assert np.array_equal(sketch.to_matrix(), restored.to_matrix())

    @pytest.mark.parametrize("name", sorted(SKETCH_FACTORIES))
    def test_batch_updated_sketch_round_trips(self, codec, name):
        rng = np.random.default_rng(11)
        keys64 = rng.integers(
            0, 2**63, size=400, dtype=np.uint64
        )
        values = rng.integers(
            40, 1500, size=400
        ).astype(np.float64)
        sketch = SKETCH_FACTORIES[name]()
        if not sketch.key64_updates:
            pytest.skip("sketch has no key64 batch path")
        sketch.update_batch(keys64, values)
        restored = codec.decode(codec.encode(sketch))
        assert state_equal(sketch, restored), name

    @pytest.mark.parametrize("name", sorted(SKETCH_FACTORIES))
    def test_restored_sketch_evolves_identically(self, codec, name):
        """The restored copy must not just *look* equal — it must keep
        behaving identically under further updates (live hash state,
        heaps, etc. all have to survive)."""
        sketch = SKETCH_FACTORIES[name]()
        for index in range(30):
            sketch.update(make_flow(index), 100 + index)
        restored = codec.decode(codec.encode(sketch))
        for index in range(30, 60):
            sketch.update(make_flow(index % 40), 99)
            restored.update(make_flow(index % 40), 99)
        assert state_equal(sketch, restored), name


class TestFastPathRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(updates=updates_strategy())
    def test_sketchvisor_fastpath(self, updates):
        fastpath = FastPath(memory_bytes=512)  # tiny → kick-outs
        for index, size in updates:
            fastpath.update(make_flow(index), size)
        restored = _thaw_fastpath(_freeze_fastpath(fastpath))
        assert state_equal(fastpath, restored)
        assert list(restored.table) == list(fastpath.table)

    @settings(max_examples=25, deadline=None)
    @given(updates=updates_strategy())
    def test_misra_gries_fastpath(self, updates):
        fastpath = MisraGriesTopK(memory_bytes=256)
        for index, size in updates:
            fastpath.update(make_flow(index), size)
        restored = _thaw_fastpath(_freeze_fastpath(fastpath))
        assert state_equal(fastpath, restored)

    def test_none_fastpath(self):
        assert _thaw_fastpath(_freeze_fastpath(None)) is None

    def test_saturated_fastpath_round_trips(self):
        """A table driven far past capacity (evictions + rejections)."""
        fastpath = FastPath(memory_bytes=256)
        for index in range(500):
            fastpath.update(make_flow(index % 60), 40 + index % 1400)
        assert fastpath.num_kickouts > 0
        restored = _thaw_fastpath(_freeze_fastpath(fastpath))
        assert state_equal(fastpath, restored)


class TestEngineSnapshot:
    def test_mid_epoch_engine_round_trips(self, codec, small_trace):
        engine = HostEngine(
            sketch=CountMinSketch(width=64, depth=3, seed=3),
            fastpath=FastPath(memory_bytes=1024),
            buffer_packets=32,
        )
        engine.run(small_trace.packets, stop_at=len(small_trace) // 2)
        restored = codec.restore_engine(
            codec.snapshot_engine(engine), engine.cost_model
        )
        assert restored.offset == engine.offset
        assert restored.producer == engine.producer
        assert restored.consumer == engine.consumer
        assert state_equal(engine.report, restored.report)
        assert state_equal(engine.sketch, restored.sketch)
        assert state_equal(engine.fastpath, restored.fastpath)
        assert list(restored.fifo._queue) == list(engine.fifo._queue)
        assert restored.fifo.high_water == engine.fifo.high_water

    def test_resumed_engine_matches_uninterrupted(
        self, codec, small_trace
    ):
        """Snapshot mid-epoch, restore, run both to the end: identical
        reports — the keystone the checkpoint layer stands on."""
        packets = small_trace.packets

        def fresh():
            return HostEngine(
                sketch=CountMinSketch(width=64, depth=3, seed=3),
                fastpath=FastPath(memory_bytes=1024),
                buffer_packets=32,
            )

        straight = fresh()
        straight.run(packets)
        expected = straight.finish()

        interrupted = fresh()
        interrupted.run(packets, stop_at=len(packets) // 3)
        resumed = codec.restore_engine(
            codec.snapshot_engine(interrupted), interrupted.cost_model
        )
        resumed.run(packets)
        actual = resumed.finish()
        assert state_equal(expected, actual)
        assert state_equal(straight.sketch, resumed.sketch)
        assert state_equal(straight.fastpath, resumed.fastpath)


class TestFrameCorruption:
    def _blob(self, codec):
        sketch = CountMinSketch(width=16, depth=2, seed=3)
        sketch.update(make_flow(1), 100)
        return codec.encode(sketch)

    def test_truncated_header(self, codec):
        with pytest.raises(CorruptSnapshotError):
            codec.decode(self._blob(codec)[:4])

    def test_truncated_payload(self, codec):
        with pytest.raises(CorruptSnapshotError):
            codec.decode(self._blob(codec)[:-3])

    def test_bad_magic(self, codec):
        blob = bytearray(self._blob(codec))
        blob[0] ^= 0xFF
        with pytest.raises(CorruptSnapshotError):
            codec.decode(bytes(blob))

    def test_unknown_version(self, codec):
        blob = bytearray(self._blob(codec))
        blob[4] = 99
        with pytest.raises(CorruptSnapshotError):
            codec.decode(bytes(blob))

    @pytest.mark.parametrize("position", [0.1, 0.5, 0.9])
    def test_payload_bitflip_caught_by_crc(self, codec, position):
        blob = bytearray(self._blob(codec))
        index = codec.header_size + int(
            (len(blob) - codec.header_size) * position
        )
        blob[index] ^= 0x10
        with pytest.raises(CorruptSnapshotError):
            codec.decode(bytes(blob))

    def test_not_an_engine_snapshot(self, codec):
        blob = codec.encode({"format": "something-else"})
        with pytest.raises(CorruptSnapshotError):
            codec.restore_engine(blob, None)
