"""Continuous multi-epoch monitoring loop."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.framework.monitor import (
    Alert,
    AlertKind,
    ContinuousMonitor,
)
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.generator import TraceConfig, generate_epochs
from repro.traffic.groundtruth import GroundTruth


@pytest.fixture(scope="module")
def epoch_stream():
    return generate_epochs(
        TraceConfig(num_flows=1000, seed=17), num_epochs=3
    )


class TestContinuousMonitor:
    def test_requires_tasks(self):
        with pytest.raises(ConfigError):
            ContinuousMonitor([])

    def test_per_epoch_results(self, epoch_stream):
        truth0 = GroundTruth.from_trace(epoch_stream[0])
        threshold = 0.01 * truth0.total_bytes
        monitor = ContinuousMonitor(
            [HeavyHitterTask("flowradar", threshold=threshold)]
        )
        for epoch in epoch_stream:
            summary = monitor.process_epoch(epoch)
            assert "heavy_hitter" in summary.results
        assert len(monitor.history) == 3

    def test_heavy_hitter_alerts_raised(self, epoch_stream):
        truth0 = GroundTruth.from_trace(epoch_stream[0])
        threshold = 0.01 * truth0.total_bytes
        monitor = ContinuousMonitor(
            [HeavyHitterTask("flowradar", threshold=threshold)]
        )
        summary = monitor.process_epoch(epoch_stream[0])
        assert summary.alerts
        assert all(
            alert.kind is AlertKind.HEAVY_HITTER
            for alert in summary.alerts
        )
        true_hh = set(truth0.heavy_hitters(threshold))
        alerted = {alert.subject for alert in summary.alerts}
        assert len(alerted & true_hh) / len(true_hh) > 0.9

    def test_heavy_changer_skips_first_epoch(self, epoch_stream):
        monitor = ContinuousMonitor(
            [HeavyChangerTask("flowradar", threshold=100_000)]
        )
        first = monitor.process_epoch(epoch_stream[0])
        assert "heavy_changer" not in first.results
        second = monitor.process_epoch(epoch_stream[1])
        assert "heavy_changer" in second.results

    def test_estimation_tasks_produce_no_alerts(self, epoch_stream):
        monitor = ContinuousMonitor([CardinalityTask("lc")])
        summary = monitor.process_epoch(epoch_stream[0])
        assert summary.alerts == []
        assert "cardinality" in summary.results

    def test_recurring_subjects(self, epoch_stream):
        truth0 = GroundTruth.from_trace(epoch_stream[0])
        threshold = 0.01 * truth0.total_bytes
        monitor = ContinuousMonitor(
            [HeavyHitterTask("flowradar", threshold=threshold)]
        )
        for epoch in epoch_stream:
            monitor.process_epoch(epoch)
        one_epoch = monitor.recurring_subjects(
            AlertKind.HEAVY_HITTER, min_epochs=1
        )
        persistent = monitor.recurring_subjects(
            AlertKind.HEAVY_HITTER, min_epochs=3
        )
        assert persistent <= one_epoch

    def test_alert_filtering(self, epoch_stream):
        truth0 = GroundTruth.from_trace(epoch_stream[0])
        threshold = 0.01 * truth0.total_bytes
        monitor = ContinuousMonitor(
            [HeavyHitterTask("flowradar", threshold=threshold)]
        )
        monitor.process_epoch(epoch_stream[0])
        assert monitor.alerts(AlertKind.DDOS) == []
        assert monitor.alerts(AlertKind.HEAVY_HITTER)
        assert monitor.alerts() == monitor.alerts(
            AlertKind.HEAVY_HITTER
        )
