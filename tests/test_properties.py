"""Cross-cutting property-based invariants (hypothesis).

These exercise whole-system conservation laws and algebraic identities
that must hold for *any* traffic, not just the fixture workloads.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.flow import FlowKey, Packet
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.topk import FastPath
from repro.sketches.countmin import CountMinSketch
from repro.sketches.flowradar import FlowRadar
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace

packet_lists = st.lists(
    st.tuples(
        st.integers(0, 25),  # flow index
        st.integers(64, 1500),  # size
    ),
    min_size=1,
    max_size=150,
)


def _trace(pairs) -> Trace:
    packets = [
        Packet(
            FlowKey(1000 + index, 2000 + index % 7, 3000, 80),
            size,
            i * 1e-4,
        )
        for i, (index, size) in enumerate(pairs)
    ]
    return Trace(packets)


class TestConservationLaws:
    @given(packet_lists)
    @settings(max_examples=40, deadline=None)
    def test_switch_conserves_packets_and_bytes(self, pairs):
        trace = _trace(pairs)
        switch = SoftwareSwitch(
            CountMinSketch(width=64, depth=2),
            fastpath=FastPath(4096),
            buffer_packets=4,
        )
        report = switch.process(trace)
        assert (
            report.normal_packets + report.fastpath_packets
            == len(trace)
        )
        assert report.normal_bytes + report.fastpath_bytes == (
            trace.total_bytes
        )

    @given(packet_lists)
    @settings(max_examples=40, deadline=None)
    def test_sketch_plus_fastpath_cover_all_bytes(self, pairs):
        """Bytes recorded in the normal-path sketch plus the fast
        path's V always equal the trace total."""
        trace = _trace(pairs)
        sketch = CountMinSketch(width=64, depth=1)
        fastpath = FastPath(4096)
        switch = SoftwareSwitch(
            sketch, fastpath=fastpath, buffer_packets=4
        )
        switch.process(trace)
        recorded = float(sketch.counters.sum())
        assert recorded + fastpath.total_bytes == (
            trace.total_bytes
        )

    @given(packet_lists)
    @settings(max_examples=30, deadline=None)
    def test_groundtruth_totals(self, pairs):
        trace = _trace(pairs)
        truth = GroundTruth.from_trace(trace)
        assert truth.total_bytes == trace.total_bytes
        assert truth.cardinality == len(trace.flows())
        assert sum(truth.flow_packets.values()) == len(trace)


class TestAlgebraicIdentities:
    @given(packet_lists, st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_partition_merge_sketch_identity(self, pairs, hosts):
        """sk(trace) == sum of sk(shard) over any partition."""
        trace = _trace(pairs)
        whole = CountMinSketch(width=64, depth=3, seed=11)
        for packet in trace:
            whole.update(packet.flow, packet.size)
        merged = CountMinSketch(width=64, depth=3, seed=11)
        for shard in trace.partition(hosts):
            part = CountMinSketch(width=64, depth=3, seed=11)
            for packet in shard:
                part.update(packet.flow, packet.size)
            merged.merge(part)
        assert np.array_equal(merged.counters, whole.counters)

    @given(packet_lists)
    @settings(max_examples=25, deadline=None)
    def test_flowradar_decode_is_exact_under_capacity(self, pairs):
        trace = _trace(pairs)
        sketch = FlowRadar(bloom_bits=8000, num_cells=1500)
        truth = {}
        for packet in trace:
            sketch.update(packet.flow, packet.size)
            truth[packet.flow] = truth.get(packet.flow, 0) + packet.size
        decoded, complete = sketch.decode()
        assert complete
        assert decoded.keys() == truth.keys()
        for flow, size in truth.items():
            assert abs(decoded[flow] - size) < 1e-6

    @given(packet_lists)
    @settings(max_examples=30, deadline=None)
    def test_epoch_split_preserves_flow_sizes(self, pairs):
        trace = _trace(pairs)
        epochs = trace.split_epochs(0.002)
        combined: dict = {}
        for epoch in epochs:
            for flow, size in epoch.flow_sizes().items():
                combined[flow] = combined.get(flow, 0) + size
        assert combined == trace.flow_sizes()
