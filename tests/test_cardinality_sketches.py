"""FM, kMin, Linear Counting: distinct-count estimation quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.sketches.cardinality import (
    FMSketch,
    KMinSketch,
    LinearCounting,
)
from tests.conftest import make_flow


class TestFM:
    def test_estimate_within_tolerance(self):
        sketch = FMSketch(num_registers=512, depth=4)
        for i in range(5000):
            sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(5000, rel=0.35)

    def test_duplicates_do_not_count(self):
        sketch = FMSketch(num_registers=512, depth=4)
        for _ in range(50):
            for i in range(200):
                sketch.update(make_flow(i), 100)
        assert sketch.estimate() < 1500

    def test_merge_counts_union(self):
        a = FMSketch(num_registers=256, seed=2)
        b = FMSketch(num_registers=256, seed=2)
        for i in range(1500):
            (a if i % 2 else b).update(make_flow(i), 10)
        a.merge(b)
        assert a.estimate() == pytest.approx(1500, rel=0.4)

    def test_matrix_roundtrip(self):
        sketch = FMSketch(num_registers=64, depth=2)
        for i in range(100):
            sketch.update(make_flow(i), 10)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert clone.estimate() == sketch.estimate()

    def test_positions_match_update(self):
        sketch = FMSketch(num_registers=64, depth=2)
        flow = make_flow(1)
        sketch.update(flow, 55)
        replayed = np.zeros_like(sketch.to_matrix())
        for row, col, coef in sketch.matrix_positions(flow):
            replayed[row, col] += 55 * coef
        assert np.array_equal(replayed, sketch.to_matrix())

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FMSketch(num_registers=0)


class TestKMin:
    def test_estimate_within_tolerance(self):
        sketch = KMinSketch(k=512, depth=4)
        for i in range(5000):
            sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(5000, rel=0.2)

    def test_small_sets_exact(self):
        sketch = KMinSketch(k=512, depth=2)
        for i in range(50):
            sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(50, abs=1)

    def test_duplicates_do_not_count(self):
        sketch = KMinSketch(k=256, depth=2)
        for _ in range(10):
            for i in range(100):
                sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(100, abs=1)

    def test_merge_is_union(self):
        a = KMinSketch(k=256, depth=2, seed=5)
        b = KMinSketch(k=256, depth=2, seed=5)
        for i in range(2000):
            (a if i % 2 else b).update(make_flow(i), 10)
        a.merge(b)
        assert a.estimate() == pytest.approx(2000, rel=0.25)

    def test_merge_idempotent_on_same_content(self):
        a = KMinSketch(k=64, depth=1, seed=5)
        b = KMinSketch(k=64, depth=1, seed=5)
        for i in range(500):
            a.update(make_flow(i), 10)
            b.update(make_flow(i), 10)
        before = a.estimate()
        a.merge(b)
        assert a.estimate() == pytest.approx(before)

    def test_matrix_roundtrip(self):
        sketch = KMinSketch(k=128, depth=2)
        for i in range(500):
            sketch.update(make_flow(i), 10)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert clone.estimate() == pytest.approx(sketch.estimate())

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            KMinSketch(k=1)


class TestLinearCounting:
    def test_estimate_accurate_at_low_load(self):
        sketch = LinearCounting(width=10_000, depth=4)
        for i in range(3000):
            sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(3000, rel=0.05)

    def test_duplicates_do_not_count(self):
        sketch = LinearCounting(width=4096, depth=2)
        for _ in range(20):
            for i in range(500):
                sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(500, rel=0.1)

    def test_saturated_returns_finite(self):
        sketch = LinearCounting(width=16, depth=1)
        for i in range(1000):
            sketch.update(make_flow(i), 10)
        assert np.isfinite(sketch.estimate())

    def test_merge_counts_union(self):
        a = LinearCounting(width=4096, depth=2, seed=8)
        b = LinearCounting(width=4096, depth=2, seed=8)
        for i in range(1000):
            (a if i % 2 else b).update(make_flow(i), 10)
        a.merge(b)
        assert a.estimate() == pytest.approx(1000, rel=0.1)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            LinearCounting(width=100).merge(LinearCounting(width=200))

    def test_positions_match_update(self):
        sketch = LinearCounting(width=128, depth=3)
        flow = make_flow(1)
        sketch.update(flow, 70)
        replayed = np.zeros_like(sketch.to_matrix())
        for row, col, coef in sketch.matrix_positions(flow):
            replayed[row, col] += 70 * coef
        assert np.array_equal(replayed, sketch.counters)
