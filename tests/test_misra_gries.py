"""Misra-Gries baseline: per-flow O(k) kick-outs, loose shared bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import ENTRY_BYTES, FastPath, UpdateKind
from tests.conftest import make_flow

streams = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 5000)),
    min_size=1,
    max_size=300,
)


class TestMisraGries:
    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_residual_never_overestimates(self, stream):
        tracker = MisraGriesTopK(memory_bytes=10 * ENTRY_BYTES)
        truth: dict[int, int] = {}
        for index, size in stream:
            tracker.update(make_flow(index), size)
            truth[index] = truth.get(index, 0) + size
        for flow, entry in tracker.table.items():
            assert entry.r <= truth[flow.src_ip - 1000] + 1e-6

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_shared_upper_bound_contains_truth(self, stream):
        tracker = MisraGriesTopK(memory_bytes=10 * ENTRY_BYTES)
        truth: dict[int, int] = {}
        for index, size in stream:
            tracker.update(make_flow(index), size)
            truth[index] = truth.get(index, 0) + size
        for flow, (low, high) in tracker.bounds().items():
            true_size = truth[flow.src_ip - 1000]
            assert low <= true_size + 1e-6 <= high + 1e-6

    def test_evicts_at_most_one_flow_per_pass(self):
        tracker = MisraGriesTopK(memory_bytes=5 * ENTRY_BYTES)
        for i in range(5):
            tracker.update(make_flow(i), 100)
        tracker.update(make_flow(99), 500)
        assert tracker.num_kickouts == 1
        assert tracker.num_evicted <= 1

    def test_heavy_flow_survives(self):
        tracker = MisraGriesTopK(memory_bytes=8 * ENTRY_BYTES)
        heavy = make_flow(0)
        tracker.update(heavy, 1_000_000)
        for i in range(1, 1000):
            tracker.update(make_flow(i), 64)
        assert heavy in tracker.table

    def test_more_kickouts_than_sketchvisor_fastpath(self, medium_trace):
        """Figure 16(a): MG performs more O(k) passes than Algorithm 1."""
        mg = MisraGriesTopK(memory_bytes=8192)
        sv = FastPath(memory_bytes=8192)
        for packet in medium_trace:
            mg.update(packet.flow, packet.size)
            sv.update(packet.flow, packet.size)
        assert mg.num_kickouts > sv.num_kickouts

    def test_looser_bounds_than_sketchvisor(self, medium_trace):
        """Figure 16(b): MG's per-flow upper slack is far larger."""
        mg = MisraGriesTopK(memory_bytes=8192)
        sv = FastPath(memory_bytes=8192)
        for packet in medium_trace:
            mg.update(packet.flow, packet.size)
            sv.update(packet.flow, packet.size)
        truth = medium_trace.flow_sizes()
        mg_widths = [
            high - low for low, high in mg.bounds().values()
        ]
        sv_top = sorted(
            sv.table.items(),
            key=lambda item: item[1].estimate,
            reverse=True,
        )[:50]
        sv_widths = [
            entry.upper_bound - entry.lower_bound
            for _flow, entry in sv_top
        ]
        assert (sum(mg_widths) / len(mg_widths)) > 5 * (
            sum(sv_widths) / len(sv_widths)
        )
        # And the SV bounds actually contain the truth for top flows.
        for flow, entry in sv_top:
            assert (
                entry.lower_bound - 1e-6
                <= truth[flow]
                <= entry.upper_bound + 1e-6
            )

    def test_update_kinds(self):
        tracker = MisraGriesTopK(memory_bytes=2 * ENTRY_BYTES)
        assert tracker.update(make_flow(1), 10) is UpdateKind.INSERT
        assert tracker.update(make_flow(1), 10) is UpdateKind.HIT
        tracker.update(make_flow(2), 10)
        assert tracker.update(make_flow(3), 10) is UpdateKind.KICKOUT

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MisraGriesTopK(memory_bytes=1)

    def test_reset(self):
        tracker = MisraGriesTopK()
        tracker.update(make_flow(1), 100)
        tracker.reset()
        assert not tracker.table and tracker.total_bytes == 0
