"""Anomaly injection produces detectable, known-answer events."""

from __future__ import annotations

import pytest

from repro.traffic.anomalies import (
    inject_ddos_victims,
    inject_heavy_changes,
    inject_superspreaders,
)
from repro.traffic.groundtruth import GroundTruth


class TestDDoSInjection:
    def test_victims_exceed_fanin(self, small_trace):
        trace, victims = inject_ddos_victims(
            small_trace, num_victims=3, sources_per_victim=80
        )
        truth = GroundTruth.from_trace(trace)
        for victim in victims:
            assert len(truth.fanin[victim]) >= 80

    def test_victims_dominate_detection(self, small_trace):
        trace, victims = inject_ddos_victims(
            small_trace, num_victims=2, sources_per_victim=120
        )
        truth = GroundTruth.from_trace(trace)
        detected = truth.ddos_victims(100)
        assert set(victims) <= set(detected)

    def test_timestamps_remain_ordered(self, small_trace):
        trace, _ = inject_ddos_victims(small_trace, 2, 50)
        previous = -1.0
        for packet in trace:
            assert packet.timestamp >= previous
            previous = packet.timestamp

    def test_validates_arguments(self, small_trace):
        with pytest.raises(ValueError):
            inject_ddos_victims(small_trace, 0, 10)


class TestSuperspreaderInjection:
    def test_spreaders_exceed_fanout(self, small_trace):
        trace, spreaders = inject_superspreaders(
            small_trace, num_spreaders=3, destinations_per_spreader=90
        )
        truth = GroundTruth.from_trace(trace)
        for spreader in spreaders:
            assert len(truth.fanout[spreader]) >= 90

    def test_distinct_from_ddos_hosts(self, small_trace):
        _trace_a, victims = inject_ddos_victims(small_trace, 2, 10)
        _trace_b, spreaders = inject_superspreaders(small_trace, 2, 10)
        assert not set(victims) & set(spreaders)


class TestHeavyChangeInjection:
    def test_changers_appear_in_truth(self, small_trace):
        epoch_a, epoch_b, changers = inject_heavy_changes(
            small_trace, small_trace, num_changers=4, change_bytes=100_000
        )
        truth_a = GroundTruth.from_trace(epoch_a)
        truth_b = GroundTruth.from_trace(epoch_b)
        detected = truth_a.heavy_changers(truth_b, 50_000)
        assert set(changers) <= set(detected)

    def test_change_magnitude(self, small_trace):
        _a, epoch_b, changers = inject_heavy_changes(
            small_trace, small_trace, num_changers=1, change_bytes=90_000
        )
        truth_b = GroundTruth.from_trace(epoch_b)
        assert truth_b.flow_bytes[changers[0]] == pytest.approx(
            90_000, rel=0.05
        )

    def test_epoch_a_untouched(self, small_trace):
        epoch_a, _b, changers = inject_heavy_changes(
            small_trace, small_trace, 2, 10_000
        )
        truth_a = GroundTruth.from_trace(epoch_a)
        for changer in changers:
            assert changer not in truth_a.flow_bytes
