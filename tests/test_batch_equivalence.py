"""Batch-engine equivalence: vectorized paths must be bit-identical.

The batched data plane's whole correctness story is that counter state
is order-insensitive within an epoch, so deferring sketch updates into
one vectorized call changes *nothing observable*.  These tests pin that
down at three levels: sketch counters, merge/round-trip, and full
switch reports.
"""

import numpy as np
import pytest

from repro.common.flow import FlowKey
from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch
from repro.fastpath.topk import FastPath
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.sketches.bloom import BloomFilter, CountingBloomFilter
from repro.sketches.cardinality import (
    FMSketch,
    HyperLogLog,
    KMinSketch,
    LinearCounting,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.mrac import MRAC
from repro.sketches.univmon import UnivMon
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth

SKETCH_FACTORIES = {
    "countmin": lambda: CountMinSketch(width=512, depth=4, seed=5),
    "countsketch": lambda: CountSketch(width=512, depth=5, seed=5),
    "mrac": lambda: MRAC(width=512, seed=5),
    "fm": lambda: FMSketch(num_registers=64, depth=3, seed=5),
    "hll": lambda: HyperLogLog(num_registers=64, seed=5),
    "lc": lambda: LinearCounting(width=512, depth=4, seed=5),
    "kmin": lambda: KMinSketch(k=64, depth=3, seed=5),
}


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(num_flows=700, seed=9))


@pytest.mark.parametrize("name", sorted(SKETCH_FACTORIES))
def test_update_batch_bit_identical(trace, name):
    factory = SKETCH_FACTORIES[name]
    scalar, batch = factory(), factory()
    for packet in trace:
        scalar.update(packet.flow, packet.size)
    batch.update_batch(trace.key64, trace.sizes)
    assert np.array_equal(scalar.to_matrix(), batch.to_matrix())


@pytest.mark.parametrize("name", sorted(SKETCH_FACTORIES))
def test_merge_and_roundtrip_after_batch(trace, name):
    factory = SKETCH_FACTORIES[name]
    half = len(trace) // 2
    # Scalar reference over the whole trace.
    scalar = factory()
    for packet in trace:
        scalar.update(packet.flow, packet.size)
    # Two batch-built halves, merged.
    first, second = factory(), factory()
    first.update_batch(trace.key64[:half], trace.sizes[:half])
    second.update_batch(trace.key64[half:], trace.sizes[half:])
    first.merge(second)
    assert np.array_equal(scalar.to_matrix(), first.to_matrix())
    # Recovery round-trip: to_matrix -> load_matrix reproduces counters.
    restored = factory()
    restored.load_matrix(first.to_matrix())
    assert np.array_equal(restored.to_matrix(), first.to_matrix())


def test_bloom_filter_batch(trace):
    scalar, batch = BloomFilter(4096, seed=2), BloomFilter(4096, seed=2)
    keys = trace.key64
    for key in keys.tolist():
        scalar.add(key)
    batch.add_batch(keys)
    assert np.array_equal(scalar.bits, batch.bits)


def test_counting_bloom_batch(trace):
    scalar = CountingBloomFilter(4096, seed=2)
    batch = CountingBloomFilter(4096, seed=2)
    for key, size in zip(trace.key64.tolist(), trace.sizes.tolist()):
        scalar.add(key, size)
    batch.add_batch(trace.key64, trace.sizes)
    assert np.array_equal(scalar.counters, batch.counters)


def test_update_batch_rejects_header_dependent_sketches():
    with pytest.raises(NotImplementedError):
        UnivMon(seed=1).update_batch(
            np.zeros(1, dtype=np.uint64), np.ones(1, dtype=np.int64)
        )


# ----------------------------------------------------------------------
# Switch level: batch mode must reproduce scalar SwitchReport exactly.
# ----------------------------------------------------------------------
def _run_switch(trace, *, ideal, fastpath_bytes, offered, batch, factory):
    sketch = factory()
    fastpath = FastPath(fastpath_bytes) if fastpath_bytes else None
    switch = SoftwareSwitch(
        sketch,
        fastpath=fastpath,
        cost_model=CostModel.in_memory(),
        buffer_packets=64,
        ideal=ideal,
        batch=batch,
    )
    return switch.process(trace, offered), sketch


def _assert_reports_equal(scalar_report, batch_report):
    for name in (
        "total_packets",
        "total_bytes",
        "normal_packets",
        "normal_bytes",
        "fastpath_packets",
        "fastpath_bytes",
        "producer_cycles",
        "consumer_cycles",
        "makespan_cycles",
        "throughput_gbps",
    ):
        assert getattr(scalar_report, name) == getattr(
            batch_report, name
        ), name
    assert scalar_report.normal_flows == batch_report.normal_flows
    assert scalar_report.fastpath_flows == batch_report.fastpath_flows


@pytest.mark.parametrize(
    "ideal,fastpath_bytes,offered",
    [
        (True, None, None),
        (True, None, 20.0),
        (False, 2048, None),  # SketchVisor, fast path engaged
        (False, 2048, 40.0),
        (False, None, None),  # NoFastPath (blocking)
    ],
)
@pytest.mark.parametrize("name", ["countmin", "mrac", "countsketch"])
def test_switch_batch_reproduces_scalar_report(
    trace, name, ideal, fastpath_bytes, offered
):
    factory = SKETCH_FACTORIES[name]
    scalar_report, scalar_sketch = _run_switch(
        trace,
        ideal=ideal,
        fastpath_bytes=fastpath_bytes,
        offered=offered,
        batch=False,
        factory=factory,
    )
    batch_report, batch_sketch = _run_switch(
        trace,
        ideal=ideal,
        fastpath_bytes=fastpath_bytes,
        offered=offered,
        batch=True,
        factory=factory,
    )
    _assert_reports_equal(scalar_report, batch_report)
    assert np.array_equal(
        scalar_sketch.to_matrix(), batch_sketch.to_matrix()
    )


def test_switch_batch_fastpath_actually_engaged(trace):
    """Guard: the SketchVisor arm above must exercise overflow routing."""
    report, _ = _run_switch(
        trace,
        ideal=False,
        fastpath_bytes=2048,
        offered=None,
        batch=True,
        factory=SKETCH_FACTORIES["countmin"],
    )
    assert report.fastpath_packets > 0


def test_switch_batch_scalar_fallback_sketch(trace):
    """Non-key64 sketches run the per-packet fallback, still identical."""
    scalar_report, scalar_sketch = _run_switch(
        trace,
        ideal=False,
        fastpath_bytes=2048,
        offered=None,
        batch=False,
        factory=lambda: UnivMon(seed=3),
    )
    batch_report, batch_sketch = _run_switch(
        trace,
        ideal=False,
        fastpath_bytes=2048,
        offered=None,
        batch=True,
        factory=lambda: UnivMon(seed=3),
    )
    _assert_reports_equal(scalar_report, batch_report)
    assert np.array_equal(
        scalar_sketch.to_matrix(), batch_sketch.to_matrix()
    )


def test_switch_batch_empty_trace():
    from repro.traffic.trace import Trace

    scalar_report, _ = _run_switch(
        Trace([]),
        ideal=True,
        fastpath_bytes=None,
        offered=None,
        batch=False,
        factory=SKETCH_FACTORIES["countmin"],
    )
    batch_report, _ = _run_switch(
        Trace([]),
        ideal=True,
        fastpath_bytes=None,
        offered=None,
        batch=True,
        factory=SKETCH_FACTORIES["countmin"],
    )
    _assert_reports_equal(scalar_report, batch_report)


# ----------------------------------------------------------------------
# Pipeline level: batch + parallel workers leave results unchanged.
# ----------------------------------------------------------------------
def _run_pipeline(trace, truth, *, batch, workers):
    pipeline = SketchVisorPipeline(
        HeavyHitterTask("univmon", threshold=0.001),
        dataplane=DataPlaneMode.SKETCHVISOR,
        config=PipelineConfig(
            num_hosts=2, batch=batch, workers=workers
        ),
    )
    return pipeline.run_epoch(trace, truth)


def test_pipeline_batch_and_parallel_identical(trace):
    truth = GroundTruth.from_trace(trace)
    serial = _run_pipeline(trace, truth, batch=False, workers=1)
    batched = _run_pipeline(trace, truth, batch=True, workers=1)
    parallel = _run_pipeline(trace, truth, batch=True, workers=2)
    reference = serial.network.sketch.to_matrix()
    for result in (batched, parallel):
        assert np.array_equal(
            reference, result.network.sketch.to_matrix()
        )
        assert [
            r.switch.throughput_gbps for r in serial.reports
        ] == [r.switch.throughput_gbps for r in result.reports]
        assert [
            r.switch.normal_flows for r in serial.reports
        ] == [r.switch.normal_flows for r in result.reports]


# ----------------------------------------------------------------------
# Columnar trace + cached key64 invariants the batch engine relies on.
# ----------------------------------------------------------------------
def test_trace_columns_match_packets(trace):
    assert np.array_equal(
        trace.key64,
        np.array([p.flow.key64 for p in trace], dtype=np.uint64),
    )
    assert np.array_equal(
        trace.sizes, np.array([p.size for p in trace], dtype=np.int64)
    )
    assert np.array_equal(
        trace.timestamps, np.array([p.timestamp for p in trace])
    )
    # Columns are cached (same object) and read-only.
    assert trace.key64 is trace.key64
    with pytest.raises(ValueError):
        trace.key64[0] = 0


def test_partition_shards_inherit_columns(trace):
    shards = trace.partition(3)
    assert sum(len(s) for s in shards) == len(trace)
    for shard in shards:
        assert np.array_equal(
            shard.key64,
            np.array([p.flow.key64 for p in shard], dtype=np.uint64),
        )
        assert np.array_equal(
            shard.sizes, np.array([p.size for p in shard])
        )


def test_flowkey_key64_precomputed():
    key = FlowKey(0x0A000001, 0x0A000002, 1234, 80)
    # The cached slot exists and equals the documented fold formula.
    from repro.common.hashing import mix64

    packed = key.key104
    expected = mix64((packed >> 64) ^ (packed & ((1 << 64) - 1)))
    assert key._key64 == expected
    assert key.key64 == expected
    # Cache is excluded from equality/hash.
    assert key == FlowKey(0x0A000001, 0x0A000002, 1234, 80)
    assert hash(key) == hash(FlowKey(0x0A000001, 0x0A000002, 1234, 80))
