"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestGenerateInspect:
    def test_generate_npz(self, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        assert main(["generate", str(path), "--flows", "200"]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "200 flows" in out

    def test_generate_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert main(["generate", str(path), "--flows", "100"]) == 0
        assert path.read_text().startswith("timestamp,")

    def test_inspect(self, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        main(["generate", str(path), "--flows", "150", "--seed", "3"])
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flows          : 150" in out
        assert "entropy" in out


class TestRun:
    def test_run_generated(self, capsys):
        code = main(
            [
                "run",
                "--task",
                "cardinality",
                "--solution",
                "lc",
                "--flows",
                "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "relative error" in out
        assert "throughput" in out

    def test_run_from_file(self, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        main(["generate", str(path), "--flows", "300"])
        capsys.readouterr()
        code = main(
            [
                "run",
                "--trace-file",
                str(path),
                "--task",
                "heavy_hitter",
                "--solution",
                "flowradar",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recall" in out

    def test_bad_task_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--task", "bogus"])

    def test_multicore_run(self, capsys):
        code = main(
            [
                "run",
                "--task",
                "heavy_hitter",
                "--solution",
                "flowradar",
                "--flows",
                "400",
                "--cores",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cores           : 2" in out
        assert "recall" in out

    def test_convert_roundtrip(self, tmp_path, capsys):
        npz = tmp_path / "t.npz"
        pcap = tmp_path / "t.pcap"
        csv = tmp_path / "t.csv"
        main(["generate", str(npz), "--flows", "120"])
        assert main(["convert", str(npz), str(pcap)]) == 0
        assert main(["convert", str(pcap), str(csv)]) == 0
        out = capsys.readouterr().out
        assert "converted" in out
        assert csv.read_text().startswith("timestamp,")

    def test_bench_summary_missing_dir(self, tmp_path):
        assert (
            main(
                [
                    "bench-summary",
                    "--results-dir",
                    str(tmp_path / "none"),
                ]
            )
            == 1
        )

    def test_bench_summary_lists_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig01.txt").write_text("Title line\n====\nrow\n")
        code = main(
            ["bench-summary", "--results-dir", str(results), "--full"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "row" in out

    def test_dataplane_choices(self, capsys):
        code = main(
            [
                "run",
                "--task",
                "cardinality",
                "--solution",
                "kmin",
                "--flows",
                "300",
                "--dataplane",
                "ideal",
                "--recovery",
                "nr",
            ]
        )
        assert code == 0
        assert "ideal" in capsys.readouterr().out


class TestAccuracyCLI:
    def _slo_file(self, tmp_path, threshold=1.1):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "rules": [
                        {
                            "name": "recall-floor",
                            "metric": (
                                "sketchvisor_accuracy_empirical_hh_recall"
                            ),
                            "op": ">=",
                            "threshold": threshold,
                        }
                    ]
                }
            )
        )
        return path

    def test_run_with_breaching_slo(self, tmp_path, capsys):
        dump = tmp_path / "recorder.json"
        code = main(
            [
                "run",
                "--task", "heavy_hitter",
                "--solution", "deltoid",
                "--flows", "600",
                "--shadow-samples", "64",
                "--slo", str(self._slo_file(tmp_path)),
                "--recorder-out", str(dump),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ACCURACY_SLO_BREACH" in out
        assert "empirical ARE" in out
        assert "flight recorder" in out
        loaded = json.loads(dump.read_text())
        assert loaded["reason"] == "slo_breach"
        assert loaded["events"][-1]["kind"] == "slo_breach"

    def test_run_with_satisfied_slo(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--task", "heavy_hitter",
                "--solution", "deltoid",
                "--flows", "600",
                "--shadow-samples", "64",
                "--slo", str(self._slo_file(tmp_path, threshold=0.0)),
            ]
        )
        assert code == 0
        assert "ACCURACY_SLO_BREACH" not in capsys.readouterr().out

    def test_telemetry_format_and_output(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        code = main(
            [
                "telemetry",
                "--flows", "400",
                "--no-tree",
                "--format", "prom",
                "--output", str(prom),
            ]
        )
        assert code == 0
        text = prom.read_text()
        assert "# TYPE sketchvisor_switch_packets_total counter" in text
        capsys.readouterr()
        code = main(
            [
                "telemetry",
                "--flows", "400",
                "--no-tree",
                "--format", "json",
            ]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "sketchvisor_switch_packets_total" in snapshot["metrics"]

    def test_telemetry_includes_durability_counters(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "telemetry",
                "--flows", "400",
                "--no-tree",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--format", "prom",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sketchvisor_checkpoint_writes_total" in out

    def test_dash_plain_and_html(self, tmp_path, capsys):
        html = tmp_path / "report.html"
        code = main(
            [
                "dash",
                "--epochs", "2",
                "--flows", "400",
                "--shadow-samples", "32",
                "--plain",
                "--html", str(html),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "throughput_gbps" in out
        document = html.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "viz-root" in document
        payload = json.loads(
            document.split('id="dash-data">')[1].split("</script>")[0]
        )
        assert len(payload["rows"]) == 2


class TestClusterCli:
    """``run --cluster`` exit codes and the ``--soak`` loop."""

    def _quorum_fail_plan(self, tmp_path):
        """Pin PARTITION on 3 of 4 hosts: below the 50% quorum."""
        from repro.faults import FaultPlan
        from repro.faults.plan import FaultKind, FaultSpec

        path = tmp_path / "quorum_fail.json"
        FaultPlan(
            seed=3,
            specs=[
                FaultSpec(kind=FaultKind.PARTITION, host=host)
                for host in (0, 1, 2)
            ],
        ).save(path)
        return path

    def test_cluster_below_quorum_exits_nonzero(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "run",
                "--cluster", "4",
                "--aggregators", "2",
                "--flows", "300",
                "--chaos", str(self._quorum_fail_plan(tmp_path)),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "QUORUM FAILED" in captured.err
        assert "quorum requires 2" in captured.err

    def test_soak_runs_multiple_epochs(self, capsys):
        code = main(
            [
                "run",
                "--cluster", "8",
                "--aggregators", "3",
                "--flows", "300",
                "--soak", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch   0:" in out
        assert "epoch   1:" in out
        assert "soak" in out
        assert "0 quorum failure(s)" in out

    def test_soak_quorum_failures_exit_nonzero(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "run",
                "--cluster", "4",
                "--aggregators", "2",
                "--flows", "300",
                "--chaos", str(self._quorum_fail_plan(tmp_path)),
                "--soak", "2",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "QUORUM FAILED" in out
        assert "2 quorum failure(s)" in out
