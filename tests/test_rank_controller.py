"""Rank analysis (Figure 5) and the controller aggregation path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import MergeError
from repro.controlplane.controller import Controller
from repro.controlplane.rank_analysis import (
    low_rank_error_curve,
    ratio_for_error,
)
from repro.controlplane.recovery import RecoveryMode
from repro.dataplane.host import Host
from repro.sketches.countmin import CountMinSketch
from repro.sketches.deltoid import Deltoid
from repro.sketches.twolevel import TwoLevelSketch


class TestRankAnalysis:
    def test_rank_one_matrix(self):
        matrix = np.outer(np.arange(1, 11), np.arange(1, 21))
        curve = dict(low_rank_error_curve(matrix))
        assert curve[0.0] == pytest.approx(1.0)
        assert curve[0.1] == pytest.approx(0.0, abs=1e-9)
        assert ratio_for_error(matrix) <= 0.1

    def test_full_rank_random_matrix(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(20, 20))
        assert ratio_for_error(matrix, 0.1) > 0.5

    def test_zero_matrix(self):
        curve = low_rank_error_curve(np.zeros((5, 5)))
        assert all(error == 0.0 for _q, error in curve)
        assert ratio_for_error(np.zeros((5, 5))) == 0.0

    def test_curve_monotone_decreasing(self, small_trace):
        sketch = Deltoid(width=128, depth=4)
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        curve = low_rank_error_curve(sketch.to_matrix())
        errors = [error for _q, error in curve]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_figure5_ordering(self, medium_trace):
        """TwoLevel < Deltoid in singular values needed (Figure 5);
        Count-Min has essentially no low-rank structure."""
        deltoid = Deltoid(width=128, depth=4)
        twolevel = TwoLevelSketch(outer_width=256, inner_width=64)
        countmin = CountMinSketch(width=2048, depth=4)
        for packet in medium_trace:
            deltoid.update(packet.flow, packet.size)
            twolevel.update(packet.flow, packet.size)
            countmin.update(packet.flow, packet.size)
        r_twolevel = ratio_for_error(twolevel.to_matrix())
        r_deltoid = ratio_for_error(deltoid.to_matrix())
        r_countmin = ratio_for_error(countmin.to_matrix())
        assert r_twolevel < r_deltoid
        assert r_countmin > 0.7  # rank == depth: no compression


class TestController:
    def test_aggregate_requires_reports(self):
        with pytest.raises(MergeError):
            Controller().aggregate([])

    def test_aggregate_counts_hosts(self, medium_trace):
        shards = medium_trace.partition(3)
        reports = [
            Host(
                i, Deltoid(width=256, depth=4, seed=4), fastpath_bytes=8192
            ).run_epoch(shard)
            for i, shard in enumerate(shards)
        ]
        result = Controller(RecoveryMode.LOWER).aggregate(reports)
        assert result.num_hosts == 3
        assert result.snapshot is not None
        assert result.snapshot.total_bytes == pytest.approx(
            sum(r.switch.fastpath_bytes for r in reports)
        )

    def test_recovery_mode_flows_through(self, small_trace):
        reports = [
            Host(
                0, Deltoid(width=256, depth=4, seed=4), fastpath_bytes=8192
            ).run_epoch(small_trace)
        ]
        nr = Controller(RecoveryMode.NO_RECOVERY).aggregate(reports)
        lr = Controller(RecoveryMode.LOWER).aggregate(reports)
        assert not nr.flow_estimates
        assert lr.flow_estimates
