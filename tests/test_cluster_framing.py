"""FrameAssembler: stream reassembly and hostile-bytes robustness.

The property sweeps reuse the corruption generators from the fault
injector (seeded truncation and bit-flips) and push the mangled bytes
through a *real* socket pair in arbitrary chunkings, asserting the
receiver path (assembler + ``decode_report``) always terminates in one
of exactly three states: a decoded report, a raised
``CorruptFrameError``, or an incomplete tail awaiting bytes — never a
hang, never an unhandled exception, never a mis-split next frame.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import zlib

import pytest

from repro.cluster import (
    ACK,
    DEFAULT_MAX_FRAME_BYTES,
    AggregatorListener,
    ClusterConfig,
    FrameAssembler,
    HostChannel,
)
from repro.common.errors import ConfigError, CorruptFrameError
from repro.controlplane.transport import (
    CollectionStats,
    decode_report,
    encode_report,
)
from repro.dataplane.host import Host
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.sketches.countmin import CountMinSketch
from repro.traffic.generator import TraceConfig, generate_trace


@pytest.fixture(scope="module")
def frame():
    trace = generate_trace(TraceConfig(num_flows=200, seed=3))
    host = Host(
        1, CountMinSketch(width=256, depth=2, seed=2), fastpath_bytes=4096
    )
    return encode_report(host.run_epoch(trace), epoch=7)


def chunked(data: bytes, rng: random.Random):
    """Yield ``data`` in random-sized chunks (1..4096 bytes)."""
    offset = 0
    while offset < len(data):
        size = rng.randrange(1, 4097)
        yield data[offset : offset + size]
        offset += size


def through_socket(data: bytes, rng: random.Random) -> bytes:
    """Round-trip bytes through a real connected socket pair so the
    kernel (not the test) decides the read-side chunking."""
    left, right = socket.socketpair()
    received = bytearray()
    try:
        left.setblocking(True)
        right.settimeout(5.0)
        for chunk in chunked(data, rng):
            left.sendall(chunk)
        left.shutdown(socket.SHUT_WR)
        while True:
            piece = right.recv(8192)
            if not piece:
                break
            received.extend(piece)
    finally:
        left.close()
        right.close()
    return bytes(received)


class TestReassembly:
    def test_single_frame_any_chunking(self, frame):
        rng = random.Random(0)
        for _ in range(20):
            assembler = FrameAssembler()
            frames = []
            for chunk in chunked(frame, rng):
                frames.extend(assembler.feed(chunk))
            assert frames == [frame]
            assert not assembler.mid_frame

    def test_back_to_back_frames_split_exactly(self, frame):
        rng = random.Random(1)
        stream = frame * 5
        assembler = FrameAssembler()
        frames = []
        for chunk in chunked(stream, rng):
            frames.extend(assembler.feed(chunk))
        assert frames == [frame] * 5

    def test_byte_at_a_time(self, frame):
        assembler = FrameAssembler()
        frames = []
        for i in range(len(frame)):
            frames.extend(assembler.feed(frame[i : i + 1]))
        assert frames == [frame]

    def test_partial_tail_reported(self, frame):
        assembler = FrameAssembler()
        assert assembler.feed(frame[:-10]) == []
        assert assembler.mid_frame
        assert assembler.pending_bytes == len(frame) - 10
        assert assembler.feed(frame[-10:]) == [frame]
        assert not assembler.mid_frame

    def test_frames_survive_a_real_socket(self, frame):
        rng = random.Random(2)
        stream = frame * 3
        received = through_socket(stream, rng)
        assembler = FrameAssembler()
        frames = assembler.feed(received)
        assert frames == [frame] * 3
        for got in frames:
            report = decode_report(got)
            assert report.host_id == 1


class TestHostileStreams:
    def test_bad_magic_poisons_stream(self, frame):
        assembler = FrameAssembler()
        with pytest.raises(CorruptFrameError, match="magic"):
            assembler.feed(b"XXXX" + frame)

    def test_unknown_version_rejected(self, frame):
        mangled = bytearray(frame)
        mangled[4] = 9
        with pytest.raises(CorruptFrameError, match="version"):
            FrameAssembler().feed(bytes(mangled))

    def test_oversized_declared_length_rejected(self, frame):
        header = struct.pack(
            ">4sBIIII", b"SKVR", 2, 1, 7, 1 << 30, 0
        )
        with pytest.raises(CorruptFrameError, match="ceiling"):
            FrameAssembler(max_frame_bytes=1 << 20).feed(header)

    def test_trailing_garbage_after_frame_detected(self, frame):
        assembler = FrameAssembler()
        with pytest.raises(CorruptFrameError):
            # The valid frame pops cleanly; the garbage behind it
            # cannot start a frame.
            assembler.feed(frame + b"\xde\xad\xbe\xef\x00")

    def test_truncation_sweep_off_a_real_socket(self, frame):
        """Seeded truncations: the stream always ends mid-frame (the
        tail is discardable) or, when the cut lands inside the probe
        of a *next* frame, stays pending — decode never sees a frame
        that lies about its length."""
        injector = FaultInjector(FaultPlan(seed=5))
        rng = random.Random(3)
        for attempt in range(40):
            cut = injector.truncate(frame, 0, 1, attempt)
            received = through_socket(cut, rng) if cut else b""
            assembler = FrameAssembler()
            frames = assembler.feed(received)
            assert frames == []  # at least one byte is always lost
            assert assembler.pending_bytes == len(cut)

    def test_bitflip_sweep_off_a_real_socket(self, frame):
        """Seeded single-bit flips anywhere in the frame: every
        outcome is a classified rejection or a CRC/decode failure —
        silent acceptance of corrupted payload bytes is the only
        forbidden result."""
        injector = FaultInjector(FaultPlan(seed=6))
        rng = random.Random(4)
        outcomes = {"assembler": 0, "decode": 0, "pending": 0, "ok": 0}
        for attempt in range(60):
            flipped = injector.bitflip(frame, 0, 1, attempt)
            received = through_socket(flipped, rng)
            assembler = FrameAssembler()
            try:
                frames = assembler.feed(received)
            except CorruptFrameError:
                outcomes["assembler"] += 1
                continue
            if not frames:
                outcomes["pending"] += 1  # length field grew
                continue
            for got in frames:
                try:
                    report = decode_report(got)
                except ConfigError:
                    # CorruptFrameError or an unpickle rejection —
                    # both classified, both safe.
                    outcomes["decode"] += 1
                else:
                    # A flip that decodes must have hit the epoch
                    # field (the only header field without a payload
                    # cross-check) — the stale-epoch gate upstream
                    # owns that case.
                    outcomes["ok"] += 1
                    assert report.host_id == 1
        assert outcomes["assembler"] + outcomes["decode"] > 0
        assert outcomes["decode"] > 0

    def test_garbage_streams_never_hang(self):
        rng = random.Random(7)
        for _ in range(30):
            blob = bytes(
                rng.randrange(256)
                for _ in range(rng.randrange(1, 2000))
            )
            assembler = FrameAssembler()
            try:
                frames = assembler.feed(through_socket(blob, rng))
            except CorruptFrameError:
                continue
            for got in frames:
                with pytest.raises(ConfigError):
                    decode_report(got)

    def test_interleaved_good_and_truncated_final_frame(self, frame):
        """A clean frame followed by a truncated one: the good frame
        decodes, the tail stays pending for EOF discard."""
        injector = FaultInjector(FaultPlan(seed=8))
        cut = injector.truncate(frame, 1, 1, 0)
        assembler = FrameAssembler()
        frames = assembler.feed(frame + cut)
        assert frames == [frame]
        assert assembler.mid_frame
        assert assembler.pending_bytes == len(cut)


class TestListenerExchange:
    """Live ``AggregatorListener`` exchanges: reassembly across many
    TCP writes while slow peers stall alongside, and ACK delivery for
    an in-flight connection during listener drain."""

    def _frame(self, host_id: int) -> bytes:
        trace = generate_trace(TraceConfig(num_flows=120, seed=4))
        host = Host(
            host_id,
            CountMinSketch(width=256, depth=2, seed=2),
            fastpath_bytes=4096,
        )
        return encode_report(host.run_epoch(trace), epoch=7)

    def _listener(self, sink, stats, idle_timeout=0.2):
        return AggregatorListener(
            0,
            7,
            sink,
            stats,
            seen=set(),
            delivered=set(),
            idle_timeout=idle_timeout,
            max_frame_bytes=DEFAULT_MAX_FRAME_BYTES,
        )

    def test_multi_chunk_frame_interleaved_with_slow_peers(self):
        """One sender dribbles its frame across 5 paced TCP writes
        while a slow-peer channel stalls mid-frame on the same
        listener: the dribbled frame is reassembled and ACKed, the
        slow peer is hung up on and succeeds on retry."""

        async def run():
            stats = CollectionStats()
            got: list = []
            listener = self._listener(got.append, stats)
            address = await listener.start("127.0.0.1", 0)
            frame_a, frame_b = self._frame(1), self._frame(2)

            async def chunked_sender() -> bytes:
                reader, writer = await asyncio.open_connection(
                    *address
                )
                try:
                    step = max(1, len(frame_a) // 5)
                    chunks = [
                        frame_a[i : i + step]
                        for i in range(0, len(frame_a), step)
                    ]
                    assert len(chunks) >= 3
                    for chunk in chunks:
                        writer.write(chunk)
                        await writer.drain()
                        # Pause between writes — long enough that the
                        # kernel flushes each as its own segment, well
                        # under the listener's idle deadline.
                        await asyncio.sleep(0.03)
                    return await asyncio.wait_for(
                        reader.readexactly(1), timeout=5.0
                    )
                finally:
                    writer.close()

            cfg = ClusterConfig(
                connect_timeout=2.0,
                ack_timeout=2.0,
                idle_timeout=0.2,
                backoff_base=0.002,
            )
            channel = HostChannel(
                2,
                7,
                frame_factory=lambda: frame_b,
                address=address,
                config=cfg,
                stats=stats,
                faults=[FaultKind.SLOW_PEER],
            )
            ack, delivered = await asyncio.gather(
                chunked_sender(), channel.deliver()
            )
            await listener.close(1.0)
            assert ack == ACK
            assert delivered == frame_b
            assert stats.slow_peers == 1
            assert stats.retries == 1
            assert stats.corrupt_frames == 0
            assert sorted(report.host_id for report in got) == [1, 2]

        asyncio.run(run())

    def test_ack_reaches_client_during_listener_drain(self):
        """``close(drain_timeout)`` stops accepting immediately but
        the in-flight connection finishes its exchange: the tail of a
        parked frame still lands, decodes, and is ACKed inside the
        drain window."""

        async def run():
            stats = CollectionStats()
            got: list = []
            listener = self._listener(got.append, stats)
            address = await listener.start("127.0.0.1", 0)
            frame = self._frame(1)
            reader, writer = await asyncio.open_connection(*address)
            try:
                writer.write(frame[:-6])
                await writer.drain()
                # Let the handler pick up the partial frame before the
                # drain starts.
                await asyncio.sleep(0.05)
                close_task = asyncio.create_task(listener.close(2.0))
                await asyncio.sleep(0.05)
                # The server socket is gone: new connections fail ...
                refused = False
                try:
                    _, probe = await asyncio.wait_for(
                        asyncio.open_connection(*address), timeout=0.5
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                ):
                    refused = True
                else:
                    probe.close()
                assert refused
                # ... but the parked exchange still completes.
                writer.write(frame[-6:])
                await writer.drain()
                ack = await asyncio.wait_for(
                    reader.readexactly(1), timeout=5.0
                )
                assert ack == ACK
            finally:
                writer.close()
            await close_task
            assert [report.host_id for report in got] == [1]
            assert stats.corrupt_frames == 0

        asyncio.run(run())
