"""Recovery internals: boundaries, count anchoring, synthetic flows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.controlplane.lens import LensConfig, lens_interpolate
from repro.controlplane.recovery import (
    _inject_synthetic_small_flows,
    _missing_flow_count,
    _tracking_boundary,
)
from repro.fastpath.topk import FastPath, FastPathSnapshot, FlowEntry
from repro.sketches.countmin import CountMinSketch
from repro.sketches.deltoid import Deltoid
from tests.conftest import make_flow


def _snapshot(entries=None, V=0.0, E=0.0, inserts=0, evicted=0):
    return FastPathSnapshot(
        entries=entries or {},
        total_bytes=V,
        total_decremented=E,
        insert_count=inserts,
        evict_count=evicted,
    )


class TestTrackingBoundary:
    def test_empty_snapshot_default(self):
        assert _tracking_boundary(_snapshot()) == 1500.0

    def test_minimum_estimate(self):
        entries = {
            make_flow(1): FlowEntry(e=0, r=5000, d=0),
            make_flow(2): FlowEntry(e=0, r=700, d=100),
        }
        assert _tracking_boundary(_snapshot(entries)) == 800.0

    def test_floor_at_min_packet(self):
        entries = {make_flow(1): FlowEntry(e=0, r=10, d=0)}
        assert _tracking_boundary(_snapshot(entries)) > 64.0


class TestMissingFlowCount:
    def test_none_without_counters(self):
        assert _missing_flow_count(_snapshot()) is None

    def test_inserts_minus_half_evictions_minus_tracked(self):
        entries = {make_flow(i): FlowEntry(0, 100, 0) for i in range(10)}
        snapshot = _snapshot(entries, inserts=100, evicted=60)
        # hint = max(10, 100 - 30) = 70; missing = 70 - 10 = 60.
        assert _missing_flow_count(snapshot) == 60

    def test_never_negative(self):
        entries = {make_flow(i): FlowEntry(0, 100, 0) for i in range(10)}
        snapshot = _snapshot(entries, inserts=5, evicted=0)
        assert _missing_flow_count(snapshot) == 0


class TestSyntheticInjection:
    def test_mass_conserved(self):
        sketch = CountMinSketch(width=512, depth=1, seed=3)
        _inject_synthetic_small_flows(sketch, 100_000.0, 2000.0)
        assert sketch.counters.sum() == pytest.approx(
            100_000, rel=0.02
        )

    def test_count_anchored(self):
        sketch = CountMinSketch(width=50_000, depth=1, seed=3)
        _inject_synthetic_small_flows(
            sketch, 60_000.0, 2000.0, count=100
        )
        # ~100 flows, nearly all in distinct counters at this width.
        nonzero = int((sketch.counters > 0).sum())
        assert 90 <= nonzero <= 100

    def test_zero_volume_noop(self):
        sketch = CountMinSketch(width=64, depth=1)
        _inject_synthetic_small_flows(sketch, 0.0, 1000.0)
        assert sketch.counters.sum() == 0

    def test_zero_count_noop(self):
        sketch = CountMinSketch(width=64, depth=1)
        _inject_synthetic_small_flows(sketch, 5000.0, 1000.0, count=0)
        assert sketch.counters.sum() == 0

    def test_deterministic_per_seed(self):
        a = CountMinSketch(width=512, depth=2, seed=7)
        b = CountMinSketch(width=512, depth=2, seed=7)
        _inject_synthetic_small_flows(a, 50_000.0, 1500.0)
        _inject_synthetic_small_flows(b, 50_000.0, 1500.0)
        assert np.array_equal(a.counters, b.counters)


class TestFastPathCounters:
    def test_insert_and_reject_accounting(self):
        from repro.fastpath.topk import ENTRY_BYTES

        fastpath = FastPath(memory_bytes=3 * ENTRY_BYTES)
        fastpath.update(make_flow(1), 10_000)
        fastpath.update(make_flow(2), 10_000)
        fastpath.update(make_flow(3), 10_000)
        assert fastpath.num_inserts == 3
        # Table full; a tiny flow is rejected by the v > e gate.
        fastpath.update(make_flow(4), 1)
        assert fastpath.num_rejected >= 1 or fastpath.num_inserts == 4

    def test_snapshot_carries_counters(self):
        fastpath = FastPath(8192)
        for i in range(500):
            fastpath.update(make_flow(i), 100 + i)
        snapshot = fastpath.snapshot()
        assert snapshot.insert_count == fastpath.num_inserts
        assert snapshot.evict_count == fastpath.num_evicted
        assert snapshot.distinct_flow_hint >= len(snapshot.entries)


class TestLensShortcutAndEarlyStop:
    def _instance(self, low_rank):
        sketch_cls = Deltoid if low_rank else CountMinSketch
        sketch = (
            Deltoid(width=64, depth=2, seed=5)
            if low_rank
            else CountMinSketch(width=256, depth=4, seed=5)
        )
        for i in range(100, 300):
            sketch.update(make_flow(i), 500)
        flows = [make_flow(i) for i in range(10)]
        positions = [sketch.matrix_positions(f) for f in flows]
        lower = np.full(10, 900.0)
        upper = np.full(10, 1100.0)
        return sketch, positions, lower, upper

    def test_no_nuclear_shortcut_returns_midpoint(self):
        sketch, positions, lower, upper = self._instance(low_rank=False)
        result = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, 20_000.0,
            low_rank=False,
        )
        assert result.iterations == 0
        assert result.converged
        assert np.allclose(result.x, 1000.0)

    def test_early_stop_bounded_iterations(self):
        sketch, positions, lower, upper = self._instance(low_rank=True)
        eager = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, 15_000.0,
            low_rank=True,
            config=LensConfig(
                max_iterations=50, x_stability_tolerance=1e-2
            ),
        )
        patient = lens_interpolate(
            sketch.to_matrix(), positions, lower, upper, 15_000.0,
            low_rank=True,
            config=LensConfig(
                max_iterations=50, x_stability_tolerance=None,
                tolerance=1e-12,
            ),
        )
        assert eager.iterations <= patient.iterations
        # Early stop does not move the estimates meaningfully.
        assert np.allclose(eager.x, patient.x, rtol=0.05, atol=20.0)
