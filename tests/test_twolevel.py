"""TwoLevel sketch: distinct-spread estimation in volume form."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey, Packet
from repro.sketches.twolevel import TwoLevelSketch
from repro.traffic.anomalies import inject_ddos_victims
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace


def _attack_trace(num_sources=100, victim=777):
    packets = [
        Packet(FlowKey(1000 + s, victim, 2000 + s, 80), 120, s * 0.001)
        for s in range(num_sources)
    ]
    return Trace(packets)


class TestSpreadEstimation:
    def test_estimate_near_truth(self):
        sketch = TwoLevelSketch(mode="ddos", inner_width=256)
        for packet in _attack_trace(num_sources=150):
            sketch.update(packet.flow, packet.size)
        estimate = sketch.estimate_spread(777)
        assert estimate == pytest.approx(150, rel=0.25)

    def test_small_spread_small_estimate(self):
        sketch = TwoLevelSketch(mode="ddos")
        for packet in _attack_trace(num_sources=3):
            sketch.update(packet.flow, packet.size)
        assert sketch.estimate_spread(777) < 20

    def test_repeated_packets_do_not_inflate(self):
        sketch = TwoLevelSketch(mode="ddos", inner_width=256)
        trace = _attack_trace(num_sources=50)
        for _ in range(5):  # replay the same sources five times
            for packet in trace:
                sketch.update(packet.flow, packet.size)
        assert sketch.estimate_spread(777) == pytest.approx(50, rel=0.3)

    def test_modes_swap_roles(self):
        ddos = TwoLevelSketch(mode="ddos")
        spread = TwoLevelSketch(mode="superspreader")
        flow = FlowKey(1, 2, 3, 4)
        assert ddos._keys(flow) == (2, 1)
        assert spread._keys(flow) == (1, 2)

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            TwoLevelSketch(mode="bogus")


class TestDetection:
    def test_detects_injected_victims(self, small_trace):
        trace, victims = inject_ddos_victims(
            small_trace, num_victims=2, sources_per_victim=150
        )
        sketch = TwoLevelSketch(mode="ddos", inner_width=256)
        for packet in trace:
            sketch.update(packet.flow, packet.size)
        detected = sketch.detect(spread_threshold=80)
        assert set(victims) <= set(detected)

    def test_detection_threshold_filters(self, small_trace):
        trace, victims = inject_ddos_victims(
            small_trace, num_victims=1, sources_per_victim=60
        )
        sketch = TwoLevelSketch(mode="ddos", inner_width=256)
        for packet in trace:
            sketch.update(packet.flow, packet.size)
        assert victims[0] not in sketch.detect(spread_threshold=500)


class TestAlgebra:
    def test_merge_equals_union(self, small_trace):
        whole = TwoLevelSketch(seed=3)
        a = TwoLevelSketch(seed=3)
        b = TwoLevelSketch(seed=3)
        for index, packet in enumerate(small_trace):
            whole.update(packet.flow, packet.size)
            (a if index % 2 else b).update(packet.flow, packet.size)
        a.merge(b)
        assert np.array_equal(a.counters, whole.counters)
        assert np.array_equal(
            a.candidates.counters, whole.candidates.counters
        )

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            TwoLevelSketch(mode="ddos").merge(
                TwoLevelSketch(mode="superspreader")
            )

    def test_matrix_roundtrip(self, small_trace):
        sketch = TwoLevelSketch()
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert np.array_equal(clone.counters, sketch.counters)

    def test_positions_match_update(self):
        sketch = TwoLevelSketch()
        flow = FlowKey(11, 22, 33, 44)
        sketch.update(flow, 100)
        replayed = np.zeros_like(sketch.to_matrix())
        for row, col, coef in sketch.matrix_positions(flow):
            replayed[row, col] += 100 * coef
        # The candidate RevSketch is outside the matrix; only the inner
        # counter planes must match.
        assert np.array_equal(replayed, sketch.to_matrix())

    def test_paper_config_dimensions(self):
        sketch = TwoLevelSketch.paper_config()
        assert sketch.outer_width == 4000
        assert sketch.inner_width == 250

    def test_volume_form_counters_hold_bytes(self):
        sketch = TwoLevelSketch()
        sketch.update_pair(1, 2, 700)
        per_update = sketch.outer_depth * sketch.inner_depth
        assert sketch.counters.sum() == pytest.approx(700 * per_update)
