"""Cross-module integration scenarios: the system as a user runs it."""

from __future__ import annotations

import pytest

from repro import (
    CardinalityTask,
    DataPlaneMode,
    GroundTruth,
    HeavyChangerTask,
    HeavyHitterTask,
    PipelineConfig,
    RecoveryMode,
    SketchVisorPipeline,
    TraceConfig,
    generate_trace,
)
from repro.traffic.generator import generate_epochs


class TestMultiEpochMonitoring:
    def test_three_epoch_hh_stream(self):
        """Per-epoch reset semantics: each epoch scored independently."""
        epochs = generate_epochs(
            TraceConfig(num_flows=1200, seed=3), num_epochs=3
        )
        for epoch in epochs:
            truth = GroundTruth.from_trace(epoch)
            threshold = 0.01 * truth.total_bytes
            task = HeavyHitterTask("flowradar", threshold=threshold)
            result = SketchVisorPipeline(task).run_epoch(epoch, truth)
            assert result.score.recall >= 0.9
            assert result.score.precision >= 0.9

    def test_heavy_changer_across_generated_epochs(self):
        epochs = generate_epochs(
            TraceConfig(num_flows=1200, seed=5), num_epochs=2
        )
        truth_a = GroundTruth.from_trace(epochs[0])
        truth_b = GroundTruth.from_trace(epochs[1])
        # Pick a threshold that some organic changes exceed.
        changes = truth_a.heavy_changers(truth_b, 0)
        threshold = sorted(changes.values())[-5]
        task = HeavyChangerTask("flowradar", threshold=threshold)
        result = SketchVisorPipeline(task).run_epoch_pair(
            epochs[0], epochs[1], truth_a, truth_b
        )
        assert result.score.recall >= 0.7


class TestConsistencyAcrossDeployments:
    def test_host_count_invariance_of_ideal(self):
        """Ideal results should not depend on how traffic is sharded."""
        trace = generate_trace(TraceConfig(num_flows=1000, seed=9))
        truth = GroundTruth.from_trace(trace)
        threshold = 0.01 * truth.total_bytes
        task = HeavyHitterTask("deltoid", threshold=threshold)
        answers = []
        for hosts in (1, 4):
            pipeline = SketchVisorPipeline(
                task,
                dataplane=DataPlaneMode.IDEAL,
                config=PipelineConfig(num_hosts=hosts),
            )
            result = pipeline.run_epoch(trace, truth)
            answers.append(set(result.answer))
        assert answers[0] == answers[1]

    def test_same_seed_same_results(self):
        trace = generate_trace(TraceConfig(num_flows=800, seed=4))
        truth = GroundTruth.from_trace(trace)
        task = CardinalityTask("lc")
        first = SketchVisorPipeline(task).run_epoch(trace, truth)
        second = SketchVisorPipeline(task).run_epoch(trace, truth)
        assert first.answer == pytest.approx(second.answer)


class TestRobustnessStory:
    """The paper's end-to-end claim, §1: robust = fast AND accurate
    under overload."""

    @pytest.fixture(scope="class")
    def overload_setup(self):
        trace = generate_trace(TraceConfig(num_flows=2500, seed=6))
        truth = GroundTruth.from_trace(trace)
        threshold = 0.005 * truth.total_bytes
        return trace, truth, threshold

    def test_throughput_and_accuracy_together(self, overload_setup):
        trace, truth, threshold = overload_setup
        task = HeavyHitterTask("deltoid", threshold=threshold)

        no_fastpath = SketchVisorPipeline(
            task, dataplane=DataPlaneMode.NO_FASTPATH
        ).run_epoch(trace, truth)
        sketchvisor = SketchVisorPipeline(
            task,
            dataplane=DataPlaneMode.SKETCHVISOR,
            recovery=RecoveryMode.SKETCHVISOR,
        ).run_epoch(trace, truth)

        # Robustness: faster AND still accurate.
        assert (
            sketchvisor.throughput_gbps
            > 2 * no_fastpath.throughput_gbps
        )
        assert sketchvisor.score.recall >= 0.9
        assert sketchvisor.score.relative_error < 0.1

    def test_recovery_bridges_the_fastpath_gap(self, overload_setup):
        trace, truth, threshold = overload_setup
        task = HeavyHitterTask("univmon", threshold=threshold)
        nr = SketchVisorPipeline(
            task, recovery=RecoveryMode.NO_RECOVERY
        ).run_epoch(trace, truth)
        sv = SketchVisorPipeline(
            task, recovery=RecoveryMode.SKETCHVISOR
        ).run_epoch(trace, truth)
        ideal = SketchVisorPipeline(
            task, dataplane=DataPlaneMode.IDEAL
        ).run_epoch(trace, truth)
        assert nr.score.recall < ideal.score.recall
        assert sv.score.recall >= ideal.score.recall - 0.1
