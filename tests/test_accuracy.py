"""Accuracy observability: error bounds, shadow sampling, SLO engine."""

from __future__ import annotations

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro import PipelineConfig, SketchVisorPipeline, Telemetry
from repro.common.errors import ConfigError
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.mrac import MRAC
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.telemetry.accuracy import (
    AccuracyObserver,
    ShadowSampler,
    SLOEngine,
    SLOPolicy,
    SLORule,
    sketch_error_bound,
)
from repro.telemetry.registry import MetricsRegistry
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(num_flows=600, seed=11))


@pytest.fixture(scope="module")
def truth(trace):
    return GroundTruth.from_trace(trace)


# ----------------------------------------------------------------------
class TestSketchErrorBound:
    """The published envelopes must be *sound*: across seeded trials
    the fraction of flows whose empirical error exceeds the bound must
    stay within the stated failure probability (plus sampling slack)."""

    def test_countmin_bound_sound_across_trials(self):
        depth = 4
        violations = 0
        queries = 0
        for seed in range(5):
            trial = generate_trace(
                TraceConfig(num_flows=400, seed=seed)
            )
            sketch = CountMinSketch(width=1024, depth=depth, seed=seed)
            sketch.update_batch(trial.key64, trial.sizes)
            bound, confidence = sketch_error_bound(sketch)
            assert bound > 0
            assert confidence == pytest.approx(1 - 0.5**depth)
            for flow, size in GroundTruth.from_trace(
                trial
            ).flow_bytes.items():
                error = sketch.estimate(flow) - size
                assert error >= -1e-9  # CM never underestimates
                queries += 1
                if error > bound:
                    violations += 1
        delta = 0.5**depth
        # Allow sampling slack on top of the stated delta.
        assert violations / queries <= delta + 0.05

    def test_countsketch_bound_sound_across_trials(self):
        depth = 5
        violations = 0
        queries = 0
        for seed in range(5):
            trial = generate_trace(
                TraceConfig(num_flows=400, seed=seed)
            )
            sketch = CountSketch(width=1024, depth=depth, seed=seed)
            sketch.update_batch(trial.key64, trial.sizes)
            bound, confidence = sketch_error_bound(sketch)
            assert bound > 0
            assert 0 < confidence < 1
            for flow, size in GroundTruth.from_trace(
                trial
            ).flow_bytes.items():
                queries += 1
                if abs(sketch.estimate(flow) - size) > bound:
                    violations += 1
        delta = 1 - confidence
        assert violations / queries <= delta + 0.05

    def test_countmin_bound_tracks_absorbed_volume(self, trace):
        sketch = CountMinSketch(width=2048, depth=4)
        sketch.update_batch(trace.key64, trace.sizes)
        bound, _ = sketch_error_bound(sketch)
        volume = float(trace.sizes.sum())
        assert bound == pytest.approx(math.e / 2048 * volume)

    def test_sketches_without_closed_form_return_none(self):
        assert sketch_error_bound(MRAC()) is None
        assert sketch_error_bound(object()) is None


# ----------------------------------------------------------------------
class TestShadowSampler:
    def test_sample_sizes_are_exact(self, trace, truth):
        sampler = ShadowSampler(sample_size=10_000, seed=1)
        sampler.observe_trace(trace)
        # Sample covers every flow; sizes must match ground truth.
        assert sampler.true_cardinality == truth.cardinality
        assert len(sampler.sample) == truth.cardinality
        for flow, size in sampler.sample.items():
            assert size == truth.flow_bytes[flow]

    def test_sampling_is_seeded_and_advances_per_epoch(self, trace):
        first = ShadowSampler(sample_size=32, seed=7)
        second = ShadowSampler(sample_size=32, seed=7)
        first.observe_trace(trace)
        second.observe_trace(trace)
        assert set(first.sample) == set(second.sample)
        # Epoch counter advances the stream: a re-observe resamples.
        second.observe_trace(trace)
        assert set(first.sample) != set(second.sample)

    def test_rejects_empty_sample(self):
        with pytest.raises(ConfigError):
            ShadowSampler(sample_size=0)

    def test_compare_exact_estimator_has_zero_error(self, trace, truth):
        sampler = ShadowSampler(sample_size=64, seed=3)
        sampler.observe_trace(trace)
        exact = SimpleNamespace(
            estimate=lambda flow: truth.flow_bytes[flow]
        )
        comparison = sampler.compare(
            SimpleNamespace(sketch=exact), bound_bytes=1.0
        )
        assert comparison.sampled_flows == 64
        assert comparison.flow_are == 0.0
        assert comparison.flow_max_re == 0.0
        assert comparison.bound_violations == 0

    def test_compare_counts_bound_violations(self, trace, truth):
        sampler = ShadowSampler(sample_size=64, seed=3)
        sampler.observe_trace(trace)
        off_by_ten = SimpleNamespace(
            estimate=lambda flow: truth.flow_bytes[flow] + 10.0
        )
        comparison = sampler.compare(
            SimpleNamespace(sketch=off_by_ten), bound_bytes=5.0
        )
        assert comparison.bound_violations == 64

    def test_compare_heavy_hitter_precision_recall(self, trace, truth):
        sampler = ShadowSampler(sample_size=10_000, seed=3)
        sampler.observe_trace(trace)
        threshold = 0.005 * truth.total_bytes
        heavy = truth.heavy_hitters(int(threshold))
        network = SimpleNamespace(sketch=SimpleNamespace())
        perfect = sampler.compare(
            network, answer=dict(heavy), hh_threshold=threshold
        )
        assert perfect.hh_recall == 1.0
        assert perfect.hh_precision == 1.0
        # Dropping half the heavy flows halves recall, not precision.
        partial = dict(list(heavy.items())[: len(heavy) // 2])
        lossy = sampler.compare(
            network, answer=partial, hh_threshold=threshold
        )
        assert lossy.hh_precision == 1.0
        assert lossy.hh_recall == pytest.approx(
            len(partial) / len(heavy)
        )

    def test_compare_cardinality_relative_error(self, trace, truth):
        sampler = ShadowSampler(sample_size=16, seed=3)
        sampler.observe_trace(trace)
        network = SimpleNamespace(sketch=SimpleNamespace())
        comparison = sampler.compare(
            network, answer=float(truth.cardinality) * 1.1
        )
        assert comparison.cardinality_re == pytest.approx(0.1)


# ----------------------------------------------------------------------
class TestSLOEngine:
    def _registry(self):
        registry = MetricsRegistry()
        registry.gauge("accuracy_are").set(0.4)
        registry.counter("faults_total").inc(3)
        return registry

    def test_value_mode_breach(self):
        registry = self._registry()
        policy = SLOPolicy.from_dict(
            {
                "rules": [
                    {"name": "are", "metric": "accuracy_are",
                     "op": "<=", "threshold": 0.25},
                    {"name": "ok", "metric": "accuracy_are",
                     "op": "<=", "threshold": 0.5},
                ]
            }
        )
        engine = SLOEngine(policy, registry)
        breaches = engine.evaluate(epoch=0)
        assert [b.rule for b in breaches] == ["are"]
        assert breaches[0].value == pytest.approx(0.4)
        assert registry.total("sketchvisor_slo_evaluations_total") == 1
        assert (
            registry.value("sketchvisor_slo_breaches_total", rule="are")
            == 1
        )

    def test_delta_mode_judges_per_epoch_increment(self):
        registry = self._registry()
        policy = SLOPolicy(
            rules=[
                SLORule(
                    name="fault-budget",
                    metric="faults_total",
                    op="<=",
                    threshold=2.0,
                    mode="delta",
                )
            ]
        )
        engine = SLOEngine(policy, registry)
        # First epoch sees the full running total (3 > 2): breach.
        assert len(engine.evaluate(epoch=0)) == 1
        # No increment since: delta is 0, within budget.
        assert engine.evaluate(epoch=1) == []
        registry.counter("faults_total").inc(5)
        assert len(engine.evaluate(epoch=2)) == 1

    def test_unpublished_metric_is_skipped(self):
        registry = self._registry()
        policy = SLOPolicy(
            rules=[
                SLORule(
                    name="ghost", metric="never_published",
                    op=">=", threshold=1.0,
                )
            ]
        )
        engine = SLOEngine(policy, registry)
        assert engine.evaluate(epoch=0) == []
        assert registry.total("sketchvisor_slo_breaches_total") == 0

    def test_labels_select_one_child(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("per_host")
        gauge.set(0.9, host="0")
        gauge.set(0.1, host="1")
        policy = SLOPolicy.from_dict(
            {
                "rules": [
                    {"name": "host0", "metric": "per_host",
                     "op": "<=", "threshold": 0.5,
                     "labels": {"host": "0"}},
                    {"name": "host1", "metric": "per_host",
                     "op": "<=", "threshold": 0.5,
                     "labels": {"host": "1"}},
                ]
            }
        )
        breaches = SLOEngine(policy, registry).evaluate(epoch=0)
        assert [b.rule for b in breaches] == ["host0"]

    def test_rule_validation(self):
        with pytest.raises(ConfigError):
            SLORule(name="bad", metric="x", op="~=", threshold=1.0)
        with pytest.raises(ConfigError):
            SLORule(
                name="bad", metric="x", op="<=", threshold=1.0,
                mode="rate",
            )
        with pytest.raises(ConfigError):
            SLOPolicy.from_dict({"rules": []})
        with pytest.raises(ConfigError):
            SLORule.from_dict({"op": "<=", "threshold": 1.0})

    def test_policy_json_round_trip(self, tmp_path):
        policy = SLOPolicy.from_dict(
            {
                "name": "prod",
                "rules": [
                    {"name": "are", "metric": "accuracy_are",
                     "op": "<=", "threshold": 0.25,
                     "labels": {"sketch": "countmin"},
                     "mode": "value"},
                ],
            }
        )
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(policy.to_dict()))
        loaded = SLOPolicy.load(path)
        assert loaded == policy
        with pytest.raises(ConfigError):
            SLOPolicy.load(tmp_path / "missing.json")


# ----------------------------------------------------------------------
class TestPipelineAccuracy:
    """End-to-end: the pipeline publishes accuracy telemetry, the SLO
    engine fires, and breaches reach the epoch result + recorder."""

    def _config(self, telemetry, **kwargs):
        return PipelineConfig(
            num_hosts=2, batch=True, telemetry=telemetry, **kwargs
        )

    def test_epoch_publishes_bounds_and_shadow_gauges(
        self, trace, truth
    ):
        telemetry = Telemetry()
        task = HeavyHitterTask(
            "univmon", threshold=0.005 * truth.total_bytes
        )
        pipeline = SketchVisorPipeline(
            task, config=self._config(telemetry, shadow_samples=64)
        )
        result = pipeline.run_epoch(trace, truth)
        registry = telemetry.registry
        assert result.slo_breaches == []
        assert (
            registry.total("sketchvisor_accuracy_fastpath_envelope_bytes")
            > 0
        )
        assert (
            registry.value(
                "sketchvisor_accuracy_recovered_bytes",
                component="normal",
            )
            is not None
        )
        assert (
            registry.total("sketchvisor_accuracy_shadow_flows") == 64
        )
        assert (
            registry.total("sketchvisor_accuracy_empirical_hh_recall")
            >= 0
        )

    def test_breach_reaches_result_recorder_and_dump(
        self, trace, truth, tmp_path
    ):
        telemetry = Telemetry()
        dump_path = tmp_path / "recorder.json"
        policy = SLOPolicy.from_dict(
            {
                "rules": [
                    {"name": "impossible-recall",
                     "metric": "sketchvisor_accuracy_empirical_hh_recall",
                     "op": ">=", "threshold": 1.1},
                ]
            }
        )
        task = HeavyHitterTask(
            "univmon", threshold=0.005 * truth.total_bytes
        )
        pipeline = SketchVisorPipeline(
            task,
            config=self._config(
                telemetry,
                shadow_samples=64,
                slo=policy,
                recorder_path=dump_path,
            ),
        )
        result = pipeline.run_epoch(trace, truth)
        assert [b.rule for b in result.slo_breaches] == [
            "impossible-recall"
        ]
        assert (
            telemetry.registry.value(
                "sketchvisor_slo_breaches_total",
                rule="impossible-recall",
            )
            == 1
        )
        breach_events = telemetry.recorder.events("slo_breach")
        assert len(breach_events) == 1
        assert breach_events[0].fields["rule"] == "impossible-recall"
        dump = json.loads(dump_path.read_text())
        assert dump["reason"] == "slo_breach"
        assert dump["events"][-1]["kind"] == "slo_breach"

    def test_slo_policy_loadable_from_path(
        self, trace, truth, tmp_path
    ):
        policy_path = tmp_path / "slo.json"
        policy_path.write_text(
            json.dumps(
                {
                    "rules": [
                        {"name": "floor",
                         "metric": "sketchvisor_accuracy_empirical_hh_recall",
                         "op": ">=", "threshold": 0.0}
                    ]
                }
            )
        )
        telemetry = Telemetry()
        task = HeavyHitterTask(
            "univmon", threshold=0.005 * truth.total_bytes
        )
        pipeline = SketchVisorPipeline(
            task,
            config=self._config(
                telemetry, shadow_samples=16, slo=str(policy_path)
            ),
        )
        result = pipeline.run_epoch(trace, truth)
        assert result.slo_breaches == []
        assert (
            telemetry.registry.total("sketchvisor_slo_evaluations_total")
            == 1
        )

    def test_observer_without_sampler_or_policy_is_quiet(
        self, trace, truth
    ):
        telemetry = Telemetry()
        observer = AccuracyObserver(telemetry)
        observer.observe_trace(trace)
        task = HeavyHitterTask(
            "univmon", threshold=0.005 * truth.total_bytes
        )
        pipeline = SketchVisorPipeline(
            task, config=self._config(None)
        )
        result = pipeline.run_epoch(trace, truth)
        assert observer.observe_epoch(result, task, epoch=0) == []
        assert (
            telemetry.registry.value("sketchvisor_accuracy_shadow_flows")
            is None
        )
        assert observer.maybe_dump("manual") is None
