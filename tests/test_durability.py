"""End-to-end durability: crash recovery must be invisible.

The headline contract (ISSUE acceptance): a host that crashes mid-epoch
under checkpointing recovers to a **bit-identical** ``SwitchReport`` —
and identical downstream merged sketch — versus a fault-free run.  Past
``max_restarts`` the pipeline must fall back to PR 3's degraded merge
unchanged; flapping hosts get quarantined; without checkpointing a
mid-epoch fault simply loses the epoch (the pre-durability behavior).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    HeavyHitterTask,
    PipelineConfig,
    SketchVisorPipeline,
)
from repro.dataplane.host import Host
from repro.durability import Supervisor
from repro.sketches import CountMinSketch
from repro.telemetry import Telemetry
from tests.test_state_codec import state_equal

CHECKPOINT_EVERY = 512


def make_task(truth):
    return HeavyHitterTask(
        "deltoid", threshold=0.005 * truth.total_bytes
    )


def make_pipeline(task, tmp_path=None, faults=None, **overrides):
    kwargs = dict(
        num_hosts=4,
        checkpoint_every=CHECKPOINT_EVERY,
        faults=faults,
    )
    if tmp_path is not None:
        kwargs["checkpoint_dir"] = str(tmp_path)
    kwargs.update(overrides)
    return SketchVisorPipeline(task, config=PipelineConfig(**kwargs))


def crash_plan(*offsets, host=1, kind=FaultKind.DATAPLANE_CRASH):
    return FaultPlan(
        seed=9,
        specs=[
            FaultSpec(
                epoch=0, host=host, kind=kind, packet_offset=offset
            )
            for offset in offsets
        ],
    )


def assert_reports_identical(expected, actual):
    assert expected.host_id == actual.host_id
    assert state_equal(expected.switch, actual.switch)
    assert state_equal(expected.sketch, actual.sketch)
    assert state_equal(expected.fastpath, actual.fastpath)


class TestCrashRecoveryBitIdentity:
    def test_mid_epoch_crash_recovers_bit_identical(
        self, medium_trace, medium_truth, tmp_path
    ):
        """The acceptance test: crash + hang mid-epoch, recovered
        reports and the merged network sketch equal the fault-free
        run's, bit for bit."""
        task = make_task(medium_truth)
        baseline = make_pipeline(task).run_epoch(
            medium_trace, medium_truth
        )
        plan = FaultPlan(
            seed=9,
            specs=[
                FaultSpec(
                    epoch=0,
                    host=1,
                    kind=FaultKind.DATAPLANE_CRASH,
                    packet_offset=700,
                ),
                FaultSpec(
                    epoch=0,
                    host=2,
                    kind=FaultKind.HANG,
                    packet_offset=300,
                ),
            ],
        )
        result = make_pipeline(
            task, tmp_path, faults=plan
        ).run_epoch(medium_trace, medium_truth)

        outcomes = {o.host_id: o for o in result.durability}
        assert outcomes[1].crashes == 1 and outcomes[1].recovered
        assert outcomes[2].hangs == 1 and outcomes[2].recovered
        assert outcomes[1].replayed_packets > 0

        for expected, actual in zip(baseline.reports, result.reports):
            assert_reports_identical(expected, actual)
        # Downstream: merged sketch matrix identical.
        assert np.array_equal(
            baseline.network.sketch.to_matrix(),
            result.network.sketch.to_matrix(),
        )
        assert result.degraded is None

    def test_legacy_crash_spec_with_offset_is_recoverable(
        self, medium_trace, medium_truth, tmp_path
    ):
        """Satellite 1: a report-path CRASH spec pinned to a packet
        offset now fires mid-epoch (promoted to a data-plane crash)
        instead of only at report-send time — and recovers."""
        task = make_task(medium_truth)
        baseline = make_pipeline(task).run_epoch(
            medium_trace, medium_truth
        )
        plan = crash_plan(400, host=1, kind=FaultKind.CRASH)
        result = make_pipeline(
            task, tmp_path, faults=plan
        ).run_epoch(medium_trace, medium_truth)
        outcomes = {o.host_id: o for o in result.durability}
        assert outcomes[1].crashes == 1 and outcomes[1].recovered
        for expected, actual in zip(baseline.reports, result.reports):
            assert_reports_identical(expected, actual)

    def test_double_crash_same_epoch_recovers(
        self, medium_trace, medium_truth, tmp_path
    ):
        task = make_task(medium_truth)
        baseline = make_pipeline(task).run_epoch(
            medium_trace, medium_truth
        )
        result = make_pipeline(
            task, tmp_path, faults=crash_plan(200, 900)
        ).run_epoch(medium_trace, medium_truth)
        outcomes = {o.host_id: o for o in result.durability}
        assert outcomes[1].crashes == 2
        assert outcomes[1].restarts == 2
        assert outcomes[1].recovered
        for expected, actual in zip(baseline.reports, result.reports):
            assert_reports_identical(expected, actual)


class TestBoundarySweep:
    def test_crash_at_every_checkpoint_boundary(self, small_trace):
        """Satellite 4: crash a single supervised host at *every*
        checkpoint boundary (and just before/after each) — each run's
        recovered report must equal the uncrashed run's, bit for bit."""
        every = 256
        packets = len(small_trace)

        def fresh_host():
            return Host(
                host_id=0,
                sketch=CountMinSketch(width=64, depth=3, seed=3),
                fastpath_bytes=1024,
                buffer_packets=32,
            )

        expected = fresh_host().run_epoch(small_trace)

        offsets = set()
        for boundary in range(0, packets + every, every):
            offsets.update(
                {boundary - 1, boundary, boundary + 1}
            )
        offsets = sorted(o for o in offsets if 0 <= o)

        for offset, tmp in zip(
            offsets, _tmp_dirs(len(offsets))
        ):
            supervisor = Supervisor(
                tmp,
                plan=crash_plan(offset, host=0),
                checkpoint_every=every,
            )
            (outcome,) = supervisor.run_epoch(
                [fresh_host()], [small_trace], None, 0
            )
            assert outcome.crashes == 1, offset
            assert outcome.report is not None, offset
            assert state_equal(
                expected.switch, outcome.report.switch
            ), f"offset {offset}"
            assert state_equal(
                expected.sketch, outcome.report.sketch
            ), f"offset {offset}"
            assert state_equal(
                expected.fastpath, outcome.report.fastpath
            ), f"offset {offset}"
            # Replay never exceeds one checkpoint interval.
            assert outcome.replayed_packets <= every, offset


def _tmp_dirs(count):
    import tempfile

    for _ in range(count):
        with tempfile.TemporaryDirectory() as directory:
            yield directory


class TestEscalation:
    def test_restart_exhaustion_falls_to_degraded_merge(
        self, medium_trace, medium_truth, tmp_path
    ):
        """Four crashes against max_restarts=2: host 1 gives up and
        the epoch lands in PR 3's degraded merge."""
        task = make_task(medium_truth)
        result = make_pipeline(
            task,
            tmp_path,
            faults=crash_plan(100, 200, 300, 400),
            max_restarts=2,
        ).run_epoch(medium_trace, medium_truth)
        outcomes = {o.host_id: o for o in result.durability}
        assert outcomes[1].gave_up
        assert outcomes[1].restarts == 2
        assert outcomes[1].report is None
        assert 1 in result.collection.missing_hosts
        assert result.degraded is not None
        assert 1 in result.degraded.missing_hosts
        # The other hosts' epochs still merged.
        assert {r.host_id for r in result.reports} == {0, 2, 3}

    def test_flapping_host_gets_quarantined(
        self, medium_trace, medium_truth, tmp_path
    ):
        """Circuit breaker: a host that gives up epoch after epoch is
        quarantined (no restart churn) and later retried."""
        task = make_task(medium_truth)
        plan = FaultPlan(
            seed=9,
            specs=[
                FaultSpec(
                    epoch=epoch,
                    host=1,
                    kind=FaultKind.DATAPLANE_CRASH,
                    packet_offset=offset,
                )
                for epoch in range(2)
                for offset in (100, 200, 300, 400)
            ],
        )
        pipeline = make_pipeline(
            task,
            tmp_path,
            faults=plan,
            max_restarts=1,
            quarantine_threshold=2,
            quarantine_epochs=1,
        )
        first = pipeline.run_epoch(medium_trace, medium_truth)
        second = pipeline.run_epoch(medium_trace, medium_truth)
        third = pipeline.run_epoch(medium_trace, medium_truth)

        by_host = lambda r: {o.host_id: o for o in r.durability}
        assert by_host(first)[1].gave_up
        assert by_host(second)[1].gave_up  # trips the breaker
        tripped = by_host(third)[1]
        assert tripped.quarantined
        assert tripped.restarts == 0 and tripped.crashes == 0
        assert 1 in third.collection.missing_hosts
        # Epoch 3: quarantine expired, no faults scheduled → recovers.
        fourth = pipeline.run_epoch(medium_trace, medium_truth)
        assert by_host(fourth)[1].report is not None

    def test_unsupervised_dataplane_fault_loses_epoch(
        self, medium_trace, medium_truth, monkeypatch
    ):
        """Without a checkpoint dir there is nothing to restore from:
        the crashed host's epoch is forfeited → degraded merge (the
        exact PR 3 fallback)."""
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        task = make_task(medium_truth)
        result = make_pipeline(
            task, None, faults=crash_plan(700)
        ).run_epoch(medium_trace, medium_truth)
        assert result.durability is None
        assert {r.host_id for r in result.reports} == {0, 2, 3}
        assert 1 in result.collection.missing_hosts
        assert result.degraded is not None

    def test_unsupervised_pool_dataplane_fault_loses_epoch(
        self, medium_trace, medium_truth, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        task = make_task(medium_truth)
        result = make_pipeline(
            task, None, faults=crash_plan(700), workers=2
        ).run_epoch(medium_trace, medium_truth)
        assert {r.host_id for r in result.reports} == {0, 2, 3}
        assert result.degraded is not None


class TestWatchdog:
    def test_hang_charges_watchdog_wait(
        self, medium_trace, medium_truth, tmp_path
    ):
        task = make_task(medium_truth)
        result = make_pipeline(
            task,
            tmp_path,
            faults=crash_plan(300, kind=FaultKind.HANG),
            watchdog_timeout=0.5,
        ).run_epoch(medium_trace, medium_truth)
        outcomes = {o.host_id: o for o in result.durability}
        assert outcomes[1].hangs == 1
        assert outcomes[1].watchdog_wait == pytest.approx(0.5)
        assert outcomes[1].recovered

    def test_stalled_hosts_query(self, small_trace, tmp_path):
        supervisor = Supervisor(
            str(tmp_path), watchdog_timeout=10.0, heartbeat_every=64
        )
        host = Host(
            host_id=7,
            sketch=CountMinSketch(width=64, depth=3, seed=3),
            fastpath_bytes=1024,
        )
        supervisor.run_epoch([host], [small_trace], None, 0)
        assert 7 in supervisor.heartbeats
        assert supervisor.stalled_hosts() == []
        epoch, offset, seen = supervisor.heartbeats[7]
        assert supervisor.stalled_hosts(now=seen + 11.0) == [7]


class TestInertness:
    def test_no_checkpoint_dir_means_no_supervisor(
        self, small_trace, small_truth, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        task = make_task(small_truth)
        pipeline = make_pipeline(task)
        assert pipeline._supervisor is None
        result = pipeline.run_epoch(small_trace, small_truth)
        assert result.durability is None

    def test_env_gate_enables_supervision(
        self, small_trace, small_truth, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "256")
        task = make_task(small_truth)
        pipeline = SketchVisorPipeline(
            task, config=PipelineConfig(num_hosts=2)
        )
        assert pipeline.config.checkpoint_dir == str(tmp_path)
        assert pipeline.config.checkpoint_every == 256
        result = pipeline.run_epoch(small_trace, small_truth)
        assert result.durability is not None
        assert all(o.report is not None for o in result.durability)

    def test_supervised_faultfree_matches_unsupervised(
        self, small_trace, small_truth, tmp_path
    ):
        """Checkpointing alone (no faults) must not change a single
        bit of any report."""
        task = make_task(small_truth)
        baseline = make_pipeline(task).run_epoch(
            small_trace, small_truth
        )
        supervised = make_pipeline(task, tmp_path).run_epoch(
            small_trace, small_truth
        )
        for expected, actual in zip(
            baseline.reports, supervised.reports
        ):
            assert_reports_identical(expected, actual)
        assert all(
            o.checkpoint_writes > 0 for o in supervised.durability
        )


class TestDurabilityTelemetry:
    def test_counters_published(
        self, medium_trace, medium_truth, tmp_path
    ):
        task = make_task(medium_truth)
        telemetry = Telemetry()
        result = make_pipeline(
            task,
            tmp_path,
            faults=crash_plan(700),
            telemetry=telemetry,
        ).run_epoch(medium_trace, medium_truth)
        assert result.durability is not None
        prom = telemetry.prometheus_text()
        assert "sketchvisor_checkpoint_writes_total" in prom
        assert "sketchvisor_checkpoint_restores_total" in prom
        assert "sketchvisor_replay_packets_total" in prom
        assert 'sketchvisor_host_faults_total' in prom
        assert "sketchvisor_recovery_seconds" in prom
