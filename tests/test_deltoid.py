"""Deltoid: header-encoding counters and bit-by-bit reversal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, MergeError
from repro.sketches.deltoid import HEADER_BITS, Deltoid
from tests.conftest import make_flow, make_trace


class TestDeltoidDecode:
    def test_single_heavy_flow_recovered(self):
        sketch = Deltoid(width=256, depth=4)
        heavy = make_flow(1)
        sketch.update(heavy, 100_000)
        for i in range(2, 200):
            sketch.update(make_flow(i), 100)
        decoded = sketch.decode(threshold=50_000)
        assert heavy in decoded
        assert decoded[heavy] >= 100_000

    def test_multiple_heavy_flows(self):
        sketch = Deltoid(width=512, depth=4)
        heavies = [make_flow(i) for i in range(10)]
        for flow in heavies:
            sketch.update(flow, 80_000)
        for i in range(100, 1000):
            sketch.update(make_flow(i), 50)
        decoded = sketch.decode(threshold=40_000)
        assert set(heavies) <= set(decoded)

    def test_no_heavy_flows_no_output(self):
        sketch = Deltoid(width=256, depth=4)
        for i in range(200):
            sketch.update(make_flow(i), 100)
        assert sketch.decode(threshold=50_000) == {}

    def test_decoded_flows_are_verified(self):
        """Everything decoded must re-hash to the bucket it came from."""
        sketch = Deltoid(width=64, depth=4)
        for i in range(500):
            sketch.update(make_flow(i), 1000)
        for flow in sketch.decode(threshold=20_000):
            for row, col, _coef in sketch.matrix_positions(flow)[:1]:
                pass  # decode already verified; just ensure it's a flow
            assert flow.key104 >= 0

    def test_estimate_upper_bounds_truth(self, small_trace):
        sketch = Deltoid(width=256, depth=4)
        truth = {}
        for packet in small_trace:
            sketch.update(packet.flow, packet.size)
            truth[packet.flow] = truth.get(packet.flow, 0) + packet.size
        for flow, total in list(truth.items())[:50]:
            assert sketch.estimate(flow) >= total


class TestDeltoidAlgebra:
    def test_merge_equals_union(self):
        whole = Deltoid(width=128, depth=3, seed=5)
        a = Deltoid(width=128, depth=3, seed=5)
        b = Deltoid(width=128, depth=3, seed=5)
        for i in range(100):
            flow = make_flow(i)
            whole.update(flow, 10 + i)
            (a if i % 2 else b).update(flow, 10 + i)
        a.merge(b)
        assert np.array_equal(a.totals, whole.totals)
        assert np.array_equal(a.bits, whole.bits)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            Deltoid(width=128).merge(Deltoid(width=64))

    def test_matrix_roundtrip(self):
        sketch = Deltoid(width=64, depth=2)
        for i in range(40):
            sketch.update(make_flow(i), 100 * (i + 1))
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert np.array_equal(clone.totals, sketch.totals)
        assert np.array_equal(clone.bits, sketch.bits)

    def test_matrix_shape(self):
        sketch = Deltoid(width=64, depth=2)
        assert sketch.to_matrix().shape == (2 * (1 + HEADER_BITS), 64)

    def test_positions_match_update(self):
        sketch = Deltoid(width=64, depth=2)
        flow = make_flow(3)
        sketch.update(flow, 77)
        replayed = np.zeros_like(sketch.to_matrix())
        for row, col, coef in sketch.matrix_positions(flow):
            replayed[row, col] += 77 * coef
        assert np.array_equal(replayed, sketch.to_matrix())

    def test_difference_decoding_supports_heavy_changers(self):
        """Linear counters: decode(A - B) finds the changed flow."""
        changer = make_flow(1)
        epoch_a = Deltoid(width=256, depth=4, seed=7)
        epoch_b = Deltoid(width=256, depth=4, seed=7)
        epoch_a.update(changer, 90_000)
        for i in range(2, 100):
            epoch_a.update(make_flow(i), 500)
            epoch_b.update(make_flow(i), 500)
        diff = epoch_a.clone_empty()
        diff.load_matrix(epoch_a.to_matrix() - epoch_b.to_matrix())
        assert changer in diff.decode(threshold=40_000)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            Deltoid(width=0)

    def test_cost_dominated_by_counter_updates(self):
        """§2.2: >86% of Deltoid's cycles update header-bit counters."""
        profile = Deltoid(width=4000, depth=4).cost_profile()
        assert profile.counter_updates > 10 * profile.hashes
