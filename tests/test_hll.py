"""HyperLogLog extension sketch."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError, MergeError
from repro.controlplane.recovery import RecoveryMode, recover
from repro.dataplane.host import Host
from repro.sketches.cardinality import HyperLogLog
from repro.tasks.cardinality import CardinalityTask
from tests.conftest import make_flow


class TestHyperLogLog:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            HyperLogLog(num_registers=8)

    @pytest.mark.parametrize("n", [100, 1000, 10_000])
    def test_estimate_within_tolerance(self, n):
        sketch = HyperLogLog(num_registers=1024, depth=2)
        for i in range(n):
            sketch.update(make_flow(i % 60_000, dst=i // 60_000 + 1), 10)
        assert sketch.estimate() == pytest.approx(n, rel=0.1)

    def test_duplicates_do_not_count(self):
        sketch = HyperLogLog(num_registers=256, depth=1)
        for _ in range(20):
            for i in range(500):
                sketch.update(make_flow(i), 100)
        assert sketch.estimate() == pytest.approx(500, rel=0.15)

    def test_small_range_uses_linear_counting(self):
        sketch = HyperLogLog(num_registers=1024, depth=1)
        for i in range(30):
            sketch.update(make_flow(i), 10)
        assert sketch.estimate() == pytest.approx(30, abs=4)

    def test_merge_counts_union(self):
        a = HyperLogLog(num_registers=512, depth=1, seed=5)
        b = HyperLogLog(num_registers=512, depth=1, seed=5)
        for i in range(4000):
            (a if i % 2 else b).update(make_flow(i % 60_000, dst=1), 10)
        a.merge(b)
        assert a.estimate() == pytest.approx(4000, rel=0.12)

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            HyperLogLog(num_registers=512).merge(
                HyperLogLog(num_registers=256)
            )

    def test_matrix_roundtrip(self):
        sketch = HyperLogLog(num_registers=64, depth=1)
        for i in range(200):
            sketch.update(make_flow(i), 10)
        clone = sketch.clone_empty()
        clone.load_matrix(sketch.to_matrix())
        assert clone.estimate() == sketch.estimate()

    def test_task_integration_with_recovery(self, medium_trace):
        task = CardinalityTask("hll")
        host = Host(0, task.create_sketch(seed=3), fastpath_bytes=8192)
        report = host.run_epoch(medium_trace)
        state = recover(
            report.sketch, report.fastpath, RecoveryMode.SKETCHVISOR
        )
        estimate = task.answer(state.sketch)
        true_cardinality = len(medium_trace.flows())
        assert estimate == pytest.approx(true_cardinality, rel=0.25)

    def test_empty_estimate_zero(self):
        assert HyperLogLog().estimate() == pytest.approx(0.0, abs=1.0)
