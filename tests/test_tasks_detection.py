"""Heavy hitter / heavy changer tasks, end to end in ideal conditions."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.anomalies import inject_heavy_changes
from repro.traffic.groundtruth import GroundTruth


def _ideal_sketch(task, trace):
    sketch = task.create_sketch(seed=3)
    for packet in trace:
        sketch.update(packet.flow, packet.size)
    return sketch


class TestHeavyHitterTask:
    @pytest.mark.parametrize(
        "solution", ["deltoid", "revsketch", "flowradar", "univmon"]
    )
    def test_ideal_detection_accurate(
        self, solution, medium_trace, medium_truth
    ):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask(solution, threshold=threshold)
        sketch = _ideal_sketch(task, medium_trace)
        score = task.score(task.answer(sketch), medium_truth)
        assert score.recall >= 0.9
        assert score.precision >= 0.85
        assert score.relative_error <= 0.15

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            HeavyHitterTask("deltoid", threshold=0)

    def test_solution_validation(self):
        with pytest.raises(ConfigError):
            HeavyHitterTask("bogus", threshold=100)

    def test_truth_key_fingerprint_only_for_revsketch(self):
        from tests.conftest import make_flow

        flow = make_flow(1)
        deltoid_task = HeavyHitterTask("deltoid", threshold=1)
        rev_task = HeavyHitterTask("revsketch", threshold=1)
        assert deltoid_task.truth_key(flow) is flow
        assert isinstance(rev_task.truth_key(flow), int)

    def test_paper_params_larger(self):
        small = HeavyHitterTask("deltoid", threshold=1)
        large = HeavyHitterTask("deltoid", threshold=1, paper_params=True)
        assert (
            large.create_sketch().memory_bytes()
            > small.create_sketch().memory_bytes()
        )

    def test_empty_sketch_no_answers(self):
        task = HeavyHitterTask("deltoid", threshold=1000)
        assert task.answer(task.create_sketch()) == {}

    def test_score_extra_fields(self, medium_trace, medium_truth):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask("deltoid", threshold=threshold)
        score = task.score(
            task.answer(_ideal_sketch(task, medium_trace)), medium_truth
        )
        assert score.extra["true"] > 0
        assert score.extra["reported"] > 0


class TestHeavyChangerTask:
    @pytest.mark.parametrize(
        "solution", ["deltoid", "revsketch", "flowradar", "univmon"]
    )
    def test_detects_injected_changers(self, solution, small_trace):
        epoch_a, epoch_b, changers = inject_heavy_changes(
            small_trace, small_trace, num_changers=3, change_bytes=200_000
        )
        truth_a = GroundTruth.from_trace(epoch_a)
        truth_b = GroundTruth.from_trace(epoch_b)
        task = HeavyChangerTask(solution, threshold=100_000)
        sketch_a = _ideal_sketch(task, epoch_a)
        sketch_b = _ideal_sketch(task, epoch_b)
        answer = task.answer_pair(sketch_a, sketch_b)
        score = task.score_pair(answer, truth_a, truth_b)
        assert score.recall >= 0.9

    def test_identical_epochs_no_changers(self, small_trace):
        task = HeavyChangerTask("deltoid", threshold=10_000)
        sketch_a = _ideal_sketch(task, small_trace)
        sketch_b = _ideal_sketch(task, small_trace)
        assert task.answer_pair(sketch_a, sketch_b) == {}

    def test_single_epoch_interfaces_rejected(self, small_truth):
        task = HeavyChangerTask("deltoid", threshold=100)
        with pytest.raises(ConfigError):
            task.answer(task.create_sketch())
        with pytest.raises(ConfigError):
            task.score({}, small_truth)

    def test_change_magnitude_estimated(self, small_trace):
        epoch_a, epoch_b, changers = inject_heavy_changes(
            small_trace, small_trace, num_changers=1, change_bytes=300_000
        )
        task = HeavyChangerTask("flowradar", threshold=100_000)
        answer = task.answer_pair(
            _ideal_sketch(task, epoch_a), _ideal_sketch(task, epoch_b)
        )
        assert answer[changers[0]] == pytest.approx(300_000, rel=0.1)
