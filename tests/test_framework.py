"""Registry (Table 1) and the end-to-end pipeline."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.framework.registry import TASK_REGISTRY, create_task
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.traffic.anomalies import inject_heavy_changes


class TestRegistry:
    def test_all_seven_tasks_present(self):
        assert set(TASK_REGISTRY) == {
            "heavy_hitter",
            "heavy_changer",
            "ddos",
            "superspreader",
            "cardinality",
            "flow_size_distribution",
            "entropy",
        }

    def test_table1_solution_lists(self):
        assert TASK_REGISTRY["heavy_hitter"][1] == (
            "flowradar",
            "revsketch",
            "univmon",
            "deltoid",
        )
        assert TASK_REGISTRY["ddos"][1] == ("twolevel",)
        assert TASK_REGISTRY["cardinality"][1] == ("fm", "kmin", "lc")

    def test_create_task(self):
        task = create_task("heavy_hitter", "deltoid", threshold=1000)
        assert isinstance(task, HeavyHitterTask)
        assert task.threshold == 1000

    def test_create_task_validation(self):
        with pytest.raises(ConfigError):
            create_task("bogus", "deltoid")
        with pytest.raises(ConfigError):
            create_task("heavy_hitter", "twolevel", threshold=1)

    def test_every_registered_pair_constructs(self):
        for task_name, (_cls, solutions) in TASK_REGISTRY.items():
            for solution in solutions:
                kwargs = {}
                if task_name in ("heavy_hitter", "heavy_changer"):
                    kwargs["threshold"] = 1000
                task = create_task(task_name, solution, **kwargs)
                sketch = task.create_sketch(seed=1)
                assert sketch.memory_bytes() > 0


class TestPipeline:
    def test_recovery_modes_ordered(self, medium_trace, medium_truth):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask("deltoid", threshold=threshold)
        recalls = {}
        for mode in (
            RecoveryMode.NO_RECOVERY,
            RecoveryMode.SKETCHVISOR,
        ):
            pipeline = SketchVisorPipeline(task, recovery=mode)
            result = pipeline.run_epoch(medium_trace, medium_truth)
            recalls[mode] = result.score.recall
        assert (
            recalls[RecoveryMode.SKETCHVISOR]
            > recalls[RecoveryMode.NO_RECOVERY]
        )

    def test_ideal_mode_no_fastpath_traffic(
        self, medium_trace, medium_truth
    ):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask("deltoid", threshold=threshold)
        pipeline = SketchVisorPipeline(
            task, dataplane=DataPlaneMode.IDEAL
        )
        result = pipeline.run_epoch(medium_trace, medium_truth)
        assert result.fastpath_byte_fraction == 0.0
        assert result.score.recall >= 0.95

    def test_multi_host_accuracy(self, medium_trace, medium_truth):
        threshold = 0.005 * medium_truth.total_bytes
        task = HeavyHitterTask("deltoid", threshold=threshold)
        pipeline = SketchVisorPipeline(
            task, config=PipelineConfig(num_hosts=4)
        )
        result = pipeline.run_epoch(medium_trace, medium_truth)
        assert result.network.num_hosts == 4
        assert result.score.recall >= 0.9

    def test_heavy_changer_via_pair(self, small_trace):
        epoch_a, epoch_b, _changers = inject_heavy_changes(
            small_trace, small_trace, num_changers=3, change_bytes=300_000
        )
        task = HeavyChangerTask("flowradar", threshold=150_000)
        pipeline = SketchVisorPipeline(task)
        result = pipeline.run_epoch_pair(epoch_a, epoch_b)
        assert result.score.recall >= 0.9

    def test_pair_interface_enforced(self, small_trace):
        hh = SketchVisorPipeline(HeavyHitterTask("deltoid", threshold=1))
        with pytest.raises(ConfigError):
            hh.run_epoch_pair(small_trace, small_trace)
        hc = SketchVisorPipeline(
            HeavyChangerTask("deltoid", threshold=1)
        )
        with pytest.raises(ConfigError):
            hc.run_epoch(small_trace)

    def test_mg_fastpath_mode_uses_misra_gries(self, small_trace):
        from repro.fastpath.misra_gries import MisraGriesTopK

        task = HeavyHitterTask("deltoid", threshold=10_000)
        pipeline = SketchVisorPipeline(
            task, dataplane=DataPlaneMode.MG_FASTPATH
        )
        hosts = pipeline._build_hosts()
        assert isinstance(hosts[0].fastpath, MisraGriesTopK)

    def test_throughput_property(self, small_trace, small_truth):
        task = HeavyHitterTask("deltoid", threshold=10_000)
        pipeline = SketchVisorPipeline(task)
        result = pipeline.run_epoch(small_trace, small_truth)
        assert result.throughput_gbps > 0
