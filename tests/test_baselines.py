"""Trumpet and sampling baselines."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError, MergeError
from repro.baselines.sampling import SampledNetFlow
from repro.baselines.trumpet import TrumpetMonitor
from tests.conftest import make_flow


class TestTrumpet:
    def test_exact_flow_counts(self, small_trace):
        monitor = TrumpetMonitor(expected_flows=1000)
        for packet in small_trace:
            monitor.update(packet.flow, packet.size)
        assert monitor.flow_bytes() == {
            flow: float(size)
            for flow, size in small_trace.flow_sizes().items()
        }

    def test_heavy_hitters_perfect(self, small_trace, small_truth):
        monitor = TrumpetMonitor(expected_flows=1000)
        for packet in small_trace:
            monitor.update(packet.flow, packet.size)
        threshold = 0.01 * small_truth.total_bytes
        assert monitor.heavy_hitters(threshold).keys() == (
            small_truth.heavy_hitters(threshold).keys()
        )

    def test_memory_grows_with_flows(self):
        monitor = TrumpetMonitor(expected_flows=100, overprovision=3)
        base = monitor.memory_bytes()
        for i in range(500):
            monitor.update(make_flow(i), 100)
        assert monitor.memory_bytes() > base + 500 * 30

    def test_memory_exceeds_sketches_at_scale(self):
        """Figure 17(b): at paper-scale flow counts (30-70k flows per
        host-epoch) Trumpet's per-flow state dwarfs a sketch."""
        from repro.sketches.flowradar import FlowRadar

        flows = 50_000
        monitor = TrumpetMonitor(expected_flows=flows, overprovision=3)
        for i in range(flows):
            monitor.update(make_flow(i % 60_000, dst=i // 60_000 + 1), 100)
        sketch = FlowRadar()  # the paper's FlowRadar configuration
        assert monitor.memory_bytes() > 2 * sketch.memory_bytes()

    def test_memory_scales_linearly_with_flows(self):
        """The contrast the paper draws: sketch memory is fixed,
        Trumpet memory tracks the flow count."""
        small = TrumpetMonitor(expected_flows=1000, overprovision=3)
        for i in range(1000):
            small.update(make_flow(i), 100)
        large = TrumpetMonitor(expected_flows=10_000, overprovision=3)
        for i in range(10_000):
            large.update(make_flow(i), 100)
        assert large.memory_bytes() > 5 * small.memory_bytes()

    def test_overprovision_reduces_chains(self, medium_trace):
        flows = len(medium_trace.flows())
        low = TrumpetMonitor(expected_flows=flows, overprovision=1)
        high = TrumpetMonitor(expected_flows=flows, overprovision=7)
        for packet in medium_trace:
            low.update(packet.flow, packet.size)
            high.update(packet.flow, packet.size)
        assert high.mean_chain_length < low.mean_chain_length

    def test_merge(self):
        a = TrumpetMonitor(expected_flows=100, seed=3)
        b = TrumpetMonitor(expected_flows=100, seed=3)
        a.update(make_flow(1), 100)
        b.update(make_flow(1), 50)
        b.update(make_flow(2), 70)
        a.merge(b)
        flows = a.flow_bytes()
        assert flows[make_flow(1)] == 150
        assert flows[make_flow(2)] == 70

    def test_merge_rejects_mismatch(self):
        with pytest.raises(MergeError):
            TrumpetMonitor(100).merge(TrumpetMonitor(200))

    def test_load_matrix_unsupported(self):
        import numpy as np

        with pytest.raises(NotImplementedError):
            TrumpetMonitor(100).load_matrix(np.zeros((1, 300)))

    def test_reset(self):
        monitor = TrumpetMonitor(expected_flows=100)
        monitor.update(make_flow(1), 10)
        monitor.reset()
        assert monitor.flow_bytes() == {}

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TrumpetMonitor(expected_flows=0)


class TestSampling:
    def test_sampling_rate_respected(self, medium_trace):
        sampler = SampledNetFlow(sample_rate=0.1, seed=3)
        sampler.process(medium_trace)
        observed = sampler.sampled_packets / sampler.total_packets
        assert observed == pytest.approx(0.1, abs=0.02)

    def test_estimates_scaled(self):
        sampler = SampledNetFlow(sample_rate=1.0)
        sampler.update(make_flow(1), 500)
        assert sampler.flow_estimates()[make_flow(1)] == 500

    def test_misses_small_flows(self, medium_trace, medium_truth):
        """The paper's motivation: sampling misses fine-grained state."""
        sampler = SampledNetFlow(sample_rate=0.01, seed=5)
        sampler.process(medium_trace)
        assert len(sampler.sampled) < 0.5 * medium_truth.cardinality

    def test_heavy_hitters_catch_big_flows(
        self, medium_trace, medium_truth
    ):
        sampler = SampledNetFlow(sample_rate=0.2, seed=5)
        sampler.process(medium_trace)
        threshold = 0.01 * medium_truth.total_bytes
        found = sampler.heavy_hitters(threshold)
        true_hh = medium_truth.heavy_hitters(threshold)
        hits = sum(1 for flow in true_hh if flow in found)
        assert hits / len(true_hh) > 0.7

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            SampledNetFlow(sample_rate=0.0)
        with pytest.raises(ConfigError):
            SampledNetFlow(sample_rate=1.5)

    def test_reset(self):
        sampler = SampledNetFlow(sample_rate=1.0)
        sampler.update(make_flow(1), 10)
        sampler.reset()
        assert sampler.sampled == {}
