"""The measurement service: windows in, observability out.

:class:`MeasurementService` glues the streaming pieces together: a
packet source feeds the
:class:`~repro.framework.pipeline.WindowScheduler`, every closed
window runs through the unchanged batch pipeline (one
:class:`~repro.framework.monitor.ContinuousMonitor` epoch per window,
so SLO evaluation, shadow sampling, and the flight recorder all run
online), and the results land in a bounded ring of
:class:`WindowRecord` objects that the HTTP plane serves with
window-id/timestamp provenance.

Threading model: ingest runs in one thread (the main thread under the
CLI, so signals deliver), the HTTP server answers on daemon threads,
and the two meet only at the window ring (mutex) and the metrics
registry (internally locked).  Shutdown is graceful — SIGTERM stops
the source, drains the in-flight partial window through the pipeline,
flushes the flight recorder, and exits 0.
"""

from __future__ import annotations

import logging
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, QuorumError
from repro.common.flow import FlowKey
from repro.controlplane.recovery import RecoveryMode
from repro.dash import epoch_row, html_report
from repro.framework.modes import DataPlaneMode
from repro.framework.monitor import ContinuousMonitor
from repro.framework.pipeline import (
    PipelineConfig,
    Window,
    WindowScheduler,
)
from repro.serve.sources import PacketSource
from repro.tasks.base import MeasurementTask
from repro.telemetry import Telemetry
from repro.telemetry.exporters import prometheus_text
from repro.telemetry.publish import (
    publish_serve_quorum_failure,
    publish_serve_window,
)

logger = logging.getLogger(__name__)

#: Query endpoint name -> task name serving it.
QUERY_ENDPOINTS: dict[str, str] = {
    "heavy-hitters": "heavy_hitter",
    "cardinality": "cardinality",
    "fsd": "flow_size_distribution",
}


@dataclass
class ServeConfig:
    """Service-mode parameters (the CLI's ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Close a window every N packets (deterministic; replay-identical
    #: to batch epochs).  At least one of the two bounds must be set.
    window_packets: int | None = None
    #: Close a window after this many wall-clock seconds.
    window_seconds: float | None = None
    #: Stop after this many windows (bounded soak); ``None`` runs
    #: until SIGTERM.
    max_windows: int | None = None
    #: Recent windows retained for the query endpoints.
    ring_windows: int = 8
    #: Run the in-flight partial window through the pipeline on
    #: shutdown instead of discarding it.
    drain: bool = True
    #: Seconds without a window advance before ``/healthz`` flips
    #: unhealthy; ``None`` derives 5 x window_seconds (wall-clock
    #: windows) or disables staleness (packet-count windows, whose
    #: cadence depends on the offered rate).
    stale_after: float | None = None
    #: Rotated flight-recorder dumps kept on disk (see
    #: :class:`~repro.telemetry.recorder.FlightRecorder`).
    recorder_max_dumps: int = 8


def _format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _key_string(key) -> str:
    """A stable, human-readable string for any answer key."""
    if isinstance(key, FlowKey):
        return (
            f"{_format_ip(key.src_ip)}:{key.src_port}->"
            f"{_format_ip(key.dst_ip)}:{key.dst_port}/{key.proto}"
        )
    return str(key)


def serialize_answer(task_name: str, answer) -> dict:
    """One task answer -> the JSON body a query endpoint serves."""
    if task_name == "cardinality":
        return {"estimate": float(answer)}
    if task_name == "flow_size_distribution":
        return {
            "distribution": [
                {"size": int(size), "flows": float(flows)}
                for size, flows in sorted(answer.items())
            ]
        }
    # Heavy hitters (and any other {key: magnitude} answer): largest
    # first, keys rendered stably.
    items = sorted(
        answer.items(), key=lambda kv: (-float(kv[1]), _key_string(kv[0]))
    )
    return {
        "heavy_hitters": [
            {"flow": _key_string(key), "estimate": float(value)}
            for key, value in items
        ]
    }


@dataclass
class WindowRecord:
    """One recovered window as the query endpoints serve it."""

    window_id: int
    opened_at: float
    closed_at: float
    packets: int
    bytes: int
    #: endpoint name -> serialized answer body.
    queries: dict[str, dict] = field(default_factory=dict)
    degraded: bool = False
    slo_breaches: int = 0

    def provenance(self) -> dict:
        return {
            "window_id": self.window_id,
            "opened_at": self.opened_at,
            "closed_at": self.closed_at,
            "packets": self.packets,
            "bytes": self.bytes,
            "degraded": self.degraded,
            "slo_breaches": self.slo_breaches,
        }

    def query_body(self, endpoint: str) -> dict:
        body = self.provenance()
        body.update(self.queries.get(endpoint, {}))
        return body


class MeasurementService:
    """A long-running SketchVisor measurement daemon.

    Parameters
    ----------
    tasks:
        Measurement tasks run on every window.  The first task is the
        *primary* one (its scores feed the dash rows); tasks named in
        :data:`QUERY_ENDPOINTS` serve the matching query endpoint.
    source:
        The packet stream (:class:`~repro.serve.sources.PacketSource`).
    config:
        Service-mode parameters.
    pipeline_config:
        Deployment parameters shared by every per-task pipeline;
        telemetry is forced on (the service *is* the observability
        plane).
    """

    def __init__(
        self,
        tasks: list[MeasurementTask],
        source: PacketSource,
        config: ServeConfig,
        dataplane: DataPlaneMode = DataPlaneMode.SKETCHVISOR,
        recovery: RecoveryMode = RecoveryMode.SKETCHVISOR,
        pipeline_config: PipelineConfig | None = None,
    ):
        if not tasks:
            raise ConfigError("need at least one task")
        if config.ring_windows < 1:
            raise ConfigError("ring_windows must be >= 1")
        self.config = config
        self.source = source
        pipeline_config = pipeline_config or PipelineConfig()
        if pipeline_config.telemetry is None:
            pipeline_config.telemetry = Telemetry()
        self.telemetry: Telemetry = pipeline_config.telemetry
        if pipeline_config.recorder_path is not None:
            # Long-running service under repeated SLO breaches: rotate
            # dump artifacts instead of overwriting one fixed path.
            self.telemetry.recorder.max_dumps = config.recorder_max_dumps
        self.monitor = ContinuousMonitor(
            tasks,
            dataplane=dataplane,
            recovery=recovery,
            config=pipeline_config,
        )
        self.tasks = tasks
        self.scheduler = WindowScheduler(
            window_packets=config.window_packets,
            window_seconds=config.window_seconds,
        )
        self._lock = threading.Lock()
        self._ring: deque[WindowRecord] = deque(
            maxlen=config.ring_windows
        )
        self._rows: list[dict] = []
        self._shutdown = threading.Event()
        self._done = threading.Event()
        self._ingest_thread: threading.Thread | None = None
        self._httpd = None
        self._http_thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        self._last_advance: float | None = None
        self._last_quorum_failed = False
        self._ingest_error: str | None = None
        self.windows_processed = 0
        self.quorum_failures = 0
        self.exit_code = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ConfigError("HTTP server not started")
        return self._httpd.server_address[1]

    def start_http(self) -> int:
        """Bind and start the HTTP plane; returns the bound port."""
        from repro.serve.httpd import ObservabilityServer

        self._httpd = ObservabilityServer(
            (self.config.host, self.config.port), self
        )
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self.port

    def start(self) -> int:
        """Start HTTP + ingest on background threads (embedded use).

        The CLI calls :meth:`run` instead, keeping ingest on the main
        thread so POSIX signals deliver.
        """
        port = self.start_http()
        self._ingest_thread = threading.Thread(
            target=self._ingest, name="serve-ingest", daemon=True
        )
        self._ingest_thread.start()
        return port

    def run(self, install_signals: bool = True) -> int:
        """Serve until SIGTERM/SIGINT or ``max_windows``; returns the
        process exit code (0 for a graceful run)."""
        if self._httpd is None:
            self.start_http()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(
                    signum, lambda _sig, _frm: self.request_shutdown()
                )
        try:
            self._ingest()
        finally:
            self.shutdown_http()
        return self.exit_code

    def request_shutdown(self) -> None:
        """Ask the ingest loop to stop (signal handler safe)."""
        self._shutdown.set()

    def shutdown_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the ingest loop finishes."""
        return self._done.wait(timeout)

    def stop(self, timeout: float = 30.0) -> int:
        """Graceful embedded shutdown: drain, join, stop HTTP."""
        self.request_shutdown()
        self.wait(timeout)
        if self._ingest_thread is not None:
            self._ingest_thread.join(timeout)
        self.shutdown_http()
        return self.exit_code

    # -- ingest --------------------------------------------------------
    def _ingest(self) -> None:
        self.source.stop_event = self._shutdown
        drained = False
        try:
            for chunk in self.source:
                for window in self.scheduler.offer(chunk):
                    self._advance(window)
                for window in self.scheduler.poll():
                    self._advance(window)
                if self._shutdown.is_set():
                    break
            if self.config.drain and not self._bounded_run_complete():
                final = self.scheduler.flush()
                if final is not None:
                    self._advance(final, draining=True)
            drained = True
        except Exception:
            logger.exception("ingest loop failed")
            self._ingest_error = "ingest loop failed"
            self.exit_code = 1
        finally:
            self._flush_recorder(
                "shutdown" if drained else "ingest_error"
            )
            self._shutdown.set()
            self._done.set()

    def _bounded_run_complete(self) -> bool:
        return (
            self.config.max_windows is not None
            and self.windows_processed >= self.config.max_windows
        )

    def _flush_recorder(self, reason: str) -> None:
        recorder_path = self.monitor.config.recorder_path
        if recorder_path is None:
            return
        try:
            self.telemetry.recorder.dump(recorder_path, reason=reason)
        except OSError:
            logger.exception("final flight-recorder flush failed")

    def _advance(self, window: Window, draining: bool = False) -> None:
        """Run one closed window through the pipeline and publish it."""
        registry = self.telemetry.registry
        start = time.perf_counter()
        try:
            summary = self.monitor.process_epoch(window.trace)
        except QuorumError as exc:
            self.quorum_failures += 1
            self._last_quorum_failed = True
            self.windows_processed += 1
            self._last_advance = time.monotonic()
            publish_serve_quorum_failure(registry)
            self.telemetry.recorder.record(
                "window_quorum_failed",
                epoch=window.index,
                error=str(exc),
            )
            logger.warning("window %d failed quorum: %s", window.index, exc)
            if self._bounded_run_complete() and not draining:
                self._shutdown.set()
            return
        queries: dict[str, dict] = {}
        degraded = False
        breaches = 0
        for endpoint, task_name in QUERY_ENDPOINTS.items():
            result = summary.results.get(task_name)
            if result is None:
                continue
            queries[endpoint] = serialize_answer(
                task_name, result.answer
            )
            degraded = degraded or result.degraded is not None
            breaches += len(result.slo_breaches)
        record = WindowRecord(
            window_id=window.index,
            opened_at=window.opened_at,
            closed_at=window.closed_at,
            packets=len(window.trace),
            bytes=window.trace.total_bytes,
            queries=queries,
            degraded=degraded,
            slo_breaches=breaches,
        )
        primary = summary.results.get(self.tasks[0].name)
        with self._lock:
            self._ring.append(record)
            if primary is not None:
                self._rows.append(epoch_row(primary))
        self.windows_processed += 1
        self._last_quorum_failed = False
        self._last_advance = time.monotonic()
        publish_serve_window(
            registry, record, time.perf_counter() - start
        )
        if self._bounded_run_complete() and not draining:
            self._shutdown.set()

    # -- HTTP views ----------------------------------------------------
    def metrics_text(self) -> str:
        return prometheus_text(self.telemetry.registry)

    def dash_html(self) -> str:
        primary = self.tasks[0]
        with self._lock:
            rows = list(self._rows)
        return html_report(
            rows,
            self.telemetry.registry,
            title=(
                f"SketchVisor serve — "
                f"{primary.name}/{primary.solution}"
            ),
            subtitle=(
                f"{self.windows_processed} window(s), "
                f"{self.quorum_failures} quorum failure(s), "
                f"ring of {self.config.ring_windows}"
            ),
        )

    def _stale_after(self) -> float | None:
        if self.config.stale_after is not None:
            return self.config.stale_after
        if self.config.window_seconds is not None:
            return max(5.0 * self.config.window_seconds, 10.0)
        return None

    def health(self) -> tuple[int, dict]:
        """Liveness: the ingest loop is running and windows advance."""
        now = time.monotonic()
        body: dict = {
            "status": "ok",
            "windows": self.windows_processed,
            "quorum_failures": self.quorum_failures,
            "uptime_seconds": round(now - self._started_at, 3),
        }
        if self._ingest_error is not None:
            body["status"] = "ingest_failed"
            return 503, body
        stale_after = self._stale_after()
        last = self._last_advance
        if (
            stale_after is not None
            and not self._done.is_set()
            and (last or self._started_at) + stale_after < now
        ):
            body["status"] = "stalled"
            body["seconds_since_window"] = round(
                now - (last or self._started_at), 3
            )
            return 503, body
        return 200, body

    def ready(self) -> tuple[int, dict]:
        """Readiness: at least one recovered window, quorum holding."""
        code, body = self.health()
        with self._lock:
            have_window = bool(self._ring)
            last_id = self._ring[-1].window_id if self._ring else None
        body["last_window_id"] = last_id
        if code != 200:
            return code, body
        if not have_window:
            body["status"] = "no_window_yet"
            return 503, body
        if self._last_quorum_failed:
            body["status"] = "quorum_failed"
            return 503, body
        return 200, body

    def query(self, endpoint: str) -> tuple[int, dict]:
        """One query endpoint: latest window + the recent ring."""
        task_name = QUERY_ENDPOINTS.get(endpoint)
        if task_name is None:
            return 404, {"error": f"unknown query {endpoint!r}"}
        if task_name not in {task.name for task in self.tasks}:
            return 404, {
                "error": f"task {task_name!r} not configured",
                "tasks": sorted(task.name for task in self.tasks),
            }
        with self._lock:
            records = [
                record
                for record in self._ring
                if endpoint in record.queries
            ]
        if not records:
            return 503, {
                "error": "no recovered window yet",
                "windows": self.windows_processed,
            }
        newest_first = list(reversed(records))
        return 200, {
            "task": task_name,
            "window": newest_first[0].query_body(endpoint),
            "recent": [
                record.query_body(endpoint)
                for record in newest_first
            ],
        }

    def index(self) -> tuple[int, dict]:
        return 200, {
            "service": "sketchvisor-serve",
            "endpoints": [
                "/metrics",
                "/dash",
                "/healthz",
                "/readyz",
                *(
                    f"/query/{endpoint}"
                    for endpoint in QUERY_ENDPOINTS
                ),
            ],
            "windows": self.windows_processed,
        }
