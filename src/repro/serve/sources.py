"""Packet sources for the streaming service.

A source is just an iterable of packet chunks (tuples of
:class:`~repro.traffic.trace.Packet`); the service feeds each chunk to
the :class:`~repro.framework.pipeline.WindowScheduler` and runs
whatever windows close.  Two concrete sources cover the daemon's two
deployment stories:

* :class:`ReplaySource` — iterate an existing trace in chunks,
  optionally paced to a packet rate and optionally looping, so real
  (or previously generated) traffic drives the live pipeline;
* :class:`SyntheticSource` — an endless stream of generated segments
  with a fresh seed per segment, for soak runs and smoke tests with
  no trace on disk.

Pacing sleeps in small slices and checks the service's shutdown event
between them, so SIGTERM never waits out a long rate-limit sleep.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator

from repro.common.errors import ConfigError
from repro.common.flow import Packet
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.trace import Trace

#: Default packets per chunk offered to the window scheduler.
DEFAULT_CHUNK_PACKETS = 512

#: Longest single sleep while pacing, so shutdown stays responsive.
_SLEEP_SLICE = 0.05


class PacketSource:
    """Base class: chunk iteration plus shared rate pacing."""

    def __init__(
        self,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
        rate_pps: float | None = None,
    ):
        if chunk_packets < 1:
            raise ConfigError("chunk_packets must be >= 1")
        if rate_pps is not None and rate_pps <= 0:
            raise ConfigError("rate_pps must be > 0")
        self.chunk_packets = chunk_packets
        self.rate_pps = rate_pps
        #: Set by the service before iteration; pacing sleeps and the
        #: chunk loop both stop promptly once it is set.
        self.stop_event: threading.Event | None = None
        # Timestamp of the last packet emitted, so segment boundaries
        # (a looped replay pass, the next synthetic seed) rebase onto
        # one continuous stream clock — windows that straddle a
        # boundary must still satisfy Trace's monotonicity invariant.
        self._last_ts: float | None = None

    # ------------------------------------------------------------------
    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    def _pace(self, packets: int) -> None:
        """Sleep long enough that ``packets`` arrive at ``rate_pps``."""
        if self.rate_pps is None:
            return
        deadline = time.monotonic() + packets / self.rate_pps
        while not self._stopped():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, _SLEEP_SLICE))

    def _rebased(self, trace: Trace) -> tuple[Packet, ...]:
        """The trace's packets on the continuous stream clock.

        The very first segment passes through untouched (so a single
        replay pass stays bit-identical to the trace on disk); later
        segments are shifted so they start where the stream left off.
        """
        packets = trace.packets
        if not packets or self._last_ts is None:
            return packets
        shift = self._last_ts - packets[0].timestamp
        if shift <= 0:
            return packets
        return tuple(
            Packet(packet.flow, packet.size, packet.timestamp + shift)
            for packet in packets
        )

    def _chunks_of(self, trace: Trace) -> Iterator[tuple]:
        packets = self._rebased(trace)
        for start in range(0, len(packets), self.chunk_packets):
            if self._stopped():
                return
            chunk = packets[start:start + self.chunk_packets]
            yield chunk
            self._last_ts = chunk[-1].timestamp
            self._pace(len(chunk))

    def __iter__(self) -> Iterator[tuple]:  # pragma: no cover
        raise NotImplementedError


class ReplaySource(PacketSource):
    """Replay an existing trace in chunks, optionally paced + looped.

    Parameters
    ----------
    trace:
        The trace to replay.
    chunk_packets:
        Packets per chunk offered downstream.
    rate_pps:
        Target packet rate (packets/second); ``None`` replays as fast
        as the pipeline drains.
    loop:
        Restart from the beginning when the trace ends (an endless
        soak from one capture).
    """

    def __init__(
        self,
        trace: Trace,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
        rate_pps: float | None = None,
        loop: bool = False,
    ):
        super().__init__(chunk_packets, rate_pps)
        if len(trace) == 0:
            raise ConfigError("cannot replay an empty trace")
        self.trace = trace
        self.loop = loop

    def __iter__(self) -> Iterator[tuple]:
        while True:
            yield from self._chunks_of(self.trace)
            if not self.loop or self._stopped():
                return


class SyntheticSource(PacketSource):
    """An endless synthetic stream: one generated segment per seed.

    Segment ``i`` is ``generate_trace(config.with_seed(seed + i))``,
    so the stream never repeats, stays fully deterministic for a given
    base seed, and each segment carries the same heavy-tailed flow
    structure the batch experiments use.
    """

    def __init__(
        self,
        config: TraceConfig,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
        rate_pps: float | None = None,
        max_segments: int | None = None,
    ):
        super().__init__(chunk_packets, rate_pps)
        if max_segments is not None and max_segments < 1:
            raise ConfigError("max_segments must be >= 1")
        self.config = config
        self.max_segments = max_segments

    def __iter__(self) -> Iterator[tuple]:
        segment = 0
        while self.max_segments is None or segment < self.max_segments:
            if self._stopped():
                return
            trace = generate_trace(
                self.config.with_seed(self.config.seed + segment)
            )
            yield from self._chunks_of(trace)
            segment += 1
