"""The HTTP observability plane: stdlib only, one port, all surfaces.

Routes (all ``GET``):

``/metrics``
    Prometheus text exposition of the live registry
    (``text/plain; version=0.0.4``), scrape-safe while windows
    advance — the registry locks its family/children dicts.
``/dash``
    The self-contained HTML dashboard re-rendered from the window
    history on every request.
``/healthz`` / ``/readyz``
    Liveness (ingest loop running, windows advancing) and readiness
    (first window recovered, quorum holding) as JSON.
``/query/heavy-hitters`` / ``/query/cardinality`` / ``/query/fsd``
    The latest recovered window plus the recent ring, each entry
    stamped with window-id/timestamp provenance.  ``503`` until the
    first window closes.

Served by :class:`http.server.ThreadingHTTPServer` with daemon
threads; request handling never blocks ingest beyond the window-ring
mutex.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.telemetry.publish import publish_http_request

logger = logging.getLogger(__name__)

#: The content type Prometheus expects from a text-format scrape.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityHandler(BaseHTTPRequestHandler):
    server_version = "sketchvisor-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _respond(
        self, code: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)
        service = self.server.service
        publish_http_request(
            service.telemetry.registry,
            urlsplit(self.path).path,
            code,
        )

    def _respond_json(self, code: int, document: dict) -> None:
        body = (json.dumps(document, indent=2) + "\n").encode()
        self._respond(code, body, "application/json; charset=utf-8")

    # -- routing -------------------------------------------------------
    def do_HEAD(self) -> None:  # noqa: N802 (stdlib handler name)
        """HEAD mirrors GET minus the body (`curl -I` health checks)."""
        self.do_GET()

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        service = self.server.service
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._respond(
                    200,
                    service.metrics_text().encode(),
                    PROMETHEUS_CONTENT_TYPE,
                )
            elif path == "/dash":
                self._respond(
                    200,
                    service.dash_html().encode(),
                    "text/html; charset=utf-8",
                )
            elif path == "/healthz":
                self._respond_json(*service.health())
            elif path == "/readyz":
                self._respond_json(*service.ready())
            elif path.startswith("/query/"):
                endpoint = path[len("/query/"):]
                self._respond_json(*service.query(endpoint))
            elif path == "/":
                self._respond_json(*service.index())
            else:
                self._respond_json(
                    404, {"error": f"no route {path!r}"}
                )
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception:
            logger.exception("request handler failed for %s", path)
            try:
                self._respond_json(
                    500, {"error": "internal server error"}
                )
            except OSError:
                pass


class ObservabilityServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`MeasurementService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service):
        super().__init__(address, ObservabilityHandler)
        self.service = service
