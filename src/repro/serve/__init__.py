"""Streaming service mode: ``repro serve``.

Turns the batch experiment runner into a long-running measurement
daemon: a packet source (trace replay or synthetic generator) feeds
sliding windows through the unchanged pipeline, and the whole
observability stack — Prometheus metrics, the HTML dashboard, health
probes, and per-window JSON query endpoints — is served live over one
HTTP port.  See ``docs/observability.md`` ("Service mode").
"""

from repro.serve.httpd import (
    PROMETHEUS_CONTENT_TYPE,
    ObservabilityServer,
)
from repro.serve.service import (
    QUERY_ENDPOINTS,
    MeasurementService,
    ServeConfig,
    WindowRecord,
    serialize_answer,
)
from repro.serve.sources import (
    DEFAULT_CHUNK_PACKETS,
    PacketSource,
    ReplaySource,
    SyntheticSource,
)

__all__ = [
    "DEFAULT_CHUNK_PACKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "QUERY_ENDPOINTS",
    "MeasurementService",
    "ObservabilityServer",
    "PacketSource",
    "ReplaySource",
    "ServeConfig",
    "SyntheticSource",
    "WindowRecord",
    "serialize_answer",
]
