"""Host wrapper: one data-plane instance reporting to the control plane.

Each epoch, the host runs its traffic shard through the software switch
and emits a :class:`LocalReport` — the normal-path sketch, the fast-path
snapshot (top-k table with bounds plus the ``V``/``E`` globals), and the
switch statistics — mirroring the per-epoch ZeroMQ report of the
prototype (§6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.cost_model import CostModel
from repro.dataplane.switch import SoftwareSwitch, SwitchReport
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath, FastPathSnapshot
from repro.sketches.base import Sketch
from repro.traffic.trace import Trace


@dataclass
class LocalReport:
    """One host's per-epoch report to the controller."""

    host_id: int
    sketch: Sketch
    fastpath: FastPathSnapshot | None
    switch: SwitchReport


class Host:
    """A monitored host: software switch + measurement module.

    Parameters
    ----------
    host_id:
        Identifier used in control-plane reports.
    sketch:
        Normal-path solution.  All hosts in a deployment must build
        their sketches from the same seed so the controller can merge
        them counter-wise.
    fastpath_bytes:
        Fast-path memory (paper default 8 KB); ``None`` disables the
        fast path (NoFastPath arm).
    use_misra_gries:
        Use the Misra-Gries baseline in the fast path (MGFastPath arm).
    ideal:
        Run the accuracy yardstick (all packets through the normal path).
    batch:
        Use the two-phase batched switch engine (identical results,
        vectorized sketch updates).
    """

    def __init__(
        self,
        host_id: int,
        sketch: Sketch,
        fastpath_bytes: int | None = 8192,
        use_misra_gries: bool = False,
        ideal: bool = False,
        cost_model: CostModel | None = None,
        buffer_packets: int = 1024,
        batch: bool = False,
        telemetry=None,
    ):
        self.host_id = host_id
        self.sketch = sketch
        if ideal or fastpath_bytes is None:
            self.fastpath = None
        elif use_misra_gries:
            self.fastpath = MisraGriesTopK(fastpath_bytes)
        else:
            self.fastpath = FastPath(fastpath_bytes)
        self.switch = SoftwareSwitch(
            sketch=sketch,
            fastpath=self.fastpath,
            cost_model=cost_model,
            buffer_packets=buffer_packets,
            ideal=ideal,
            batch=batch,
            telemetry=telemetry,
            host_label=str(host_id),
        )

    def run_epoch(
        self, trace: Trace, offered_gbps: float | None = None
    ) -> LocalReport:
        """Process one epoch and emit the control-plane report."""
        switch_report = self.switch.process(trace, offered_gbps)
        snapshot = (
            self.fastpath.snapshot()
            if isinstance(self.fastpath, FastPath)
            else None
        )
        return LocalReport(
            host_id=self.host_id,
            sketch=self.sketch,
            fastpath=snapshot,
            switch=switch_report,
        )

    def reset(self) -> None:
        """Clear sketch and fast path for the next epoch (§6)."""
        self.sketch.reset()
        if self.fastpath is not None:
            self.fastpath.reset()


class MultiCoreHost:
    """A host that parallelizes measurement across CPU cores (§7.2).

    The paper: "We can further boost the throughput by parallelizing
    the normal path and fast path with multiple CPU cores and merging
    their results later in the control plane.  Our results show that
    two CPU cores are sufficient to achieve above 40 Gbps for all
    sketches."  Each core runs an independent switch (same sketch seed)
    over a flow-consistent share of the host's traffic; the per-core
    results merge exactly like per-host results do.

    Parameters
    ----------
    num_cores:
        Worker cores; traffic splits flow-consistently across them.
    """

    def __init__(
        self,
        host_id: int,
        sketch_factory,
        num_cores: int = 2,
        fastpath_bytes: int | None = 8192,
        cost_model: CostModel | None = None,
        buffer_packets: int = 1024,
        batch: bool = False,
    ):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.host_id = host_id
        self.num_cores = num_cores
        self.cores = [
            Host(
                host_id=host_id * 1000 + core,
                sketch=sketch_factory(),
                fastpath_bytes=fastpath_bytes,
                cost_model=cost_model,
                buffer_packets=buffer_packets,
                batch=batch,
            )
            for core in range(num_cores)
        ]

    def run_epoch(
        self, trace: Trace, offered_gbps: float | None = None
    ) -> LocalReport:
        """Process one epoch across all cores and merge the results."""
        from repro.controlplane.merge import (
            merge_fastpath_snapshots,
            merge_sketches,
        )
        from repro.dataplane.switch import SwitchReport

        shards = trace.partition(self.num_cores)
        per_core_rate = (
            None if offered_gbps is None else offered_gbps / self.num_cores
        )
        reports = [
            core.run_epoch(shard, per_core_rate)
            for core, shard in zip(self.cores, shards)
        ]
        merged_sketch = merge_sketches([r.sketch for r in reports])
        merged_snapshot = merge_fastpath_snapshots(
            [r.fastpath for r in reports]
        )
        combined = SwitchReport()
        for report in reports:
            switch = report.switch
            combined.total_packets += switch.total_packets
            combined.total_bytes += switch.total_bytes
            combined.normal_packets += switch.normal_packets
            combined.normal_bytes += switch.normal_bytes
            combined.fastpath_packets += switch.fastpath_packets
            combined.fastpath_bytes += switch.fastpath_bytes
            combined.normal_flows |= switch.normal_flows
            combined.fastpath_flows |= switch.fastpath_flows
            combined.producer_cycles = max(
                combined.producer_cycles, switch.producer_cycles
            )
            combined.consumer_cycles = max(
                combined.consumer_cycles, switch.consumer_cycles
            )
        # Cores run concurrently: the epoch finishes when the slowest
        # core does, so aggregate throughput is total bytes over the
        # longest makespan.
        combined.makespan_cycles = max(
            r.switch.makespan_cycles for r in reports
        )
        cost_model = self.cores[0].switch.cost_model
        combined.throughput_gbps = cost_model.gbps(
            combined.total_bytes, combined.makespan_cycles
        )
        return LocalReport(
            host_id=self.host_id,
            sketch=merged_sketch,
            fastpath=merged_snapshot,
            switch=combined,
        )

    def reset(self) -> None:
        for core in self.cores:
            core.reset()
