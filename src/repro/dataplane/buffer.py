"""The bounded FIFO between the kernel module and the normal path.

The prototype implements this as a lock-free circular buffer in shared
memory (§6, [27]).  For the simulation we track, per queued packet, the
cycle timestamp at which it was enqueued — the consumer cannot start
serving a packet before that.
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ConfigError
from repro.common.flow import Packet


class BoundedFIFO:
    """A bounded single-producer / single-consumer packet queue.

    Parameters
    ----------
    capacity:
        Maximum queued packets.  The paper sizes it to "hold all packets
        to be processed and absorb any transient spike"; its fullness is
        the (only) signal that diverts traffic to the fast path.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError("FIFO capacity must be >= 1")
        self.capacity = capacity
        #: Peak occupancy since the last :meth:`clear` — the buffer
        #: pressure signal the telemetry layer reports per epoch.
        self.high_water = 0
        self._queue: deque[tuple[Packet, float]] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, packet: Packet, enqueue_cycle: float) -> None:
        """Enqueue; caller must check :attr:`full` first."""
        if self.full:
            raise OverflowError("FIFO is full")
        self._queue.append((packet, enqueue_cycle))
        if len(self._queue) > self.high_water:
            self.high_water = len(self._queue)

    def pop(self) -> tuple[Packet, float]:
        """Dequeue the oldest packet and its enqueue cycle."""
        return self._queue.popleft()

    def peek_enqueue_cycle(self) -> float:
        """Enqueue cycle of the head packet (queue must be non-empty)."""
        return self._queue[0][1]

    def clear(self) -> None:
        self._queue.clear()
        self.high_water = 0

    def restore(
        self,
        items: list[tuple[Packet, float]],
        high_water: int,
    ) -> None:
        """Reload queue contents from a durability checkpoint.

        Replaces the current backlog wholesale; ``high_water`` is the
        recorded peak (always >= the restored length), so a resumed
        epoch reports the same buffer pressure an uninterrupted one
        would.
        """
        if len(items) > self.capacity:
            raise ConfigError(
                f"checkpoint holds {len(items)} queued packets but the "
                f"FIFO capacity is {self.capacity}"
            )
        self._queue = deque(items)
        self.high_water = max(high_water, len(self._queue))
