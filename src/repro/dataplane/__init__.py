"""Data plane (§3.1, §6): software switch with normal path + fast path.

The paper's prototype hooks Open vSwitch's kernel datapath: a kernel
module receives packets and either inserts their headers into a shared
lock-free FIFO (drained by the user-space daemon that runs the sketch)
or, when the FIFO is full, updates the fast path directly.

Here that architecture is reproduced as a two-actor discrete simulation:
a *producer* (kernel module: per-packet receive/dispatch cost, fast-path
updates) and a *consumer* (user-space daemon: per-packet sketch cost),
coupled by a bounded FIFO.  CPU costs come from a cost model calibrated
against the paper's Perf measurements (Figures 2a and 15), so measured
throughput, fast-path traffic share, and buffer behaviour follow from
the simulation rather than curve fitting.
"""

from repro.dataplane.buffer import BoundedFIFO
from repro.dataplane.cost_model import (
    CPU_HZ,
    CostModel,
    PAPER_CYCLES_PER_PACKET,
)
from repro.dataplane.host import Host, LocalReport, MultiCoreHost
from repro.dataplane.switch import SoftwareSwitch, SwitchReport

__all__ = [
    "BoundedFIFO",
    "CPU_HZ",
    "CostModel",
    "Host",
    "LocalReport",
    "MultiCoreHost",
    "PAPER_CYCLES_PER_PACKET",
    "SoftwareSwitch",
    "SwitchReport",
]
