"""CPU cost model calibrated against the paper's Perf measurements.

Substitution note (see DESIGN.md): the paper measures cycles/packet of a
C prototype on a Xeon X5670 with Perf.  A Python reproduction cannot
measure those cycles directly, so this model assigns cycle costs from
two ingredients:

1. *Operation counts* from each sketch's :meth:`cost_profile` (hashes,
   counter updates, heap operations, memory words), weighted by per-op
   cycle costs.  These produce the right *relative structure* — which
   operations dominate which solution — matching the paper's breakdown
   (§2.2: hashing dominates FlowRadar/RevSketch, counter updates
   dominate Deltoid, UnivMon splits hash/heap).
2. A per-solution *calibration factor*, fixed once so the paper's §7.1
   configurations land exactly on the measured cycles of Figure 15.
   The factor absorbs what op counts cannot see (cache behaviour,
   header randomization, branch costs) and is configuration-independent
   thereafter: resizing a sketch scales its cost through its op counts.

Everything downstream — throughput (Figure 6), fast-path share
(Figure 13), size sweeps (Figure 14) — derives from these per-packet
costs through the switch simulation, not from further fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fastpath.topk import ENTRY_BYTES, UpdateKind
from repro.sketches.base import CostProfile, Sketch

#: Xeon X5670 frequency, the paper's testbed CPU (§7.1).
CPU_HZ = 2.93e9

#: Paper-measured cycles/packet for the §7.1 configurations (Figure 15).
PAPER_CYCLES_PER_PACKET = {
    "deltoid": 10454.0,
    "univmon": 4382.0,
    "twolevel": 4292.0,
    "revsketch": 3858.0,
    "flowradar": 2584.0,
    "fm": 2403.0,
    "kmin": 2388.0,
    "lc": 2276.0,
    "mrac": 404.0,
    # Not in Figure 15: Trumpet's per-packet cost is implied by §7.6 /
    # Figure 17(a), where its throughput matches the sketch solutions
    # (~17 Gbps): 2.93e9 / 17e9 * 769 * 8 ~= 1060 cycles.  The paper's
    # Trumpet Packet Monitor does trigger matching and phase work that
    # op counts alone underestimate.
    "trumpet": 1060.0,
}

#: Fast-path costs (Figure 15): 47 cycles to record/update a flow; a
#: kick-out scans the whole table (12,332 cycles at the default 8 KB /
#: ~204-entry table, i.e. ~60 cycles per scanned entry).
FASTPATH_UPDATE_CYCLES = 47.0
FASTPATH_KICKOUT_CYCLES_PER_ENTRY = 60.0

#: Producer-side per-packet cost: kernel receive, header extraction and
#: the shared-memory FIFO insert.  Calibrated so a NoFastPath MRAC run
#: (404-cycle consumer) saturates near the paper's ~40 Gbps in-memory
#: result: 2.93e9 / (404 + 46) cycles * 769 B = 40 Gbps.
DISPATCH_CYCLES_INMEMORY = 46.0
#: The testbed adds the real OVS kernel datapath around measurement.
DISPATCH_CYCLES_TESTBED = 400.0
#: Kernel-bypass (DPDK) receive path — the paper's future-work target
#: (§6: "Open vSwitch integrated with DPDK ... we expect SketchVisor
#: provides even more performance and accuracy benefits").  Poll-mode
#: drivers deliver packets for a few tens of cycles.
DISPATCH_CYCLES_DPDK = 25.0

#: Per-operation cycle weights (ingredient 1 above).
_CYCLES_PER_HASH = 70.0
_CYCLES_PER_COUNTER_UPDATE = 45.0
_CYCLES_PER_HEAP_OP = 60.0
_CYCLES_PER_MEMORY_WORD = 20.0
_CYCLES_BASE = 80.0

#: Op counts of the §7.1 configurations used to pin calibration factors.
#: (RevSketch: the 5-tuple paper config hashes 7 words x 4 rows + key
#: mangling; other entries equal the defaults in this repo.)
_PAPER_PROFILE = {
    "deltoid": CostProfile(hashes=4, counter_updates=4 * 53),
    "univmon": CostProfile(hashes=41, counter_updates=10, heap_ops=4),
    "twolevel": CostProfile(hashes=20, counter_updates=8),
    "revsketch": CostProfile(hashes=30, counter_updates=4),
    "flowradar": CostProfile(
        hashes=8, counter_updates=4, memory_words=4
    ),
    "fm": CostProfile(hashes=8, counter_updates=4),
    "kmin": CostProfile(hashes=4, counter_updates=4),
    "lc": CostProfile(hashes=4, counter_updates=4),
    "mrac": CostProfile(hashes=1, counter_updates=1),
    # Trumpet at its steady-state mean chain length (~1.3 probes).
    "trumpet": CostProfile(
        hashes=1, counter_updates=1, memory_words=10.6
    ),
}


def raw_cycles(profile: CostProfile) -> float:
    """Uncalibrated cycles from op counts alone."""
    return (
        _CYCLES_BASE
        + profile.hashes * _CYCLES_PER_HASH
        + profile.counter_updates * _CYCLES_PER_COUNTER_UPDATE
        + profile.heap_ops * _CYCLES_PER_HEAP_OP
        + profile.memory_words * _CYCLES_PER_MEMORY_WORD
    )


def _calibration_factors() -> dict[str, float]:
    return {
        name: PAPER_CYCLES_PER_PACKET[name] / raw_cycles(profile)
        for name, profile in _PAPER_PROFILE.items()
    }


_CALIBRATION = _calibration_factors()


@dataclass(frozen=True)
class CostModel:
    """Cycle accounting for one simulated host.

    Parameters
    ----------
    cpu_hz:
        Core frequency.
    dispatch_cycles:
        Producer-side per-packet overhead (see module constants for the
        in-memory and testbed profiles).
    """

    cpu_hz: float = CPU_HZ
    dispatch_cycles: float = DISPATCH_CYCLES_INMEMORY

    @classmethod
    def in_memory(cls) -> "CostModel":
        """The paper's in-memory tester profile (§7.1)."""
        return cls(dispatch_cycles=DISPATCH_CYCLES_INMEMORY)

    @classmethod
    def testbed(cls) -> "CostModel":
        """The paper's OVS testbed profile (§7.1)."""
        return cls(dispatch_cycles=DISPATCH_CYCLES_TESTBED)

    @classmethod
    def dpdk(cls) -> "CostModel":
        """Kernel-bypass profile — the paper's future-work setting.

        With the forwarding pipeline faster, measurement is a *larger*
        share of the per-packet budget, so the fast path's relief is
        worth more (the paper's §6 expectation; exercised by
        ``benchmarks/test_fig06_throughput.py``).
        """
        return cls(dispatch_cycles=DISPATCH_CYCLES_DPDK)

    # ------------------------------------------------------------------
    def sketch_cycles(self, sketch: Sketch) -> float:
        """Cycles the normal path spends recording one packet."""
        factor = _CALIBRATION.get(sketch.name, 1.0)
        return factor * raw_cycles(sketch.cost_profile())

    def fastpath_cycles(self, kind: UpdateKind, capacity: int) -> float:
        """Cycles one fast-path update consumed."""
        if kind is UpdateKind.KICKOUT:
            return FASTPATH_KICKOUT_CYCLES_PER_ENTRY * capacity
        return FASTPATH_UPDATE_CYCLES

    def fastpath_kickout_cycles(self, memory_bytes: int) -> float:
        """Kick-out cost for a fast path of the given memory size."""
        return FASTPATH_KICKOUT_CYCLES_PER_ENTRY * (
            memory_bytes // ENTRY_BYTES
        )

    # ------------------------------------------------------------------
    def gbps(self, total_bytes: float, cycles: float) -> float:
        """Convert (bytes, consumed cycles) into sustained Gbps."""
        if cycles <= 0:
            return float("inf")
        seconds = cycles / self.cpu_hz
        return total_bytes * 8.0 / seconds / 1e9

    def consumer_rate_gbps(
        self, sketch: Sketch, mean_packet_bytes: float = 769.0
    ) -> float:
        """Saturation throughput of the normal path alone (Figure 2b)."""
        packets_per_second = self.cpu_hz / self.sketch_cycles(sketch)
        return packets_per_second * mean_packet_bytes * 8.0 / 1e9

    def threaded_rate_gbps(
        self,
        sketch: Sketch,
        threads: int,
        mean_packet_bytes: float = 769.0,
        serial_fraction: float = 0.10,
    ) -> float:
        """Multi-thread scaling of the normal path (Figure 2b).

        Amdahl-style contention: shared counter arrays and the packet
        distribution stage serialize ~10% of the work, which is why the
        paper's Deltoid barely reaches 5 Gbps even with five threads.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        speedup = 1.0 / (
            serial_fraction + (1.0 - serial_fraction) / threads
        )
        return self.consumer_rate_gbps(sketch, mean_packet_bytes) * speedup
