"""The software-switch measurement module: normal path + fast path.

Two coupled actors simulate the prototype's architecture (§6):

* the **producer** models the kernel module: it receives each packet
  (``dispatch_cycles``), then either enqueues its header into the
  bounded FIFO (when there is room) or updates the fast path in place
  (when the FIFO is full) — exactly the paper's dispatch rule, with no
  proactive packet classification (§3.1);
* the **consumer** models the user-space daemon: it drains the FIFO and
  records each packet into the normal-path sketch at the sketch's
  calibrated per-packet cycle cost, running concurrently on its own
  core.

Three operating modes cover the paper's evaluation arms:

* ``fastpath`` given — SketchVisor (or MGFastPath when handed a
  :class:`~repro.fastpath.misra_gries.MisraGriesTopK`);
* ``fastpath=None`` — NoFastPath: the producer *blocks* on a full FIFO
  (nothing is dropped, so the measured throughput collapses to the
  normal path's rate, matching Figure 6);
* ``ideal=True`` — the accuracy yardstick: every packet goes through
  the normal path with no capacity constraint (§7.3 "Ideal").
"""

from __future__ import annotations

import time
from itertools import repeat

import numpy as np

from repro.common.errors import ConfigError
from repro.dataplane.buffer import BoundedFIFO
from repro.dataplane.cost_model import CostModel
from repro.dataplane.engine import (
    HostEngine,
    SwitchReport,
    arrival_cycles_array,
)
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath
from repro.sketches.base import Sketch
from repro.telemetry import Telemetry, trace_span
from repro.telemetry.publish import (
    fastpath_stats,
    publish_fastpath_epoch,
    publish_switch_epoch,
)

__all__ = ["SoftwareSwitch", "SwitchReport"]


class SoftwareSwitch:
    """One host's measurement module.

    Parameters
    ----------
    sketch:
        The normal-path sketch-based solution (operator's choice, §3.1).
    fastpath:
        A :class:`FastPath` / :class:`MisraGriesTopK`, or None for
        NoFastPath (blocking) behaviour.
    cost_model:
        Cycle accounting (in-memory or testbed profile).
    buffer_packets:
        FIFO capacity in packets.
    ideal:
        When True, bypass all capacity limits (accuracy yardstick).
    batch:
        When True, run the two-phase batched simulation: a cheap
        per-packet *cycle-accounting* pass decides routing (normal path
        vs fast path vs block) exactly as the scalar loop does, and a
        *batch-apply* pass then feeds all normal-path packets to the
        sketch's vectorized ``update_batch`` in one call.  Counter
        state never influences routing and is order-insensitive within
        an epoch, so reports and counters are bit-identical to the
        scalar path.
    """

    def __init__(
        self,
        sketch: Sketch,
        fastpath: FastPath | MisraGriesTopK | None = None,
        cost_model: CostModel | None = None,
        buffer_packets: int = 1024,
        ideal: bool = False,
        batch: bool = False,
        telemetry: Telemetry | None = None,
        host_label: str = "0",
    ):
        if ideal and fastpath is not None:
            raise ConfigError("ideal mode does not use a fast path")
        self.sketch = sketch
        self.fastpath = fastpath
        self.cost_model = cost_model or CostModel.in_memory()
        self.buffer = BoundedFIFO(buffer_packets)
        self.ideal = ideal
        self.batch = batch
        self.telemetry = telemetry
        self.host_label = host_label
        #: Optional :class:`~repro.telemetry.profiling.Profiler`; the
        #: pipeline attaches one (serially, or per worker) so both
        #: engines attribute their epoch wall time to named stages.
        #: Independent of ``telemetry`` — per-host metrics publish
        #: centrally from reports, but stage timers must run where the
        #: cycles are spent.
        self.profiler = None
        # Fast-path operation counters are lifetime totals; remember
        # what was already published so each epoch increments by delta.
        self._published_fastpath: dict[str, float] | None = None

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The evaluation arm this switch realizes (for log lines)."""
        if self.ideal:
            return "ideal"
        if self.fastpath is None:
            return "no_fastpath"
        if isinstance(self.fastpath, MisraGriesTopK):
            return "mg_fastpath"
        return "sketchvisor"

    def describe(self) -> str:
        """One-line configuration summary for logs and error messages."""
        parts = [
            f"mode={self.mode}",
            f"engine={'batch' if self.batch else 'scalar'}",
            f"sketch={self.sketch.describe()}",
            f"buffer={self.buffer.capacity}p",
        ]
        if self.fastpath is not None:
            parts.append(
                f"fastpath={type(self.fastpath).__name__}"
                f"(k={self.fastpath.capacity})"
            )
        parts.append(
            f"telemetry={'on' if self.telemetry is not None else 'off'}"
        )
        return f"SoftwareSwitch({', '.join(parts)})"

    def __repr__(self) -> str:
        return self.describe()

    # ------------------------------------------------------------------
    def process(self, trace, offered_gbps: float | None = None) -> SwitchReport:
        """Run one epoch of traffic through the measurement module.

        ``offered_gbps`` scales the trace's timestamps to the given
        arrival rate; ``None`` replays back-to-back ("each host sends
        out traffic as fast as possible", §7.1), which measures the
        switch's maximum sustainable throughput.

        Dispatches to the scalar or the two-phase batched engine
        depending on ``batch``; both produce identical reports.
        """
        engine = "batch" if self.batch else "scalar"
        with trace_span(
            self.telemetry,
            "switch.process",
            host=self.host_label,
            engine=engine,
        ):
            if self.batch:
                report = self._process_batch(trace, offered_gbps)
            else:
                report = self._process_scalar(trace, offered_gbps)
        if self.telemetry is not None:
            self._publish(report, engine)
        return report

    def _publish(self, report: SwitchReport, engine: str) -> None:
        """Publish this epoch's counters (fast-path stats by delta)."""
        registry = self.telemetry.registry
        publish_switch_epoch(
            registry,
            report,
            host=self.host_label,
            sketch=self.sketch.name,
            engine=engine,
        )
        if self.fastpath is None:
            return
        stats = fastpath_stats(self.fastpath)
        previous = self._published_fastpath
        if previous is not None:
            deltas = {
                key: value - previous.get(key, 0.0)
                for key, value in stats.items()
            }
            deltas["tracked"] = stats["tracked"]  # gauge: absolute
        else:
            deltas = stats
        self._published_fastpath = stats
        publish_fastpath_epoch(registry, deltas, host=self.host_label)

    def _process_scalar(
        self, trace, offered_gbps: float | None = None
    ) -> SwitchReport:
        """The per-packet reference implementation (see ``engine.py``).

        Delegates to a fresh :class:`HostEngine` over the switch's own
        FIFO, so the interactive switch and the resumable/supervised
        paths execute one shared loop.
        """
        engine = HostEngine(
            sketch=self.sketch,
            fastpath=self.fastpath,
            cost_model=self.cost_model,
            ideal=self.ideal,
            fifo=self.buffer,
            profiler=self.profiler,
        )
        arrivals = self._arrival_cycles_array(trace, offered_gbps)
        engine.run(
            trace.packets,
            None if arrivals is None else arrivals.tolist(),
        )
        return engine.finish()

    # ------------------------------------------------------------------
    # Two-phase batched engine
    # ------------------------------------------------------------------
    def _process_batch(
        self, trace, offered_gbps: float | None = None
    ) -> SwitchReport:
        """Phase 1: cycle accounting + routing; phase 2: batch apply.

        The cycle recurrences are evaluated with the *same sequential
        floating-point operations* as the scalar loop (closed-form
        reassociation would change rounding), but without any sketch
        hashing — the expensive per-packet work moves into one
        vectorized ``update_batch`` call at the end.
        """
        report = SwitchReport()
        sketch_cycles = self.cost_model.sketch_cycles(self.sketch)
        dispatch = self.cost_model.dispatch_cycles
        arrivals = self._arrival_cycles_array(trace, offered_gbps)
        n = len(trace)
        profiler = self.profiler
        clock = time.perf_counter_ns if profiler is not None else None

        if self.ideal:
            loop_start = clock() if clock is not None else 0
            producer = 0.0
            consumer = 0.0
            if arrivals is None:
                for _ in range(n):
                    producer = producer + dispatch
                    consumer = max(consumer, producer) + sketch_cycles
            else:
                for arrival in arrivals.tolist():
                    producer = max(producer, arrival) + dispatch
                    consumer = max(consumer, producer) + sketch_cycles
            if profiler is not None:
                profiler.add(
                    "switch.dispatch", clock() - loop_start, n
                )
                with profiler.stage(
                    "switch.sketch_update", packets=n
                ):
                    self._apply_normal_batch(trace, None)
            else:
                self._apply_normal_batch(trace, None)
            report.total_packets = n
            report.total_bytes = float(trace.sizes.sum())
            report.normal_packets = n
            report.normal_bytes = report.total_bytes
            report.normal_flows = trace.flows()
            report.producer_cycles = producer
            report.consumer_cycles = consumer
            report.makespan_cycles = max(producer, consumer)
            report.throughput_gbps = self.cost_model.gbps(
                report.total_bytes, report.makespan_cycles
            )
            return report

        producer = 0.0
        consumer = 0.0
        fifo = self.buffer
        fifo.clear()
        normal_indices: list[int] = []
        arrival_iter = repeat(0.0, n) if arrivals is None else iter(
            arrivals.tolist()
        )
        loop_start = clock() if clock is not None else 0
        fp_ns = 0
        fp_count = 0

        for index, (packet, arrival) in enumerate(
            zip(trace.packets, arrival_iter)
        ):
            now = max(producer, arrival)
            while not fifo.empty:
                start = max(consumer, fifo.peek_enqueue_cycle())
                if start + sketch_cycles > now:
                    break
                fifo.pop()
                consumer = start + sketch_cycles

            producer = now + dispatch
            report.total_packets += 1
            report.total_bytes += packet.size

            if fifo.full and self.fastpath is None:
                # NoFastPath: block until the daemon frees a slot.
                start = max(consumer, fifo.peek_enqueue_cycle())
                fifo.pop()
                consumer = start + sketch_cycles
                producer = max(producer, consumer)

            if not fifo.full:
                fifo.push(packet, producer)
                normal_indices.append(index)
                report.normal_packets += 1
                report.normal_bytes += packet.size
                report.normal_flows.add(packet.flow)
            else:
                # The fast path is order-dependent (top-k kick-outs), so
                # it stays inline in the accounting pass.
                if clock is None:
                    kind = self.fastpath.update(packet.flow, packet.size)
                else:
                    t0 = clock()
                    kind = self.fastpath.update(packet.flow, packet.size)
                    fp_ns += clock() - t0
                    fp_count += 1
                producer += self.cost_model.fastpath_cycles(
                    kind, self.fastpath.capacity
                )
                report.fastpath_packets += 1
                report.fastpath_bytes += packet.size
                report.fastpath_flows.add(packet.flow)

        while not fifo.empty:
            _packet, enqueued = fifo.pop()
            consumer = max(consumer, enqueued) + sketch_cycles

        if profiler is not None:
            loop_ns = clock() - loop_start
            if fp_count:
                profiler.add("fastpath.topk", fp_ns, fp_count)
            profiler.add(
                "switch.dispatch", max(loop_ns - fp_ns, 0), n
            )

        if normal_indices:
            if profiler is not None:
                with profiler.stage(
                    "switch.sketch_update",
                    packets=len(normal_indices),
                ):
                    self._apply_normal_batch(
                        trace,
                        np.asarray(normal_indices, dtype=np.intp),
                    )
            else:
                self._apply_normal_batch(
                    trace, np.asarray(normal_indices, dtype=np.intp)
                )

        report.buffer_high_water = fifo.high_water
        report.producer_cycles = float(producer)
        report.consumer_cycles = float(consumer)
        report.makespan_cycles = max(
            report.producer_cycles, report.consumer_cycles
        )
        report.throughput_gbps = self.cost_model.gbps(
            report.total_bytes, report.makespan_cycles
        )
        return report

    def _apply_normal_batch(self, trace, indices) -> None:
        """Apply deferred normal-path updates (``indices=None`` = all).

        Sketches whose updates are key64-pure take the vectorized
        column path; the rest (RevSketch, Deltoid, FlowRadar, UnivMon)
        fall back to the scalar per-packet loop, which is trivially
        identical to the scalar engine.
        """
        sketch = self.sketch
        if sketch.key64_updates:
            if indices is None:
                sketch.update_batch(trace.key64, trace.sizes)
            else:
                sketch.update_batch(
                    trace.key64[indices], trace.sizes[indices]
                )
            return
        packets = trace.packets
        selected = range(len(packets)) if indices is None else indices.tolist()
        for index in selected:
            packet = packets[index]
            sketch.update(packet.flow, packet.size)

    # ------------------------------------------------------------------
    def _arrival_cycles_array(self, trace, offered_gbps: float | None):
        """Per-packet arrival cycles (``None`` = back-to-back replay).

        See :func:`repro.dataplane.engine.arrival_cycles_array`.
        """
        return arrival_cycles_array(trace, offered_gbps, self.cost_model)
