"""The resumable per-host measurement engine.

This module factors the software switch's scalar per-packet loop into a
:class:`HostEngine` whose *entire* execution state — sketch, fast path,
FIFO backlog, producer/consumer clocks, partially-filled report, and
the trace offset — lives on the instance between calls.  That makes one
epoch **interruptible and resumable**: ``run(..., stop_at=k)`` processes
packets up to offset ``k`` and returns; calling ``run`` again continues
exactly where the previous call stopped, producing a bit-identical
:class:`SwitchReport` to an uninterrupted run.

Resumability is what the durability subsystem (``repro.durability``)
builds on: a :class:`~repro.durability.Checkpointer` snapshots the
engine at periodic packet boundaries via the ``on_checkpoint`` hook, a
crashed host's engine is reconstructed from the last snapshot, and only
the journaled tail of the trace is replayed.

:class:`~repro.dataplane.switch.SoftwareSwitch` delegates its scalar
path here, so the interactive switch, the supervised pipeline, and the
checkpoint/replay tests all execute the *same* reference loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey
from repro.dataplane.buffer import BoundedFIFO
from repro.dataplane.cost_model import CostModel
from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.topk import FastPath


@dataclass
class SwitchReport:
    """Per-epoch statistics of one software switch."""

    total_packets: int = 0
    total_bytes: float = 0.0
    normal_packets: int = 0
    normal_bytes: float = 0.0
    fastpath_packets: int = 0
    fastpath_bytes: float = 0.0
    producer_cycles: float = 0.0
    consumer_cycles: float = 0.0
    makespan_cycles: float = 0.0
    throughput_gbps: float = 0.0
    buffer_high_water: int = 0
    normal_flows: set[FlowKey] = field(default_factory=set)
    fastpath_flows: set[FlowKey] = field(default_factory=set)

    @property
    def fastpath_packet_fraction(self) -> float:
        if self.total_packets == 0:
            return 0.0
        return self.fastpath_packets / self.total_packets

    @property
    def fastpath_byte_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.fastpath_bytes / self.total_bytes

    @property
    def fastpath_flow_fraction(self) -> float:
        total = len(self.normal_flows | self.fastpath_flows)
        if total == 0:
            return 0.0
        return len(self.fastpath_flows) / total


def arrival_cycles_array(trace, offered_gbps, cost_model: CostModel):
    """Per-packet arrival cycles for a trace replayed at ``offered_gbps``.

    Returns ``None`` for back-to-back replay (``offered_gbps=None`` or a
    zero-duration trace): every arrival is cycle 0.  The element-wise
    float64 operations match scalar Python-float arithmetic bit for bit,
    so scalar, batch, and resumed runs see identical arrival clocks.
    """
    if offered_gbps is None:
        return None
    if offered_gbps <= 0:
        raise ConfigError("offered_gbps must be positive")
    total_bytes = trace.total_bytes
    target_duration = total_bytes * 8.0 / (offered_gbps * 1e9)
    span = trace.duration
    start = trace[0].timestamp if len(trace) else 0.0
    hz = cost_model.cpu_hz
    if span <= 0:
        return None
    scale = target_duration / span * hz
    return (trace.timestamps - start) * scale


class HostEngine:
    """One host's measurement loop with externally visible state.

    Parameters
    ----------
    sketch:
        The normal-path sketch (mutated in place as packets arrive).
    fastpath:
        :class:`FastPath` / :class:`MisraGriesTopK`, or ``None`` for the
        NoFastPath (blocking) arm.
    cost_model:
        Cycle accounting; also needed to finalize throughput.
    buffer_packets:
        FIFO capacity when no ``fifo`` is supplied.
    ideal:
        Bypass all capacity limits (accuracy yardstick).
    fifo:
        An existing :class:`BoundedFIFO` to (re)use — the switch passes
        its own buffer so ``switch.buffer.high_water`` keeps reflecting
        the last epoch.  The queue is cleared on construction; restored
        engines refill it through :meth:`BoundedFIFO.restore`.
    profiler:
        Optional :class:`~repro.telemetry.profiling.Profiler`.  When
        set, each ``run`` call attributes its wall time to the
        ``switch.sketch_update`` / ``fastpath.topk`` /
        ``switch.dispatch`` stages (accumulated locally, credited once
        per call — never a span per packet).  Profiling only observes;
        results are bit-identical either way.
    """

    def __init__(
        self,
        sketch,
        fastpath: FastPath | MisraGriesTopK | None = None,
        cost_model: CostModel | None = None,
        buffer_packets: int = 1024,
        ideal: bool = False,
        fifo: BoundedFIFO | None = None,
        profiler=None,
    ):
        if ideal and fastpath is not None:
            raise ConfigError("ideal mode does not use a fast path")
        self.sketch = sketch
        self.fastpath = fastpath
        self.cost_model = cost_model or CostModel.in_memory()
        self.fifo = fifo if fifo is not None else BoundedFIFO(buffer_packets)
        self.fifo.clear()
        self.ideal = ideal
        #: Packets consumed so far — the replay cursor the write-ahead
        #: journal records.
        self.offset = 0
        self.producer = 0.0  # next cycle the producer is free
        self.consumer = 0.0  # next cycle the consumer is free
        self.report = SwitchReport()
        self.profiler = profiler
        self._sketch_cycles = self.cost_model.sketch_cycles(sketch)
        self._dispatch = self.cost_model.dispatch_cycles

    # ------------------------------------------------------------------
    def run(
        self,
        packets,
        arrivals=None,
        stop_at: int | None = None,
        checkpoint_every: int = 0,
        on_checkpoint=None,
        heartbeat_every: int = 0,
        on_heartbeat=None,
    ) -> "HostEngine":
        """Process ``packets[self.offset : stop_at]`` and return self.

        ``packets`` must be random-access (``trace.packets``);
        ``arrivals`` is a matching list of arrival cycles or ``None``
        for back-to-back replay.  ``stop_at`` bounds the *offset*
        reached, so a supervisor can stop exactly where a scheduled
        fault fires; ``None`` runs to the end of the trace.

        ``on_checkpoint(engine)`` fires when the absolute offset is a
        multiple of ``checkpoint_every`` (alignment is to the trace, not
        to the restart point, so boundaries are stable across crashes);
        ``on_heartbeat(engine)`` likewise every ``heartbeat_every``
        packets — the supervisor's liveness signal.
        """
        n = len(packets)
        end = n if stop_at is None else min(stop_at, n)
        if end <= self.offset:
            return self

        sketch = self.sketch
        fastpath = self.fastpath
        fifo = self.fifo
        report = self.report
        sketch_cycles = self._sketch_cycles
        dispatch = self._dispatch
        fastpath_cycles = self.cost_model.fastpath_cycles
        ideal = self.ideal
        producer = self.producer
        consumer = self.consumer
        index = self.offset

        # Profiling hooks hoist to locals: the unprofiled loop pays one
        # `is None` branch per packet; the profiled loop accumulates
        # nanoseconds locally and credits stages once at the end.
        profiler = self.profiler
        clock = time.perf_counter_ns if profiler is not None else None
        loop_start = clock() if clock is not None else 0
        first_index = index
        sketch_ns = 0
        sketch_count = 0
        fp_ns = 0
        fp_count = 0

        while index < end:
            packet = packets[index]
            arrival = 0.0 if arrivals is None else arrivals[index]
            now = max(producer, arrival)
            # Let the consumer catch up to `now` in parallel.
            while not fifo.empty:
                start = max(consumer, fifo.peek_enqueue_cycle())
                if start + sketch_cycles > now:
                    break
                fifo.pop()
                consumer = start + sketch_cycles

            producer = now + dispatch
            report.total_packets += 1
            report.total_bytes += packet.size

            if ideal:
                if clock is None:
                    sketch.update(packet.flow, packet.size)
                else:
                    t0 = clock()
                    sketch.update(packet.flow, packet.size)
                    sketch_ns += clock() - t0
                    sketch_count += 1
                consumer = max(consumer, producer) + sketch_cycles
                report.normal_packets += 1
                report.normal_bytes += packet.size
                report.normal_flows.add(packet.flow)
            else:
                if fifo.full and fastpath is None:
                    # NoFastPath: block until the daemon frees a slot.
                    start = max(consumer, fifo.peek_enqueue_cycle())
                    fifo.pop()
                    consumer = start + sketch_cycles
                    producer = max(producer, consumer)

                if not fifo.full:
                    fifo.push(packet, producer)
                    # Counter state is order-insensitive within an
                    # epoch, so apply the sketch update now; the
                    # *cycles* are charged to the consumer when the
                    # packet is drained.
                    if clock is None:
                        sketch.update(packet.flow, packet.size)
                    else:
                        t0 = clock()
                        sketch.update(packet.flow, packet.size)
                        sketch_ns += clock() - t0
                        sketch_count += 1
                    report.normal_packets += 1
                    report.normal_bytes += packet.size
                    report.normal_flows.add(packet.flow)
                else:
                    if clock is None:
                        kind = fastpath.update(packet.flow, packet.size)
                    else:
                        t0 = clock()
                        kind = fastpath.update(packet.flow, packet.size)
                        fp_ns += clock() - t0
                        fp_count += 1
                    producer += fastpath_cycles(kind, fastpath.capacity)
                    report.fastpath_packets += 1
                    report.fastpath_bytes += packet.size
                    report.fastpath_flows.add(packet.flow)

            index += 1
            if (
                checkpoint_every
                and on_checkpoint is not None
                and index % checkpoint_every == 0
                and index < n
            ):
                self.producer = producer
                self.consumer = consumer
                self.offset = index
                on_checkpoint(self)
            if (
                heartbeat_every
                and on_heartbeat is not None
                and index % heartbeat_every == 0
            ):
                self.producer = producer
                self.consumer = consumer
                self.offset = index
                on_heartbeat(self)

        self.producer = producer
        self.consumer = consumer
        self.offset = index
        if profiler is not None and index > first_index:
            total_ns = clock() - loop_start
            if sketch_count:
                profiler.add(
                    "switch.sketch_update", sketch_ns, sketch_count
                )
            if fp_count:
                profiler.add("fastpath.topk", fp_ns, fp_count)
            profiler.add(
                "switch.dispatch",
                max(total_ns - sketch_ns - fp_ns, 0),
                index - first_index,
            )
        return self

    # ------------------------------------------------------------------
    def finish(self) -> SwitchReport:
        """Drain the FIFO and finalize the epoch's report."""
        fifo = self.fifo
        consumer = self.consumer
        sketch_cycles = self._sketch_cycles
        while not fifo.empty:
            _packet, enqueued = fifo.pop()
            consumer = max(consumer, enqueued) + sketch_cycles
        self.consumer = consumer

        report = self.report
        report.buffer_high_water = fifo.high_water
        report.producer_cycles = self.producer
        report.consumer_cycles = consumer
        report.makespan_cycles = max(self.producer, consumer)
        report.throughput_gbps = self.cost_model.gbps(
            report.total_bytes, report.makespan_cycles
        )
        return report
