"""SketchVisor reproduction: robust sketch-based network measurement.

A from-scratch Python implementation of *SketchVisor: Robust Network
Measurement for Software Packet Processing* (SIGCOMM 2017), including:

* the nine sketch-based solutions of Table 1 (:mod:`repro.sketches`);
* the fast path's top-k algorithm with Lemma 4.1 bounds
  (:mod:`repro.fastpath`);
* a simulated software-switch data plane with a calibrated CPU cost
  model (:mod:`repro.dataplane`);
* network-wide recovery via compressive sensing
  (:mod:`repro.controlplane`);
* the seven measurement tasks of §2.1 (:mod:`repro.tasks`);
* synthetic heavy-tailed traffic with exact ground truth
  (:mod:`repro.traffic`);
* baselines: Trumpet hash tables and packet sampling
  (:mod:`repro.baselines`).

Quickstart::

    from repro import (
        DataPlaneMode, HeavyHitterTask, PipelineConfig, RecoveryMode,
        SketchVisorPipeline, TraceConfig, generate_trace,
    )

    trace = generate_trace(TraceConfig(num_flows=5000, seed=1))
    task = HeavyHitterTask("deltoid", threshold=50_000)
    pipeline = SketchVisorPipeline(task)
    result = pipeline.run_epoch(trace)
    print(result.score.recall, result.score.precision)
"""

from repro.common.errors import (
    ConfigError,
    CorruptFrameError,
    DecodeError,
    MergeError,
    QuorumError,
    ReportTimeout,
    ReproError,
    StaleEpochError,
    TransportError,
)
from repro.common.flow import FlowKey, Packet
from repro.controlplane.recovery import DegradedEpoch, RecoveryMode
from repro.durability import Checkpointer, StateCodec, Supervisor
from repro.faults import FaultKind, FaultPlan, FaultSpec, moderate_plan
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import (
    EpochResult,
    PipelineConfig,
    SketchVisorPipeline,
)
from repro.framework.registry import TASK_REGISTRY, create_task
from repro.telemetry import MetricsRegistry, Telemetry, Tracer, trace_span
from repro.tasks import (
    CardinalityTask,
    DDoSTask,
    EntropyTask,
    FlowSizeDistributionTask,
    HeavyChangerTask,
    HeavyHitterTask,
    SuperspreaderTask,
)
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "CardinalityTask",
    "Checkpointer",
    "ConfigError",
    "CorruptFrameError",
    "DDoSTask",
    "DataPlaneMode",
    "DecodeError",
    "DegradedEpoch",
    "EntropyTask",
    "EpochResult",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FlowKey",
    "FlowSizeDistributionTask",
    "GroundTruth",
    "HeavyChangerTask",
    "HeavyHitterTask",
    "MergeError",
    "MetricsRegistry",
    "Packet",
    "PipelineConfig",
    "QuorumError",
    "ReportTimeout",
    "StaleEpochError",
    "Telemetry",
    "Tracer",
    "TransportError",
    "trace_span",
    "RecoveryMode",
    "ReproError",
    "SketchVisorPipeline",
    "StateCodec",
    "Supervisor",
    "moderate_plan",
    "SuperspreaderTask",
    "TASK_REGISTRY",
    "Trace",
    "TraceConfig",
    "create_task",
    "generate_trace",
    "__version__",
]
