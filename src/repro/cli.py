"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate
    Produce a synthetic heavy-tailed trace and save it (npz or csv).
run
    Run one measurement task over a trace (generated or loaded) through
    the full SketchVisor pipeline and print the score.  ``--trace``
    additionally prints the per-epoch stage-timing tree and dumps a
    ``chrome://tracing``-loadable JSON profile.
telemetry
    Run one fully instrumented epoch and export its metrics (Prometheus
    text / JSON snapshot) and trace (span tree / Chrome trace JSON).
dash
    Stream a multi-epoch run as a live terminal dashboard (sparkline
    trends, accuracy gauges, SLO breaches) and optionally write a
    self-contained HTML report.
inspect
    Print ground-truth statistics of a trace.
convert
    Convert between trace formats (npz / csv / pcap).
bench-summary
    Digest the experiment tables under benchmarks/results/.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import QuorumError
from repro.controlplane.recovery import RecoveryMode
from repro.faults import FaultPlan
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import PipelineConfig, SketchVisorPipeline
from repro.framework.registry import TASK_REGISTRY, create_task
from repro.reporting import span_tree
from repro.telemetry import (
    Telemetry,
    write_chrome_trace,
    write_json_snapshot,
    write_prometheus,
)
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.io import export_csv, import_csv, load_trace, save_trace
from repro.traffic.trace import Trace


def _load_any(path: str) -> Trace:
    if path.endswith(".csv"):
        return import_csv(path)
    if path.endswith(".pcap"):
        from repro.traffic.pcap import read_pcap

        trace, _stats = read_pcap(path)
        return trace
    return load_trace(path)


def _save_any(trace: Trace, path: str) -> None:
    if path.endswith(".csv"):
        export_csv(trace, path)
    elif path.endswith(".pcap"):
        from repro.traffic.pcap import write_pcap

        write_pcap(trace, path)
    else:
        save_trace(trace, path)


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_trace(
        TraceConfig(
            num_flows=args.flows,
            zipf_alpha=args.alpha,
            duration=args.duration,
            seed=args.seed,
            burstiness=args.burstiness,
        )
    )
    _save_any(trace, args.output)
    truth = GroundTruth.from_trace(trace)
    print(
        f"wrote {args.output}: {len(trace):,} packets, "
        f"{truth.cardinality:,} flows, "
        f"{truth.total_bytes / 1e6:.1f} MB"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = _load_any(args.trace)
    truth = GroundTruth.from_trace(trace)
    threshold = args.hh_fraction * truth.total_bytes
    print(f"packets        : {len(trace):,}")
    print(f"flows          : {truth.cardinality:,}")
    print(f"bytes          : {truth.total_bytes:,}")
    print(f"duration       : {trace.duration:.3f}s")
    print(f"entropy        : {truth.entropy:.3f} bits")
    print(
        f"heavy hitters  : {len(truth.heavy_hitters(threshold))} "
        f"(>{threshold / 1e3:.0f} KB)"
    )
    return 0


def _dump_telemetry(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Shared tail of ``run --trace`` and ``telemetry``: print + dump."""
    print()
    print(span_tree(telemetry.tracer.tree_rows()))
    if getattr(args, "trace_out", None):
        write_chrome_trace(telemetry.tracer, args.trace_out)
        print(f"\nwrote Chrome trace to {args.trace_out} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    if getattr(args, "prom", None):
        write_prometheus(telemetry.registry, args.prom)
        if args.prom != "-":
            print(f"wrote Prometheus metrics to {args.prom}")


def _dump_profile(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Shared profiling tail of ``run --profile``: table + artifacts."""
    profiler = telemetry.profiler
    if profiler is None:
        return
    from repro.telemetry.profiling import epoch_attribution, write_folded

    table = profiler.stage_table()
    print()
    print("stage profile (sorted by wall time):")
    for name, row in list(table.items())[:14]:
        print(
            f"  {name:28s} {row['wall_seconds']:9.4f}s wall  "
            f"{row['cpu_seconds']:8.4f}s cpu  x{row['count']}"
        )
    attribution = epoch_attribution(telemetry.tracer)
    if attribution:
        print(
            f"epoch attribution : {attribution:.1%} of epoch wall "
            "time attributed to child stages"
        )
    if getattr(args, "folded_out", None):
        write_folded(profiler.folded, args.folded_out)
        print(f"wrote folded stacks to {args.folded_out}")
    if getattr(args, "flame_out", None):
        from repro.dash import write_flamegraph

        write_flamegraph(
            args.flame_out,
            profiler.folded,
            title="SketchVisor CPU flamegraph",
            subtitle=(
                f"{sum(profiler.folded.values())} samples across "
                f"{len(profiler.folded)} distinct stacks"
            ),
            stage_table=table,
        )
        print(f"wrote flamegraph to {args.flame_out}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.trace_file:
        trace = _load_any(args.trace_file)
    else:
        trace = generate_trace(
            TraceConfig(num_flows=args.flows, seed=args.seed)
        )
    truth = GroundTruth.from_trace(trace)
    # Accuracy observability (SLOs, shadow sampling, flight-recorder
    # dumps) rides on telemetry, so any of those flags turns it on —
    # as does profiling (stage timers publish through the registry).
    wants_accuracy = bool(
        args.slo or args.shadow_samples or args.recorder_out
    )
    wants_profile = bool(
        args.profile or args.folded_out or args.flame_out
    )
    telemetry = (
        Telemetry()
        if (args.trace or wants_accuracy or wants_profile)
        else None
    )
    if wants_profile:
        from repro.telemetry import ProfileConfig

        telemetry.enable_profiling(
            ProfileConfig(sample_hz=args.profile_hz)
        )

    kwargs: dict = {}
    if args.task in ("heavy_hitter", "heavy_changer"):
        kwargs["threshold"] = args.threshold_fraction * truth.total_bytes
    elif args.task in ("ddos", "superspreader"):
        kwargs["threshold"] = args.spread_threshold
    task = create_task(args.task, args.solution, **kwargs)

    if args.cores > 1:
        # Multi-core data plane (§7.2): run per-core switches directly
        # and aggregate through the controller.
        from repro.controlplane.controller import Controller
        from repro.dataplane.host import MultiCoreHost
        from repro.telemetry import trace_span
        from repro.telemetry.publish import (
            fastpath_stats,
            publish_fastpath_epoch,
            publish_switch_epoch,
        )

        host = MultiCoreHost(
            0,
            lambda: task.create_sketch(seed=1),
            num_cores=args.cores,
            fastpath_bytes=args.fastpath_bytes,
        )
        with trace_span(telemetry, "epoch", task=task.name):
            with trace_span(telemetry, "dataplane", cores=args.cores):
                report = host.run_epoch(trace)
            network = Controller(
                RecoveryMode(args.recovery), telemetry=telemetry
            ).aggregate([report])
            with trace_span(telemetry, "task.answer"):
                answer = task.answer(network.sketch)
            with trace_span(telemetry, "task.score"):
                score = task.score(answer, truth)
        if telemetry is not None:
            publish_switch_epoch(
                telemetry.registry,
                report.switch,
                host=str(report.host_id),
                sketch=report.sketch.name,
            )
            if report.fastpath is not None:
                publish_fastpath_epoch(
                    telemetry.registry,
                    fastpath_stats(report.fastpath),
                    host=str(report.host_id),
                )
        print(f"task            : {args.task} / {args.solution}")
        print(f"cores           : {args.cores}")
        if score.recall is not None:
            print(f"recall          : {score.recall:.1%}")
            print(f"precision       : {score.precision:.1%}")
        if score.relative_error is not None:
            print(f"relative error  : {score.relative_error:.2%}")
        print(
            f"throughput      : "
            f"{report.switch.throughput_gbps:.1f} Gbps"
        )
        if telemetry is not None:
            _dump_telemetry(args, telemetry)
            _dump_profile(args, telemetry)
        return 0

    faults = FaultPlan.load(args.chaos) if args.chaos else None
    config_kwargs: dict = {}
    num_hosts = args.hosts
    if args.cluster:
        from repro.cluster import ClusterConfig

        num_hosts = args.cluster
        listen_host, _, listen_port = args.listen.partition(":")
        config_kwargs["cluster"] = ClusterConfig(
            aggregators=args.aggregators,
            hierarchical=not args.flat_cluster,
            listen_host=listen_host or "127.0.0.1",
            listen_port=int(listen_port or 0),
        )
    if args.checkpoint_dir:
        config_kwargs["checkpoint_dir"] = args.checkpoint_dir
    if args.checkpoint_every is not None:
        config_kwargs["checkpoint_every"] = args.checkpoint_every
    if args.slo:
        config_kwargs["slo"] = args.slo
    if args.shadow_samples:
        config_kwargs["shadow_samples"] = args.shadow_samples
    if args.recorder_out:
        config_kwargs["recorder_path"] = args.recorder_out
    pipeline = SketchVisorPipeline(
        task,
        dataplane=DataPlaneMode(args.dataplane),
        recovery=RecoveryMode(args.recovery),
        config=PipelineConfig(
            num_hosts=num_hosts,
            fastpath_bytes=args.fastpath_bytes,
            telemetry=telemetry,
            faults=faults,
            **config_kwargs,
        ),
    )
    if args.soak:
        return _run_soak(args, pipeline, trace, truth)
    try:
        if args.task == "heavy_changer":
            half = len(trace) // 2
            epoch_a = Trace(trace.packets[:half])
            epoch_b = Trace(trace.packets[half:])
            result = pipeline.run_epoch_pair(epoch_a, epoch_b)
        else:
            result = pipeline.run_epoch(trace, truth)
    except QuorumError as exc:
        print(f"QUORUM FAILED: {exc}", file=sys.stderr)
        return 1

    score = result.score
    print(f"task            : {args.task} / {args.solution}")
    print(f"dataplane       : {args.dataplane}   recovery: {args.recovery}")
    print(f"hosts           : {num_hosts}")
    if args.cluster:
        collector = pipeline._cluster
        stats = result.collection.stats
        print(
            f"cluster         : {num_hosts} host(s) -> "
            f"{collector.last_aggregators} aggregator(s) "
            f"({'flat' if args.flat_cluster else 'hierarchical'}), "
            f"{stats.connection_faults} connection fault(s), "
            f"{stats.backpressure_waits} backpressure wait(s), "
            f"{stats.quarantined_hosts} quarantined, "
            f"{getattr(stats, 'failovers', 0)} failover(s)"
        )
    if score.recall is not None:
        print(f"recall          : {score.recall:.1%}")
        print(f"precision       : {score.precision:.1%}")
    if score.relative_error is not None:
        print(f"relative error  : {score.relative_error:.2%}")
    if score.mrd is not None:
        print(f"MRD             : {score.mrd:.4f}")
    print(f"throughput      : {result.throughput_gbps:.1f} Gbps")
    print(
        f"fast-path bytes : {result.fastpath_byte_fraction:.0%}"
    )
    if result.collection is not None:
        stats = result.collection.stats
        print(
            f"chaos           : {stats.faults_seen} fault(s), "
            f"{stats.retries} retr{'y' if stats.retries == 1 else 'ies'}, "
            f"{len(result.collection.missing_hosts)} host(s) missing"
        )
        degraded = result.degraded
        if degraded is not None:
            print(
                f"degraded epoch  : hosts {degraded.missing_hosts} "
                f"missing, scale x{degraded.scale:.2f}, "
                f"est. error inflation "
                f"{degraded.error_inflation:.0%}"
            )
    if result.durability is not None:
        outcomes = result.durability
        recovered = sum(1 for o in outcomes if o.recovered)
        print(
            "durability      : "
            f"{sum(o.checkpoint_writes for o in outcomes)} "
            f"checkpoint(s), "
            f"{sum(o.restores for o in outcomes)} restore(s), "
            f"{sum(o.replayed_packets for o in outcomes)} packet(s) "
            f"replayed, {recovered} host(s) recovered, "
            f"{sum(1 for o in outcomes if o.gave_up)} gave up, "
            f"{sum(1 for o in outcomes if o.quarantined)} quarantined"
        )
    if telemetry is not None:
        bound = telemetry.registry.value(
            "sketchvisor_accuracy_sketch_error_bound_bytes",
            sketch=result.network.sketch.name,
        )
        if bound is not None:
            print(f"error bound     : {bound:,.0f} bytes/flow")
        are = telemetry.registry.value(
            "sketchvisor_accuracy_empirical_flow_are"
        )
        if are is not None:
            print(f"empirical ARE   : {are:.2%} (shadow sample)")
    for breach in result.slo_breaches:
        print(f"ACCURACY_SLO_BREACH: {breach.describe()}")
    if (
        telemetry is not None
        and args.recorder_out
        and telemetry.recorder.dumps
    ):
        print(
            f"flight recorder : dumped "
            f"{len(telemetry.recorder.events())} event(s) to "
            f"{telemetry.recorder.dumps[-1]}"
        )
    if telemetry is not None and args.trace:
        _dump_telemetry(args, telemetry)
    if telemetry is not None:
        _dump_profile(args, telemetry)
    return 0


def _run_soak(
    args: argparse.Namespace,
    pipeline: SketchVisorPipeline,
    trace: Trace,
    truth: GroundTruth,
) -> int:
    """Multi-epoch soak loop (``run --soak EPOCHS``).

    Drives the same pipeline for EPOCHS consecutive epochs — a fresh
    trace seed per epoch unless one was loaded from disk — so seeded
    fault plans (which key on the epoch counter) exercise a different
    fault mix every epoch.  Prints one summary line per epoch and a
    final aggregate; exits nonzero if any epoch fails quorum.
    """
    quorum_failures = 0
    totals = {
        "faults": 0,
        "failovers": 0,
        "redeliveries": 0,
        "redelivery_dups": 0,
        "missing": 0,
        "unrecovered": 0,
    }
    for epoch in range(args.soak):
        if args.trace_file:
            epoch_trace, epoch_truth = trace, truth
        else:
            epoch_trace = generate_trace(
                TraceConfig(
                    num_flows=args.flows, seed=args.seed + epoch
                )
            )
            epoch_truth = GroundTruth.from_trace(epoch_trace)
        try:
            if args.task == "heavy_changer":
                half = len(epoch_trace) // 2
                result = pipeline.run_epoch_pair(
                    Trace(epoch_trace.packets[:half]),
                    Trace(epoch_trace.packets[half:]),
                )
            else:
                result = pipeline.run_epoch(epoch_trace, epoch_truth)
        except QuorumError as exc:
            quorum_failures += 1
            print(f"epoch {epoch:3d}: QUORUM FAILED -- {exc}")
            continue
        line = f"epoch {epoch:3d}:"
        collection = result.collection
        if collection is not None:
            stats = collection.stats
            failovers = list(getattr(collection, "failovers", ()))
            unrecovered = sum(
                len(record.unrecovered_hosts) for record in failovers
            )
            totals["faults"] += stats.faults_seen
            totals["failovers"] += len(failovers)
            totals["redeliveries"] += getattr(
                stats, "redeliveries", 0
            )
            totals["redelivery_dups"] += getattr(
                stats, "redelivery_dups", 0
            )
            totals["missing"] += len(collection.missing_hosts)
            totals["unrecovered"] += unrecovered
            line += (
                f" {stats.faults_seen} fault(s),"
                f" {len(failovers)} failover(s),"
                f" {getattr(stats, 'redeliveries', 0)} redelivered,"
                f" {len(collection.missing_hosts)} missing"
            )
        else:
            line += " ok"
        score = result.score
        if score.recall is not None:
            line += f", recall {score.recall:.1%}"
        print(line)
    print(
        f"soak            : {args.soak} epoch(s), "
        f"{totals['faults']} fault(s), "
        f"{totals['failovers']} failover(s), "
        f"{totals['redeliveries']} redelivered "
        f"({totals['redelivery_dups']} dup), "
        f"{totals['missing']} host-epoch(s) missing, "
        f"{totals['unrecovered']} unrecovered, "
        f"{quorum_failures} quorum failure(s)"
    )
    return 1 if quorum_failures else 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Render the committed bench trajectories (``repro perf``)."""
    from repro.perf import (
        SERIES_BY_FILE,
        discover_trajectories,
        perf_text_summary,
        series_points,
        write_perf_dashboard,
    )

    trajectories = discover_trajectories(args.root)
    print(perf_text_summary(trajectories))
    if args.html:
        write_perf_dashboard(args.html, trajectories)
        print(f"wrote perf dashboard to {args.html}")
    if args.strict:
        problems = [
            problem
            for trajectory in trajectories
            for problem in trajectory.problems
        ]
        violations = [
            point
            for trajectory in trajectories
            for spec in SERIES_BY_FILE.get(trajectory.name, ())
            for point in series_points(trajectory.runs, spec)
            if point.violation
        ]
        if problems or violations:
            print(
                f"STRICT: {len(problems)} schema problem(s), "
                f"{len(violations)} gate violation(s)"
            )
            return 1
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Run one fully instrumented epoch and export the telemetry."""
    if args.trace_file:
        trace = _load_any(args.trace_file)
    else:
        trace = generate_trace(
            TraceConfig(num_flows=args.flows, seed=args.seed)
        )
    truth = GroundTruth.from_trace(trace)
    kwargs: dict = {}
    if args.task in ("heavy_hitter", "heavy_changer"):
        kwargs["threshold"] = args.threshold_fraction * truth.total_bytes
    elif args.task in ("ddos", "superspreader"):
        kwargs["threshold"] = 100
    task = create_task(args.task, args.solution, **kwargs)

    telemetry = Telemetry()
    config_kwargs: dict = {}
    if args.checkpoint_dir:
        config_kwargs["checkpoint_dir"] = args.checkpoint_dir
    if args.chaos:
        config_kwargs["faults"] = FaultPlan.load(args.chaos)
    pipeline = SketchVisorPipeline(
        task,
        dataplane=DataPlaneMode(args.dataplane),
        recovery=RecoveryMode(args.recovery),
        config=PipelineConfig(
            num_hosts=args.hosts,
            batch=args.batch,
            telemetry=telemetry,
            **config_kwargs,
        ),
    )
    print(pipeline.describe(), file=sys.stderr)
    if args.task == "heavy_changer":
        half = len(trace) // 2
        pipeline.run_epoch_pair(
            Trace(trace.packets[:half]), Trace(trace.packets[half:])
        )
    else:
        pipeline.run_epoch(trace, truth)

    if args.tree:
        print(span_tree(telemetry.tracer.tree_rows()))
        print()
    # Exports run only now, after the epoch: every family the run
    # registered along the way (durability counters included — they
    # only exist once the supervisor has run) is in the registry by
    # the time any snapshot is rendered.
    if args.format is not None:
        # --format/--output mode: one export, one destination.
        destination = args.output or "-"
        if args.format == "prom":
            write_prometheus(telemetry.registry, destination)
        else:
            write_json_snapshot(
                telemetry.registry, destination, telemetry.tracer
            )
        if destination != "-":
            print(f"wrote {args.format} metrics to {destination}")
    else:
        if args.prom is not None:
            write_prometheus(telemetry.registry, args.prom)
            if args.prom != "-":
                print(f"wrote Prometheus metrics to {args.prom}")
        if args.json is not None:
            write_json_snapshot(
                telemetry.registry, args.json, telemetry.tracer
            )
            if args.json != "-":
                print(f"wrote JSON snapshot to {args.json}")
    if args.chrome_trace is not None:
        write_chrome_trace(telemetry.tracer, args.chrome_trace)
        print(f"wrote Chrome trace to {args.chrome_trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    """Stream a multi-epoch run as a live dashboard."""
    from repro.dash import epoch_row, paint_live_frame, write_html_report
    from repro.framework.monitor import AlertKind, ContinuousMonitor
    from repro.traffic.generator import generate_epochs

    truth_probe = generate_trace(
        TraceConfig(num_flows=args.flows, seed=args.seed)
    )
    total_bytes = GroundTruth.from_trace(truth_probe).total_bytes
    kwargs: dict = {}
    if args.task in ("heavy_hitter", "heavy_changer"):
        kwargs["threshold"] = args.threshold_fraction * total_bytes
    elif args.task in ("ddos", "superspreader"):
        kwargs["threshold"] = args.spread_threshold
    task = create_task(args.task, args.solution, **kwargs)

    telemetry = Telemetry()
    config_kwargs: dict = {}
    if args.chaos:
        config_kwargs["faults"] = FaultPlan.load(args.chaos)
    if args.slo:
        config_kwargs["slo"] = args.slo
    if args.recorder_out:
        config_kwargs["recorder_path"] = args.recorder_out
    monitor = ContinuousMonitor(
        [task],
        dataplane=DataPlaneMode(args.dataplane),
        recovery=RecoveryMode(args.recovery),
        config=PipelineConfig(
            num_hosts=args.hosts,
            telemetry=telemetry,
            shadow_samples=args.shadow_samples,
            **config_kwargs,
        ),
    )
    rows: list[dict] = []
    repaint = None if not args.plain else False
    for epoch_index, trace in enumerate(
        generate_epochs(
            TraceConfig(num_flows=args.flows, seed=args.seed),
            num_epochs=args.epochs,
        )
    ):
        summary = monitor.process_epoch(trace)
        result = summary.results.get(task.name)
        if result is None:
            # Heavy changer's first epoch has no pair yet.
            continue
        rows.append(epoch_row(result))
        paint_live_frame(rows, telemetry.registry, repaint=repaint)
    breaches = monitor.alerts(AlertKind.ACCURACY_SLO_BREACH)
    for alert in breaches:
        print(
            f"ACCURACY_SLO_BREACH: epoch {alert.epoch} rule "
            f"{alert.subject} value {alert.magnitude:g}"
        )
    if args.html:
        write_html_report(
            args.html,
            rows,
            telemetry.registry,
            title=f"SketchVisor dash — {args.task}/{args.solution}",
            subtitle=(
                f"{len(rows)} epoch(s), {args.hosts} host(s), "
                f"{len(breaches)} SLO breach(es)"
            ),
        )
        print(f"wrote HTML report to {args.html}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Long-running service mode: stream windows, serve HTTP."""
    import math

    from repro.serve import (
        MeasurementService,
        QUERY_ENDPOINTS,
        ReplaySource,
        ServeConfig,
        SyntheticSource,
    )

    if args.trace_file:
        trace = _load_any(args.trace_file)
        probe = trace
        source = ReplaySource(
            trace,
            chunk_packets=args.chunk_packets,
            rate_pps=args.rate,
            loop=args.loop,
        )
    else:
        config = TraceConfig(num_flows=args.flows, seed=args.seed)
        probe = generate_trace(config)
        source = SyntheticSource(
            config,
            chunk_packets=args.chunk_packets,
            rate_pps=args.rate,
        )

    window_packets = args.window_packets
    if window_packets is None and args.window_seconds is None:
        if args.trace_file and args.windows:
            # `--windows N` over a replayed trace: split it into N
            # equal windows, so the run is bit-identical to running
            # the same N slices as batch epochs through `repro run`.
            window_packets = max(
                1, math.ceil(len(trace) / args.windows)
            )
        else:
            # One window per trace pass / generated segment.
            window_packets = len(probe)

    truth_bytes = GroundTruth.from_trace(probe).total_bytes
    if window_packets is not None:
        # Scale the heavy-hitter threshold to the expected bytes per
        # *window*, not per probe trace.
        truth_bytes *= min(1.0, window_packets / len(probe))
    kwargs: dict = {}
    if args.task in ("heavy_hitter", "heavy_changer"):
        kwargs["threshold"] = args.threshold_fraction * truth_bytes
    elif args.task in ("ddos", "superspreader"):
        kwargs["threshold"] = args.spread_threshold
    tasks = [create_task(args.task, args.solution, **kwargs)]
    if not args.no_aux:
        # Fill the remaining query endpoints so /query/cardinality
        # and /query/fsd answer alongside the primary task.
        aux = {
            "cardinality": args.cardinality_solution,
            "flow_size_distribution": args.fsd_solution,
        }
        for name, solution in aux.items():
            if name != args.task:
                tasks.append(create_task(name, solution))

    config_kwargs: dict = {}
    if args.chaos:
        config_kwargs["faults"] = FaultPlan.load(args.chaos)
    if args.slo:
        config_kwargs["slo"] = args.slo
    if args.recorder_out:
        config_kwargs["recorder_path"] = args.recorder_out
    service = MeasurementService(
        tasks,
        source,
        ServeConfig(
            host=args.host,
            port=args.port,
            window_packets=window_packets,
            window_seconds=args.window_seconds,
            max_windows=args.windows or None,
            ring_windows=args.ring_windows,
            stale_after=args.stale_after,
            recorder_max_dumps=args.recorder_max_dumps,
        ),
        dataplane=DataPlaneMode(args.dataplane),
        recovery=RecoveryMode(args.recovery),
        pipeline_config=PipelineConfig(
            num_hosts=args.hosts,
            fastpath_bytes=args.fastpath_bytes,
            telemetry=Telemetry(),
            shadow_samples=args.shadow_samples,
            **config_kwargs,
        ),
    )
    port = service.start_http()
    # Parsed by tests/CI to find the ephemeral port -- keep the shape.
    print(
        f"serving on http://{args.host}:{port} "
        f"({args.task}/{args.solution}, "
        + (
            f"{window_packets}-packet windows"
            if window_packets is not None
            else f"{args.window_seconds:g}s windows"
        )
        + (f", {args.windows} window(s) max" if args.windows else "")
        + ")",
        flush=True,
    )
    print(
        "endpoints: /metrics /dash /healthz /readyz "
        + " ".join(f"/query/{name}" for name in QUERY_ENDPOINTS),
        flush=True,
    )
    code = service.run()
    print(
        f"served {service.windows_processed} window(s), "
        f"{service.quorum_failures} quorum failure(s); "
        f"exit {code}",
        flush=True,
    )
    return code


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = _load_any(args.source)
    _save_any(trace, args.destination)
    print(
        f"converted {args.source} -> {args.destination} "
        f"({len(trace):,} packets)"
    )
    return 0


def _cmd_bench_summary(args: argparse.Namespace) -> int:
    import pathlib

    results = pathlib.Path(args.results_dir)
    if not results.is_dir():
        print(f"no results directory at {results}", file=sys.stderr)
        return 1
    files = sorted(results.glob("*.txt"))
    if not files:
        print("no experiment results found; run "
              "`pytest benchmarks/ --benchmark-only` first")
        return 1
    for path in files:
        lines = path.read_text().splitlines()
        title = lines[0] if lines else path.stem
        print(f"* {path.stem}: {title}")
        if args.full:
            for line in lines[2:]:
                print(f"    {line}")
    print(f"\n{len(files)} experiment tables in {results}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SketchVisor reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic trace"
    )
    generate.add_argument("output", help=".npz or .csv output path")
    generate.add_argument("--flows", type=int, default=5000)
    generate.add_argument("--alpha", type=float, default=1.2)
    generate.add_argument("--duration", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument("--burstiness", type=float, default=0.0)
    generate.set_defaults(func=_cmd_generate)

    convert = commands.add_parser(
        "convert", help="convert a trace between npz / csv / pcap"
    )
    convert.add_argument("source")
    convert.add_argument("destination")
    convert.set_defaults(func=_cmd_convert)

    bench_summary = commands.add_parser(
        "bench-summary",
        help="digest the experiment tables in benchmarks/results/",
    )
    bench_summary.add_argument(
        "--results-dir", default="benchmarks/results"
    )
    bench_summary.add_argument(
        "--full", action="store_true", help="print full tables"
    )
    bench_summary.set_defaults(func=_cmd_bench_summary)

    inspect = commands.add_parser(
        "inspect", help="print ground-truth statistics of a trace"
    )
    inspect.add_argument("trace", help=".npz or .csv trace path")
    inspect.add_argument("--hh-fraction", type=float, default=0.005)
    inspect.set_defaults(func=_cmd_inspect)

    run = commands.add_parser(
        "run", help="run a measurement task over a trace"
    )
    run.add_argument(
        "--task",
        choices=sorted(TASK_REGISTRY),
        default="heavy_hitter",
    )
    run.add_argument("--solution", default="deltoid")
    run.add_argument(
        "--trace-file", help="trace file; omit to generate"
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry: print the stage-timing tree and dump "
        "a chrome://tracing JSON profile (see --trace-out)",
    )
    run.add_argument(
        "--trace-out",
        default="epoch_trace.json",
        help="Chrome-trace output path for --trace",
    )
    run.add_argument(
        "--prom",
        help="with --trace, also dump Prometheus metrics "
        "to this path ('-' for stdout)",
    )
    run.add_argument("--flows", type=int, default=5000)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--hosts", type=int, default=1)
    run.add_argument(
        "--cores",
        type=int,
        default=1,
        help="per-host worker cores (§7.2 parallel mode)",
    )
    run.add_argument("--fastpath-bytes", type=int, default=8192)
    run.add_argument(
        "--dataplane",
        choices=[mode.value for mode in DataPlaneMode],
        default=DataPlaneMode.SKETCHVISOR.value,
    )
    run.add_argument(
        "--recovery",
        choices=[mode.value for mode in RecoveryMode],
        default=RecoveryMode.SKETCHVISOR.value,
    )
    run.add_argument("--threshold-fraction", type=float, default=0.005)
    run.add_argument("--spread-threshold", type=int, default=100)
    run.add_argument(
        "--chaos",
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file into the "
        "host->controller report path (see docs/robustness.md); "
        "ignored by --cores mode",
    )
    run.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help="simulate N hosts and ship their epoch reports over real "
        "TCP sockets through the hierarchical aggregator tier "
        "(overrides --hosts; composes with --chaos, whose plan then "
        "also drives connection-level faults at the socket layer; "
        "see docs/robustness.md); ignored by --cores mode",
    )
    run.add_argument(
        "--aggregators",
        type=int,
        default=0,
        metavar="A",
        help="aggregator-tier size for --cluster (default 0 = "
        "ceil(sqrt(N)))",
    )
    run.add_argument(
        "--flat-cluster",
        action="store_true",
        help="with --cluster, keep every host report resident until "
        "the root merge instead of hierarchical pairwise merging "
        "(the O(N)-memory baseline the bench compares against)",
    )
    run.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST[:PORT]",
        help="bind address for the aggregator listeners (default "
        "127.0.0.1:0 = ephemeral ports)",
    )
    run.add_argument(
        "--soak",
        type=int,
        default=0,
        metavar="EPOCHS",
        help="run EPOCHS back-to-back epochs through one pipeline "
        "(fresh trace seed per epoch unless --trace-file is given), "
        "printing a per-epoch summary line and a final aggregate; "
        "exits nonzero if any epoch fails quorum; designed for "
        "sustained-chaos runs with --cluster --chaos "
        "(see docs/robustness.md); ignored by --cores mode",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="enable durable host state: snapshot every host engine "
        "into DIR and recover crashed/hung hosts by restore + WAL "
        "replay (see docs/robustness.md); ignored by --cores mode",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="K",
        help="snapshot interval in packets (default 16384); only "
        "meaningful with --checkpoint-dir",
    )
    run.add_argument(
        "--slo",
        metavar="POLICY.json",
        help="evaluate an accuracy SLO policy each epoch and print "
        "ACCURACY_SLO_BREACH lines (see docs/observability.md); "
        "implies telemetry",
    )
    run.add_argument(
        "--shadow-samples",
        type=int,
        default=0,
        metavar="N",
        help="sample N flows per epoch as shadow ground truth for "
        "empirical error gauges; implies telemetry",
    )
    run.add_argument(
        "--recorder-out",
        metavar="FILE.json",
        help="dump the flight recorder to FILE on crash, quarantine, "
        "or SLO breach; implies telemetry",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="enable cycle-level profiling: stage wall/CPU timers, "
        "sampling profiler, memory high-water tracking; prints the "
        "stage table after the run (see docs/observability.md)",
    )
    run.add_argument(
        "--profile-hz",
        type=float,
        default=97.0,
        metavar="HZ",
        help="sampling profiler frequency (default 97 Hz; 0 disables "
        "stack sampling but keeps the stage timers)",
    )
    run.add_argument(
        "--folded-out",
        metavar="FILE.folded",
        help="write collapsed stacks in Brendan-Gregg folded format; "
        "implies --profile",
    )
    run.add_argument(
        "--flame-out",
        metavar="FILE.{svg,html}",
        help="write a dependency-free flamegraph (.svg for bare SVG, "
        "anything else for a standalone HTML page); implies --profile",
    )
    run.set_defaults(func=_cmd_run)

    perf = commands.add_parser(
        "perf",
        help="render the committed bench trajectories "
        "(BENCH_*.json) as a regression dashboard",
    )
    perf.add_argument(
        "--root",
        default=".",
        help="directory holding BENCH_*.json files (default: cwd)",
    )
    perf.add_argument(
        "--html",
        metavar="FILE.html",
        help="write the self-contained HTML perf dashboard",
    )
    perf.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on schema problems or gate violations",
    )
    perf.set_defaults(func=_cmd_perf)

    telemetry = commands.add_parser(
        "telemetry",
        help="run one instrumented epoch and export metrics + traces",
    )
    telemetry.add_argument(
        "--task",
        choices=sorted(TASK_REGISTRY),
        default="heavy_hitter",
    )
    telemetry.add_argument("--solution", default="univmon")
    telemetry.add_argument(
        "--trace-file", help="trace file; omit to generate"
    )
    telemetry.add_argument("--flows", type=int, default=5000)
    telemetry.add_argument("--seed", type=int, default=1)
    telemetry.add_argument("--hosts", type=int, default=2)
    telemetry.add_argument(
        "--batch", action="store_true", help="use the batched engine"
    )
    telemetry.add_argument(
        "--dataplane",
        choices=[mode.value for mode in DataPlaneMode],
        default=DataPlaneMode.SKETCHVISOR.value,
    )
    telemetry.add_argument(
        "--recovery",
        choices=[mode.value for mode in RecoveryMode],
        default=RecoveryMode.SKETCHVISOR.value,
    )
    telemetry.add_argument("--threshold-fraction", type=float, default=0.005)
    telemetry.add_argument(
        "--prom",
        nargs="?",
        const="-",
        default="-",
        help="Prometheus text output path (default: stdout)",
    )
    telemetry.add_argument(
        "--json",
        nargs="?",
        const="-",
        help="JSON snapshot output path ('-' for stdout)",
    )
    telemetry.add_argument(
        "--chrome-trace",
        help="Chrome-trace JSON output path (chrome://tracing)",
    )
    telemetry.add_argument(
        "--no-tree",
        dest="tree",
        action="store_false",
        help="skip printing the stage-timing tree",
    )
    telemetry.add_argument(
        "--format",
        choices=["prom", "json"],
        help="export format; with --output this supersedes "
        "--prom/--json",
    )
    telemetry.add_argument(
        "--output",
        metavar="FILE",
        help="export destination for --format ('-' for stdout)",
    )
    telemetry.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="run the epoch under the durability supervisor so "
        "checkpoint/restore counters appear in the export",
    )
    telemetry.add_argument(
        "--chaos",
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON during the epoch",
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    dash = commands.add_parser(
        "dash",
        help="stream a multi-epoch run as a live dashboard "
        "(+ optional HTML report)",
    )
    dash.add_argument(
        "--task",
        choices=sorted(TASK_REGISTRY),
        default="heavy_hitter",
    )
    dash.add_argument("--solution", default="deltoid")
    dash.add_argument("--epochs", type=int, default=5)
    dash.add_argument("--flows", type=int, default=2000)
    dash.add_argument("--seed", type=int, default=1)
    dash.add_argument("--hosts", type=int, default=2)
    dash.add_argument(
        "--dataplane",
        choices=[mode.value for mode in DataPlaneMode],
        default=DataPlaneMode.SKETCHVISOR.value,
    )
    dash.add_argument(
        "--recovery",
        choices=[mode.value for mode in RecoveryMode],
        default=RecoveryMode.SKETCHVISOR.value,
    )
    dash.add_argument("--threshold-fraction", type=float, default=0.005)
    dash.add_argument("--spread-threshold", type=int, default=100)
    dash.add_argument(
        "--shadow-samples",
        type=int,
        default=128,
        metavar="N",
        help="shadow ground-truth sample size per epoch (0 disables)",
    )
    dash.add_argument(
        "--slo",
        metavar="POLICY.json",
        help="accuracy SLO policy evaluated each epoch",
    )
    dash.add_argument(
        "--chaos",
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file",
    )
    dash.add_argument(
        "--recorder-out",
        metavar="FILE.json",
        help="flight-recorder dump path for breach/crash triggers",
    )
    dash.add_argument(
        "--html",
        metavar="FILE.html",
        help="write a self-contained HTML report after the run",
    )
    dash.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of repainting (for logs/pipes)",
    )
    dash.set_defaults(func=_cmd_dash)

    serve = commands.add_parser(
        "serve",
        help="run the streaming measurement daemon with the live "
        "HTTP observability plane (see docs/observability.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="HTTP bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="HTTP port (default 0 = ephemeral; the bound port is "
        "printed on startup)",
    )
    serve.add_argument(
        "--task",
        choices=sorted(TASK_REGISTRY),
        default="heavy_hitter",
    )
    serve.add_argument("--solution", default="deltoid")
    serve.add_argument(
        "--trace-file",
        help="replay this trace instead of generating traffic",
    )
    serve.add_argument(
        "--loop",
        action="store_true",
        help="with --trace-file, restart the trace when it ends "
        "(endless soak from one capture)",
    )
    serve.add_argument("--flows", type=int, default=2000)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--hosts", type=int, default=2)
    serve.add_argument("--fastpath-bytes", type=int, default=8192)
    serve.add_argument(
        "--window-packets",
        type=int,
        metavar="N",
        help="close a window every N packets (deterministic; "
        "default: one window per trace pass / generated segment, or "
        "trace length / --windows when replaying a bounded run)",
    )
    serve.add_argument(
        "--window-seconds",
        type=float,
        metavar="S",
        help="close a window after S wall-clock seconds",
    )
    serve.add_argument(
        "--windows",
        type=int,
        default=0,
        metavar="K",
        help="stop after K windows (default 0 = run until SIGTERM)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        metavar="PPS",
        help="pace the source to this packet rate (default: as fast "
        "as the pipeline drains)",
    )
    serve.add_argument(
        "--chunk-packets",
        type=int,
        default=512,
        metavar="N",
        help="packets per source chunk (pacing/shutdown granularity)",
    )
    serve.add_argument(
        "--ring-windows",
        type=int,
        default=8,
        metavar="K",
        help="recent windows retained for the query endpoints",
    )
    serve.add_argument(
        "--stale-after",
        type=float,
        metavar="S",
        help="seconds without a window advance before /healthz flips "
        "unhealthy (default: derived from --window-seconds)",
    )
    serve.add_argument(
        "--dataplane",
        choices=[mode.value for mode in DataPlaneMode],
        default=DataPlaneMode.SKETCHVISOR.value,
    )
    serve.add_argument(
        "--recovery",
        choices=[mode.value for mode in RecoveryMode],
        default=RecoveryMode.SKETCHVISOR.value,
    )
    serve.add_argument("--threshold-fraction", type=float, default=0.005)
    serve.add_argument("--spread-threshold", type=int, default=100)
    serve.add_argument(
        "--no-aux",
        action="store_true",
        help="serve only the primary task (skip the cardinality and "
        "flow-size-distribution query endpoints)",
    )
    serve.add_argument(
        "--cardinality-solution",
        default="lc",
        help="solution backing /query/cardinality",
    )
    serve.add_argument(
        "--fsd-solution",
        default="mrac",
        help="solution backing /query/fsd",
    )
    serve.add_argument(
        "--shadow-samples",
        type=int,
        default=0,
        metavar="N",
        help="shadow ground-truth sample size per window (0 disables)",
    )
    serve.add_argument(
        "--slo",
        metavar="POLICY.json",
        help="accuracy SLO policy evaluated online every window",
    )
    serve.add_argument(
        "--chaos",
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON into every window",
    )
    serve.add_argument(
        "--recorder-out",
        metavar="FILE.json",
        help="flight-recorder dump base path; dumps rotate with "
        "timestamp/window suffixes (see --recorder-max-dumps) and a "
        "final flush happens on shutdown",
    )
    serve.add_argument(
        "--recorder-max-dumps",
        type=int,
        default=8,
        metavar="K",
        help="rotated recorder dumps kept on disk (default 8)",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
