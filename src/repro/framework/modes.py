"""Data-plane operating modes (the §7.2/§7.3 evaluation arms)."""

from __future__ import annotations

from enum import Enum


class DataPlaneMode(Enum):
    """How each host's measurement module runs.

    * ``NO_FASTPATH`` — normal path only; the producer blocks on a full
      FIFO, collapsing throughput to the sketch's rate (§7.2).
    * ``MG_FASTPATH`` — overflow goes to the original Misra-Gries
      top-k algorithm (§7.2 "MGFastPath").
    * ``SKETCHVISOR`` — overflow goes to Algorithm 1's fast path.
    * ``IDEAL`` — all packets through the normal path with no capacity
      limit; the accuracy yardstick of §7.3.
    """

    NO_FASTPATH = "no_fastpath"
    MG_FASTPATH = "mg_fastpath"
    SKETCHVISOR = "sketchvisor"
    IDEAL = "ideal"
