"""The end-to-end SketchVisor pipeline.

One call wires together everything the paper builds: per-host software
switches running the chosen sketch in the normal path (with or without
a fast path), the centralized controller merging their per-epoch
reports, compressive-sensing recovery, and task-level answers scored
against exact ground truth.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.cluster import (
    ClusterCollector,
    ClusterConfig,
    cluster_from_env,
)
from repro.common.errors import ConfigError
from repro.controlplane.controller import Controller, NetworkResult
from repro.controlplane.lens import LensConfig
from repro.controlplane.recovery import RecoveryMode
from repro.controlplane.transport import (
    CollectionResult,
    ReportCollector,
    encode_report,
)
from repro.dataplane.cost_model import CostModel
from repro.dataplane.host import Host, LocalReport
from repro.durability import (
    DEFAULT_CHECKPOINT_EVERY,
    HostOutcome,
    Supervisor,
    checkpoint_from_env,
)
from repro.faults import FaultInjector, FaultPlan, faults_from_env
from repro.framework.modes import DataPlaneMode
from repro.tasks.base import MeasurementTask, TaskScore
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.telemetry import (
    ProfileConfig,
    Telemetry,
    profile_from_env,
    telemetry_from_env,
    trace_span,
)
from repro.telemetry.accuracy import (
    AccuracyObserver,
    SLOBreach,
    SLOPolicy,
)
from repro.telemetry.publish import (
    fastpath_stats,
    publish_cluster_epoch,
    publish_collection_epoch,
    publish_durability_epoch,
    publish_fastpath_epoch,
    publish_switch_epoch,
    publish_worker_crashes,
)
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace

logger = logging.getLogger(__name__)


@dataclass
class PipelineConfig:
    """Deployment parameters for one pipeline run."""

    num_hosts: int = 1
    fastpath_bytes: int = 8192  # paper default (§7.1)
    buffer_packets: int = 1024
    offered_gbps: float | None = None  # None = send as fast as possible
    seed: int = 1
    cost_model: CostModel = field(default_factory=CostModel.in_memory)
    lens: LensConfig | None = None
    #: Use the two-phase batched switch engine on every host
    #: (bit-identical reports, vectorized sketch updates).
    batch: bool = False
    #: Per-host epochs are independent; ``workers > 1`` runs them in a
    #: process pool.  ``workers=1`` preserves today's serial behavior.
    workers: int = 1
    #: Optional :class:`~repro.telemetry.Telemetry` receiving metrics
    #: and spans from every stage.  ``None`` (the default) disables all
    #: instrumentation; setting ``REPRO_TELEMETRY=1`` in the
    #: environment injects a fresh instance here instead.
    telemetry: Telemetry | None = None
    #: Optional :class:`~repro.faults.FaultPlan`.  ``None`` (the
    #: default) keeps the whole chaos subsystem inert — reports flow
    #: straight from data plane to controller, bit-identical to a
    #: build without it.  A plan routes every epoch's reports through
    #: the wire codec and :class:`ReportCollector` with the plan's
    #: faults injected; setting ``REPRO_CHAOS=1`` in the environment
    #: injects the moderate default plan here instead.
    faults: FaultPlan | None = None
    #: Minimum fraction of hosts that must report before an epoch is
    #: merged (only consulted on the fault-injected collection path).
    quorum: float = 0.5
    #: Per-attempt report delivery deadline (simulated seconds).
    report_timeout: float = 0.25
    #: Delivery retries per host after the first failed attempt.
    report_retries: int = 3
    #: Root directory for durable host state.  ``None`` (the default)
    #: disables checkpointing entirely — no supervisor, no snapshots,
    #: bit-identical to a build without ``repro.durability``; setting
    #: ``REPRO_CHECKPOINT_DIR=<dir>`` in the environment injects a
    #: directory here instead (how CI's crash-recovery leg runs).
    checkpoint_dir: str | None = None
    #: Snapshot interval in packets (absolute-offset aligned).
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    #: Optional extra snapshot trigger in simulated producer cycles.
    checkpoint_cycle_budget: float | None = None
    #: Restarts allowed per host per epoch before the supervisor gives
    #: up and hands the host to the degraded merge.
    max_restarts: int = 2
    #: Consecutive gave-up epochs that trip a host's circuit breaker.
    quarantine_threshold: int = 3
    #: Epochs a quarantined host sits out before being retried.
    quarantine_epochs: int = 2
    #: Supervisor heartbeat interval in packets.
    heartbeat_every: int = 2048
    #: Seconds without a heartbeat before the watchdog flags a host.
    watchdog_timeout: float = 1.0
    #: Accuracy SLO policy: an :class:`SLOPolicy`, a path to a policy
    #: JSON, or ``None`` (no SLO evaluation).  Needs telemetry;
    #: ``REPRO_SLO=<path>`` in the environment injects a path here.
    slo: SLOPolicy | str | None = None
    #: Shadow ground-truth sample size per epoch (0 disables the
    #: empirical error gauges); ``REPRO_SHADOW_SAMPLES=<n>`` injects.
    shadow_samples: int = 0
    #: Where the flight recorder dumps on crash, quarantine, or SLO
    #: breach; ``None`` records into the ring without auto-dumping.
    #: ``REPRO_RECORDER_PATH=<file>`` injects a path here.
    recorder_path: str | None = None
    #: Real-socket control plane: a
    #: :class:`~repro.cluster.ClusterConfig` routes every epoch's
    #: reports over actual TCP connections through the hierarchical
    #: aggregator tier instead of the in-process handoff.  ``None``
    #: (the default) keeps the historical paths bit for bit; setting
    #: ``REPRO_CLUSTER=1`` in the environment injects a default
    #: config here instead.  Composes with ``faults``: the plan's
    #: report-path *and* connection-level schedules are injected at
    #: the socket layer.
    cluster: "ClusterConfig | None" = None
    #: Cycle-level profiling: a :class:`ProfileConfig`, ``True`` for
    #: the defaults, or ``None``/``False`` (off).  Implies telemetry.
    #: Every trace_span site becomes a wall+CPU stage timer, the stack
    #: sampler aggregates collapsed stacks per stage, and per-process
    #: RSS high-water gauges publish each epoch — with per-worker
    #: profiles merged centrally on the process-pool path.  Setting
    #: ``REPRO_PROFILE=1`` in the environment injects a config here.
    #: Profiling only observes: results stay bit-identical.
    profile: ProfileConfig | bool | None = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = telemetry_from_env()
        if self.profile is None or self.profile is False:
            env_profile = profile_from_env()
            if env_profile is not None:
                self.profile = env_profile
        if self.profile:
            if not isinstance(self.profile, ProfileConfig):
                self.profile = ProfileConfig()
            if self.telemetry is None:
                self.telemetry = Telemetry()
            self.telemetry.enable_profiling(self.profile)
        if self.faults is None:
            self.faults = faults_from_env()
        if self.cluster is None:
            self.cluster = cluster_from_env()
        if self.checkpoint_dir is None:
            env_dir, env_every = checkpoint_from_env()
            if env_dir is not None:
                self.checkpoint_dir = env_dir
                if env_every is not None:
                    self.checkpoint_every = env_every
        if self.slo is None:
            env_slo = os.environ.get("REPRO_SLO")
            if env_slo:
                self.slo = env_slo
        if self.shadow_samples == 0:
            env_samples = os.environ.get("REPRO_SHADOW_SAMPLES", "")
            if env_samples.isdigit():
                self.shadow_samples = int(env_samples)
        if self.recorder_path is None:
            self.recorder_path = (
                os.environ.get("REPRO_RECORDER_PATH") or None
            )


def _run_host_epoch(host, shard, offered_gbps, profile=None):
    """Top-level worker so (host, shard) round-trip through pickle.

    With a :class:`ProfileConfig`, the worker builds its own profiler
    (profilers hold threads and locks, so they never pickle), runs the
    shard under a ``dataplane.host`` stage, and ships the profile back
    as ``(report, payload)`` for the parent to merge — per-pid stage
    totals, folded stacks, RSS, and spans stamped with the worker's
    pid/tid.
    """
    if profile is None:
        return host.run_epoch(shard, offered_gbps)
    telemetry = Telemetry()
    profiler = telemetry.enable_profiling(profile)
    host.switch.profiler = profiler
    try:
        with profiler.stage("dataplane.host", host=host.host_id):
            report = host.run_epoch(shard, offered_gbps)
    finally:
        host.switch.profiler = None
    return report, profiler.to_payload()


@dataclass
class EpochResult:
    """Everything one epoch produced."""

    answer: object
    score: TaskScore
    network: NetworkResult
    reports: list[LocalReport]
    #: Delivery bookkeeping from the report collector; ``None`` when
    #: no :class:`FaultPlan` is configured (direct in-memory path).
    collection: CollectionResult | None = None
    #: Per-host :class:`~repro.durability.HostOutcome` records from the
    #: supervised data plane; ``None`` when checkpointing is disabled.
    durability: list[HostOutcome] | None = None
    #: Accuracy-SLO rules this epoch failed (empty without a policy).
    slo_breaches: list[SLOBreach] = field(default_factory=list)

    @property
    def degraded(self):
        """The epoch's :class:`DegradedEpoch` record, if any."""
        return self.network.degraded

    @property
    def throughput_gbps(self) -> float:
        """Mean per-host throughput for the epoch."""
        if not self.reports:
            return 0.0
        return sum(
            r.switch.throughput_gbps for r in self.reports
        ) / len(self.reports)

    @property
    def fastpath_byte_fraction(self) -> float:
        total = sum(r.switch.total_bytes for r in self.reports)
        if total == 0:
            return 0.0
        return (
            sum(r.switch.fastpath_bytes for r in self.reports) / total
        )


class SketchVisorPipeline:
    """Task + solution + deployment, runnable on traces.

    Parameters
    ----------
    task:
        A measurement task bound to a solution (e.g.
        ``HeavyHitterTask("deltoid", threshold)``).
    dataplane:
        Data-plane mode (§7.2 arms).
    recovery:
        Control-plane recovery mode (§7.3 arms).  Ignored for IDEAL
        and NO_FASTPATH data planes, which produce no fast-path state.
    """

    def __init__(
        self,
        task: MeasurementTask,
        dataplane: DataPlaneMode = DataPlaneMode.SKETCHVISOR,
        recovery: RecoveryMode = RecoveryMode.SKETCHVISOR,
        config: PipelineConfig | None = None,
    ):
        self.task = task
        self.dataplane = dataplane
        self.recovery = recovery
        self.config = config or PipelineConfig()
        self.controller = Controller(
            mode=recovery,
            lens_config=self.config.lens,
            quorum=self.config.quorum,
            telemetry=self.config.telemetry,
        )
        # The chaos path only exists when a FaultPlan is configured;
        # without one, reports go straight to the controller and the
        # run is bit-identical to a build without fault injection.
        if self.config.faults is not None:
            self._injector = FaultInjector(self.config.faults)
            self._collector = ReportCollector(
                timeout=self.config.report_timeout,
                max_retries=self.config.report_retries,
                injector=self._injector,
            )
        else:
            self._injector = None
            self._collector = None
        # The socket transport composes with chaos: the same injector
        # (when present) drives both report-path and connection-level
        # fault schedules at the socket layer.
        if self.config.cluster is not None:
            self._cluster = ClusterCollector(
                self.config.cluster, injector=self._injector
            )
        else:
            self._cluster = None
        # Durable host state is likewise opt-in: with no checkpoint
        # directory the supervisor never exists and the data plane runs
        # the historical (unsupervised) paths bit for bit.
        if self.config.checkpoint_dir is not None:
            self._supervisor = Supervisor(
                self.config.checkpoint_dir,
                plan=self.config.faults,
                injector=self._injector,
                checkpoint_every=self.config.checkpoint_every,
                cycle_budget=self.config.checkpoint_cycle_budget,
                heartbeat_every=self.config.heartbeat_every,
                watchdog_timeout=self.config.watchdog_timeout,
                max_restarts=self.config.max_restarts,
                quarantine_threshold=self.config.quarantine_threshold,
                quarantine_epochs=self.config.quarantine_epochs,
            )
        else:
            self._supervisor = None
        # Accuracy observability rides on telemetry: theoretical-bound
        # gauges are always published when instrumented; the shadow
        # sampler and SLO engine are opt-in on top.
        if self.config.telemetry is not None:
            policy = self.config.slo
            if isinstance(policy, str):
                policy = SLOPolicy.load(policy)
            self._accuracy = AccuracyObserver(
                self.config.telemetry,
                policy=policy,
                shadow_samples=self.config.shadow_samples,
                seed=self.config.seed,
                recorder_path=self.config.recorder_path,
            )
        else:
            self._accuracy = None
        self._epoch_counter = 0

    def describe(self) -> str:
        """One-line configuration summary for logs and error messages."""
        cfg = self.config
        return (
            f"SketchVisorPipeline(task={self.task.name!r}, "
            f"dataplane={self.dataplane.value}, "
            f"recovery={self.recovery.value}, "
            f"hosts={cfg.num_hosts}, workers={cfg.workers}, "
            f"engine={'batch' if cfg.batch else 'scalar'}, "
            f"buffer={cfg.buffer_packets}p, "
            f"fastpath={cfg.fastpath_bytes}B, "
            f"telemetry={'on' if cfg.telemetry is not None else 'off'}, "
            f"chaos={'on' if cfg.faults is not None else 'off'}, "
            f"cluster="
            f"{('hier' if cfg.cluster.hierarchical else 'flat') if cfg.cluster is not None else 'off'}, "
            f"durability="
            f"{'on' if cfg.checkpoint_dir is not None else 'off'})"
        )

    def __repr__(self) -> str:
        return self.describe()

    # ------------------------------------------------------------------
    def _build_hosts(self) -> list[Host]:
        cfg = self.config
        hosts = []
        for host_id in range(cfg.num_hosts):
            sketch = self.task.create_sketch(seed=cfg.seed)
            hosts.append(
                Host(
                    host_id=host_id,
                    sketch=sketch,
                    fastpath_bytes=(
                        None
                        if self.dataplane
                        in (
                            DataPlaneMode.NO_FASTPATH,
                            DataPlaneMode.IDEAL,
                        )
                        else cfg.fastpath_bytes
                    ),
                    use_misra_gries=(
                        self.dataplane is DataPlaneMode.MG_FASTPATH
                    ),
                    ideal=self.dataplane is DataPlaneMode.IDEAL,
                    cost_model=cfg.cost_model,
                    buffer_packets=cfg.buffer_packets,
                    batch=cfg.batch,
                )
            )
        return hosts

    def _doomed_hosts(self, hosts, shards, epoch: int) -> set[int]:
        """Hosts whose shard has a mid-epoch fault scheduled while no
        supervisor can recover them: the crash/hang loses the epoch
        (their report goes missing → degraded merge), exactly the
        pre-durability behavior the checkpoint layer exists to fix."""
        cfg = self.config
        if cfg.faults is None:
            return set()
        doomed = set()
        for host, shard in zip(hosts, shards):
            events = cfg.faults.dataplane_schedule_for(
                epoch, host.host_id, len(shard.packets)
            )
            if events:
                doomed.add(host.host_id)
                if self._injector is not None:
                    self._injector.record(events[0].kind)
        return doomed

    def _run_dataplane(
        self, trace: Trace
    ) -> tuple[list[LocalReport], list[int], list[HostOutcome] | None]:
        """Run one epoch's data plane.

        Returns ``(reports, missing_hosts, outcomes)``: reports that
        survived, hosts whose epoch was lost to an unrecovered
        data-plane fault, and the supervisor's per-host outcome records
        (``None`` when checkpointing is disabled).
        """
        cfg = self.config
        if cfg.workers < 1:
            raise ConfigError("workers must be >= 1")
        with trace_span(
            cfg.telemetry, "trace.partition", hosts=cfg.num_hosts
        ):
            shards = trace.partition(cfg.num_hosts)
        # Hosts are built *without* telemetry: per-host metrics are
        # published centrally from the returned reports, so serial and
        # process-pool runs (where host-side mutations would be lost in
        # the worker) emit identical counters.
        hosts = self._build_hosts()
        workers = min(cfg.workers, len(hosts))
        # The epoch the *next* _aggregate call will stamp on these
        # reports — fault schedules must be keyed by the same number.
        epoch = self._epoch_counter
        if self._supervisor is not None and workers <= 1:
            # Supervised path: the scalar reference engine under
            # checkpointing (batch and scalar are bit-identical by
            # contract, so forcing scalar here changes no counters).
            with trace_span(
                cfg.telemetry, "dataplane.supervised", epoch=epoch
            ):
                outcomes = self._supervisor.run_epoch(
                    hosts, shards, cfg.offered_gbps, epoch
                )
            reports = [
                o.report for o in outcomes if o.report is not None
            ]
            missing = [
                o.host_id for o in outcomes if o.report is None
            ]
            if cfg.telemetry is not None:
                publish_durability_epoch(
                    cfg.telemetry.registry, outcomes
                )
                self._publish_reports(reports)
            return reports, missing, outcomes
        # Unsupervised (or process-pool) path: a scheduled mid-epoch
        # fault is unrecoverable — the host's epoch is simply lost.
        doomed = self._doomed_hosts(hosts, shards, epoch)
        live = [
            (host, shard)
            for host, shard in zip(hosts, shards)
            if host.host_id not in doomed
        ]
        hosts = [host for host, _shard in live]
        shards = [shard for _host, shard in live]
        workers = min(cfg.workers, len(hosts)) if hosts else 0
        profiler = (
            cfg.telemetry.profiler if cfg.telemetry is not None else None
        )
        if workers <= 1:
            reports = []
            for host, shard in zip(hosts, shards):
                # Stage timers run where the cycles are spent: the
                # serial path shares the parent's profiler (metrics
                # still publish centrally from the reports).
                if profiler is not None:
                    host.switch.profiler = profiler
                with trace_span(
                    cfg.telemetry, "dataplane.host", host=host.host_id
                ):
                    reports.append(
                        host.run_epoch(shard, cfg.offered_gbps)
                    )
        else:
            # Hosts are independent within an epoch (disjoint shards,
            # merge at the controller), so they parallelize with no
            # coordination; hosts, shards and reports pickle cleanly.
            # A worker crash (OOM-killed, segfaulted C extension, ...)
            # surfaces as BrokenProcessPool on result(); the parent's
            # host copies were never mutated, so the failed shards
            # simply rerun serially here.
            profile = cfg.profile if profiler is not None else None
            results: dict[int, LocalReport] = {}
            payloads: dict[int, dict] = {}
            crashed: list[int] = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _run_host_epoch,
                        host,
                        shard,
                        cfg.offered_gbps,
                        profile,
                    )
                    for host, shard in zip(hosts, shards)
                ]
                for index, future in enumerate(futures):
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        crashed.append(index)
                        continue
                    if profile is not None:
                        results[index], payloads[index] = outcome
                    else:
                        results[index] = outcome
            if profiler is not None and payloads:
                # Merge worker profiles centrally (same parity bar as
                # the counters): stage totals sum, folded stacks sum,
                # RSS stays per pid, and worker spans land under the
                # open ``dataplane`` span with their own pid/tid lanes.
                parent_span = cfg.telemetry.tracer.current
                for index in sorted(payloads):
                    profiler.merge_payload(
                        payloads[index], parent_span=parent_span
                    )
            if crashed:
                logger.warning(
                    "process pool broke; rerunning %d host shard(s) "
                    "serially: %s",
                    len(crashed),
                    [hosts[i].host_id for i in crashed],
                )
                if cfg.telemetry is not None:
                    publish_worker_crashes(
                        cfg.telemetry.registry, len(crashed)
                    )
                    cfg.telemetry.recorder.record(
                        "worker_crash",
                        epoch=epoch,
                        hosts=[hosts[i].host_id for i in crashed],
                    )
                for index in crashed:
                    if profiler is not None:
                        hosts[index].switch.profiler = profiler
                    with trace_span(
                        cfg.telemetry,
                        "dataplane.host.serial_retry",
                        host=hosts[index].host_id,
                    ):
                        results[index] = hosts[index].run_epoch(
                            shards[index], cfg.offered_gbps
                        )
            reports = [results[i] for i in range(len(futures))]
        if cfg.telemetry is not None:
            self._publish_reports(reports)
        return reports, sorted(doomed), None

    # ------------------------------------------------------------------
    def _next_epoch(self) -> int:
        epoch = self._epoch_counter
        self._epoch_counter += 1
        return epoch

    def _aggregate(
        self,
        reports: list[LocalReport],
        extra_missing: list[int] | None = None,
    ) -> tuple[NetworkResult, CollectionResult | None]:
        """Hand one epoch's reports to the controller.

        Without a :class:`FaultPlan` this is the historical direct
        call.  With one, reports round-trip the v2 wire format through
        the :class:`ReportCollector` (faults injected, retries, dedup)
        and the controller merges whatever survived, degraded-mode if
        necessary.  ``extra_missing`` names hosts whose report never
        reached the collector at all (unrecovered data-plane faults) —
        they join the missing set the degraded merge compensates for.
        """
        cfg = self.config
        extra_missing = extra_missing or []
        epoch = self._next_epoch()
        if self._cluster is not None:
            return self._aggregate_cluster(
                reports, extra_missing, epoch
            )
        if self._collector is None:
            if extra_missing:
                # No report channel to blame, but hosts are still
                # missing: go straight to the degraded merge.
                return (
                    self.controller.aggregate(
                        reports,
                        expected_hosts=cfg.num_hosts,
                        missing_hosts=sorted(extra_missing),
                        epoch=epoch,
                    ),
                    None,
                )
            return self.controller.aggregate(reports), None
        with trace_span(
            cfg.telemetry, "controlplane.collect", epoch=epoch
        ):
            with trace_span(
                cfg.telemetry, "serialize.report", reports=len(reports)
            ):
                frames = {
                    report.host_id: encode_report(report, epoch)
                    for report in reports
                }
            collection = self._collector.collect(frames, epoch)
        if extra_missing:
            collection.missing_hosts.extend(
                host_id
                for host_id in sorted(extra_missing)
                if host_id not in collection.missing_hosts
            )
        if cfg.telemetry is not None:
            publish_collection_epoch(
                cfg.telemetry.registry, collection
            )
        network = self.controller.aggregate(
            collection.reports,
            expected_hosts=cfg.num_hosts,
            missing_hosts=collection.missing_hosts,
            epoch=epoch,
        )
        return network, collection

    def _aggregate_cluster(
        self,
        reports: list[LocalReport],
        extra_missing: list[int],
        epoch: int,
    ) -> tuple[NetworkResult, CollectionResult]:
        """The real-socket epoch: reports cross TCP connections to the
        aggregator tier, and the controller merges whatever arrived —
        partial aggregates in hierarchical mode, decoded reports in
        flat mode — with quorum still keyed on *hosts*."""
        cfg = self.config
        with trace_span(
            cfg.telemetry, "controlplane.cluster", epoch=epoch
        ):
            collection = self._cluster.collect(reports, epoch)
        if extra_missing:
            collection.missing_hosts.extend(
                host_id
                for host_id in sorted(extra_missing)
                if host_id not in collection.missing_hosts
            )
        if cfg.telemetry is not None:
            publish_collection_epoch(
                cfg.telemetry.registry, collection
            )
            publish_cluster_epoch(
                cfg.telemetry.registry, self._cluster, collection
            )
        network = self.controller.aggregate(
            collection.reports,
            expected_hosts=cfg.num_hosts,
            missing_hosts=collection.missing_hosts,
            epoch=epoch,
            reported_hosts=collection.hosts_reported,
        )
        return network, collection

    def _publish_reports(self, reports: list[LocalReport]) -> None:
        """Publish per-host data-plane counters from epoch reports."""
        registry = self.config.telemetry.registry
        engine = "batch" if self.config.batch else "scalar"
        for report in reports:
            publish_switch_epoch(
                registry,
                report.switch,
                host=str(report.host_id),
                sketch=report.sketch.name,
                engine=engine,
            )
            if report.fastpath is not None:
                publish_fastpath_epoch(
                    registry,
                    fastpath_stats(report.fastpath),
                    host=str(report.host_id),
                )

    def _finish_epoch(
        self, result: EpochResult, dp_missing: list[int]
    ) -> EpochResult:
        """Accuracy observability tail of every epoch.

        Records the epoch's notable events into the flight recorder,
        publishes the error-bound and shadow-sample gauges, evaluates
        the SLO policy (attaching breaches to the result), and
        auto-dumps the recorder on unrecovered crash or quarantine.
        """
        observer = self._accuracy
        if observer is None:
            return result
        epoch = self._epoch_counter - 1
        recorder = self.config.telemetry.recorder
        recorder.record_epoch_events(
            epoch,
            reports=result.reports,
            buffer_capacity=self.config.buffer_packets,
            collection=result.collection,
            outcomes=result.durability,
            network=result.network,
            dp_missing=dp_missing,
        )
        with trace_span(self.config.telemetry, "accuracy.observe"):
            result.slo_breaches = observer.observe_epoch(
                result, self.task, epoch
            )
        outcomes = result.durability or []
        collection = result.collection
        transport_quarantined = collection is not None and getattr(
            collection.stats, "quarantined_hosts", 0
        )
        transport_missing = (
            collection is not None and collection.missing_hosts
        )
        unrecovered_shard = collection is not None and any(
            failover.unrecovered_hosts
            for failover in getattr(collection, "failovers", ())
        )
        if any(o.quarantined for o in outcomes):
            observer.maybe_dump("quarantine")
        elif dp_missing or any(o.gave_up for o in outcomes):
            observer.maybe_dump("crash")
        elif result.slo_breaches:
            # An SLO breach already dumped with its own reason; don't
            # overwrite it with the transport-trigger dump below.
            pass
        elif transport_quarantined:
            observer.maybe_dump("quarantine")
        elif unrecovered_shard:
            # An aggregator died and redelivery could not rescue every
            # host on its shard — the epoch merged degraded (or failed
            # quorum upstream); capture the fail-over timeline.
            observer.maybe_dump("aggregator_failover")
        elif transport_missing:
            observer.maybe_dump("crash")
        return result

    # ------------------------------------------------------------------
    def run_epoch(
        self, trace: Trace, truth: GroundTruth | None = None
    ) -> EpochResult:
        """Run one epoch end to end and score the answer."""
        if isinstance(self.task, HeavyChangerTask):
            raise ConfigError("heavy changer needs run_epoch_pair")
        telemetry = self.config.telemetry
        with trace_span(telemetry, "epoch", task=self.task.name):
            if self._accuracy is not None:
                with trace_span(telemetry, "accuracy.shadow_sample"):
                    self._accuracy.observe_trace(trace)
            with trace_span(telemetry, "dataplane"):
                reports, dp_missing, outcomes = self._run_dataplane(
                    trace
                )
            network, collection = self._aggregate(reports, dp_missing)
            with trace_span(telemetry, "task.answer"):
                answer = self.task.answer(network.sketch)
            with trace_span(telemetry, "groundtruth"):
                truth = truth or GroundTruth.from_trace(trace)
            with trace_span(telemetry, "task.score"):
                score = self.task.score(answer, truth)
            result = EpochResult(
                answer=answer,
                score=score,
                network=network,
                reports=reports,
                collection=collection,
                durability=outcomes,
            )
            return self._finish_epoch(result, dp_missing)

    def run_epoch_pair(
        self,
        epoch_a: Trace,
        epoch_b: Trace,
        truth_a: GroundTruth | None = None,
        truth_b: GroundTruth | None = None,
    ) -> EpochResult:
        """Run two consecutive epochs (heavy changer detection)."""
        if not isinstance(self.task, HeavyChangerTask):
            raise ConfigError("run_epoch_pair is for heavy changer")
        telemetry = self.config.telemetry
        with trace_span(telemetry, "epoch", task=self.task.name):
            with trace_span(telemetry, "dataplane", half="a"):
                reports_a, missing_a, outcomes_a = self._run_dataplane(
                    epoch_a
                )
            network_a, _ = self._aggregate(reports_a, missing_a)
            if self._accuracy is not None:
                # The pair's answer is scored against the second epoch;
                # shadow-sample that one.
                with trace_span(telemetry, "accuracy.shadow_sample"):
                    self._accuracy.observe_trace(epoch_b)
            with trace_span(telemetry, "dataplane", half="b"):
                reports_b, missing_b, outcomes_b = self._run_dataplane(
                    epoch_b
                )
            network_b, collection_b = self._aggregate(
                reports_b, missing_b
            )
            with trace_span(telemetry, "task.answer"):
                answer = self.task.answer_pair(
                    network_a.sketch, network_b.sketch
                )
            with trace_span(telemetry, "groundtruth"):
                truth_a = truth_a or GroundTruth.from_trace(epoch_a)
                truth_b = truth_b or GroundTruth.from_trace(epoch_b)
            with trace_span(telemetry, "task.score"):
                score = self.task.score_pair(answer, truth_a, truth_b)
            result = EpochResult(
                answer=answer,
                score=score,
                network=network_b,
                reports=reports_a + reports_b,
                collection=collection_b,
                durability=(
                    None
                    if outcomes_a is None and outcomes_b is None
                    else (outcomes_a or []) + (outcomes_b or [])
                ),
            )
            return self._finish_epoch(
                result, sorted(set(missing_a) | set(missing_b))
            )


# ----------------------------------------------------------------------
# Sliding windows: the incremental-epoch seam for streaming service mode
# ----------------------------------------------------------------------
@dataclass
class Window:
    """One closed sliding window of a continuous packet stream."""

    #: Zero-based window id — the epoch number the pipeline will stamp
    #: on this window's reports (windows feed epochs one to one).
    index: int
    trace: Trace
    #: Wall-clock seconds (``time.time``) when the first packet landed.
    opened_at: float
    #: Wall-clock seconds when the window closed.
    closed_at: float


class WindowScheduler:
    """Slice a continuous packet stream into pipeline epochs.

    The streaming daemon's seam into the batch pipeline: packets are
    offered in arbitrary chunks and come back as closed
    :class:`Window` objects, each carrying a plain :class:`Trace` that
    :meth:`SketchVisorPipeline.run_epoch` processes exactly as a batch
    epoch — same code path, bit-identical results.

    Windows close on a packet-count boundary (``window_packets``), a
    wall-clock deadline (``window_seconds``), or both (whichever
    strikes first).  Packet-count windows are deterministic: feeding
    the same packets under any chunking yields identical window
    contents, which is what makes ``repro serve`` over a replayed
    trace bit-identical to the same trace run as batch epochs.
    """

    def __init__(
        self,
        window_packets: int | None = None,
        window_seconds: float | None = None,
        clock=time.monotonic,
    ):
        if not window_packets and not window_seconds:
            raise ConfigError(
                "need window_packets and/or window_seconds"
            )
        if window_packets is not None and window_packets < 1:
            raise ConfigError("window_packets must be >= 1")
        if window_seconds is not None and window_seconds <= 0:
            raise ConfigError("window_seconds must be > 0")
        self.window_packets = window_packets
        self.window_seconds = window_seconds
        self._clock = clock
        self._buffer: list = []
        self._opened_wall: float | None = None
        self._opened_clock: float | None = None
        #: Windows closed so far (the next window's ``index``).
        self.windows_closed = 0

    @property
    def pending_packets(self) -> int:
        """Packets buffered in the in-flight (unclosed) window."""
        return len(self._buffer)

    def _deadline_expired(self) -> bool:
        return (
            self.window_seconds is not None
            and self._opened_clock is not None
            and self._clock() - self._opened_clock
            >= self.window_seconds
        )

    def _close(self) -> Window:
        window = Window(
            index=self.windows_closed,
            trace=Trace(self._buffer),
            opened_at=self._opened_wall or time.time(),
            closed_at=time.time(),
        )
        self.windows_closed += 1
        self._buffer = []
        self._opened_wall = None
        self._opened_clock = None
        return window

    def offer(self, chunk) -> list[Window]:
        """Feed a chunk of packets; returns any windows it closed.

        ``chunk`` may be a :class:`Trace` or any sequence of packets.
        One large chunk can close several packet-count windows.
        """
        packets = (
            chunk.packets if isinstance(chunk, Trace) else tuple(chunk)
        )
        closed: list[Window] = []
        position = 0
        total = len(packets)
        while position < total:
            if self._opened_clock is None:
                self._opened_wall = time.time()
                self._opened_clock = self._clock()
            if self.window_packets is not None:
                need = self.window_packets - len(self._buffer)
                take = packets[position:position + need]
            else:
                take = packets[position:]
            self._buffer.extend(take)
            position += len(take)
            if (
                self.window_packets is not None
                and len(self._buffer) >= self.window_packets
            ):
                closed.append(self._close())
                continue
            if self._deadline_expired():
                closed.append(self._close())
        if not closed and self._buffer and self._deadline_expired():
            closed.append(self._close())
        return closed

    def poll(self) -> list[Window]:
        """Close the in-flight window if its wall-clock deadline passed
        with no new packets arriving (idle-stream tick)."""
        if self._buffer and self._deadline_expired():
            return [self._close()]
        return []

    def flush(self) -> Window | None:
        """Drain the in-flight partial window (graceful shutdown)."""
        if not self._buffer:
            return None
        return self._close()
