"""Continuous multi-epoch monitoring: the operator-facing loop.

The paper's deployment story (§3) is a long-running service: every
epoch, hosts report, the controller recovers, tasks answer, and
heavy-changer detection compares consecutive epochs.  This module wires
that loop around the per-epoch pipeline, tracks history, and raises
typed alerts when detections cross their thresholds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError
from repro.controlplane.recovery import RecoveryMode
from repro.framework.modes import DataPlaneMode
from repro.framework.pipeline import (
    EpochResult,
    PipelineConfig,
    SketchVisorPipeline,
)
from repro.tasks.base import MeasurementTask
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.telemetry import trace_span
from repro.telemetry.publish import publish_monitor_epoch
from repro.traffic.trace import Trace


class AlertKind(Enum):
    HEAVY_HITTER = "heavy_hitter"
    HEAVY_CHANGER = "heavy_changer"
    DDOS = "ddos"
    SUPERSPREADER = "superspreader"
    #: An epoch was merged from fewer hosts than expected (quorum met,
    #: full set not).  ``subject`` is the tuple of missing host ids and
    #: ``magnitude`` the estimated relative-error inflation.
    DEGRADED_EPOCH = "degraded_epoch"
    #: An accuracy-SLO rule failed its objective this epoch.
    #: ``subject`` is the rule name and ``magnitude`` the offending
    #: metric value (the breach record rides in the epoch result).
    ACCURACY_SLO_BREACH = "accuracy_slo_breach"


@dataclass(frozen=True)
class Alert:
    """One detection event raised during continuous monitoring."""

    epoch: int
    kind: AlertKind
    subject: object  # flow key or host IP
    magnitude: float


@dataclass
class EpochSummary:
    """What one epoch produced in the monitoring loop."""

    epoch: int
    results: dict[str, EpochResult] = field(default_factory=dict)
    alerts: list[Alert] = field(default_factory=list)


_ALERT_KINDS = {
    "heavy_hitter": AlertKind.HEAVY_HITTER,
    "heavy_changer": AlertKind.HEAVY_CHANGER,
    "ddos": AlertKind.DDOS,
    "superspreader": AlertKind.SUPERSPREADER,
}


class ContinuousMonitor:
    """Run a set of measurement tasks over an epoch stream.

    Parameters
    ----------
    tasks:
        The tasks to run each epoch.  A :class:`HeavyChangerTask`
        compares each epoch against the previous one (its first epoch
        produces no answer).
    config:
        Deployment parameters shared by all tasks.
    """

    def __init__(
        self,
        tasks: list[MeasurementTask],
        dataplane: DataPlaneMode = DataPlaneMode.SKETCHVISOR,
        recovery: RecoveryMode = RecoveryMode.SKETCHVISOR,
        config: PipelineConfig | None = None,
    ):
        if not tasks:
            raise ConfigError("need at least one task")
        self.tasks = tasks
        self.config = config or PipelineConfig()
        self._pipelines = {
            task.name: SketchVisorPipeline(
                task,
                dataplane=dataplane,
                recovery=recovery,
                config=self.config,
            )
            for task in tasks
        }
        self._epoch_index = 0
        self._previous_trace: Trace | None = None
        self.history: list[EpochSummary] = []

    # ------------------------------------------------------------------
    def process_epoch(self, trace: Trace) -> EpochSummary:
        """Feed one epoch of traffic; returns its summary with alerts."""
        telemetry = self.config.telemetry
        summary = EpochSummary(epoch=self._epoch_index)
        start = time.perf_counter()
        with trace_span(
            telemetry, "monitor.epoch", epoch=self._epoch_index
        ):
            for task in self.tasks:
                pipeline = self._pipelines[task.name]
                if isinstance(task, HeavyChangerTask):
                    if self._previous_trace is None:
                        continue
                    result = pipeline.run_epoch_pair(
                        self._previous_trace, trace
                    )
                else:
                    result = pipeline.run_epoch(trace)
                summary.results[task.name] = result
                summary.alerts.extend(
                    self._alerts_from(task, result)
                )
                degraded = result.network.degraded
                if degraded is not None:
                    summary.alerts.append(
                        Alert(
                            epoch=self._epoch_index,
                            kind=AlertKind.DEGRADED_EPOCH,
                            subject=degraded.missing_hosts,
                            magnitude=degraded.error_inflation,
                        )
                    )
                summary.alerts.extend(
                    Alert(
                        epoch=self._epoch_index,
                        kind=AlertKind.ACCURACY_SLO_BREACH,
                        subject=breach.rule,
                        magnitude=breach.value,
                    )
                    for breach in result.slo_breaches
                )
        if telemetry is not None:
            publish_monitor_epoch(
                telemetry.registry,
                summary,
                time.perf_counter() - start,
            )
        self._previous_trace = trace
        self._epoch_index += 1
        self.history.append(summary)
        return summary

    def _alerts_from(
        self, task: MeasurementTask, result: EpochResult
    ) -> list[Alert]:
        kind = _ALERT_KINDS.get(task.name)
        if kind is None or not isinstance(result.answer, dict):
            return []
        return [
            Alert(
                epoch=self._epoch_index,
                kind=kind,
                subject=subject,
                magnitude=float(magnitude),
            )
            for subject, magnitude in result.answer.items()
        ]

    # ------------------------------------------------------------------
    def alerts(self, kind: AlertKind | None = None) -> list[Alert]:
        """All alerts so far, optionally filtered by kind."""
        collected = [
            alert
            for summary in self.history
            for alert in summary.alerts
        ]
        if kind is None:
            return collected
        return [alert for alert in collected if alert.kind is kind]

    def recurring_subjects(
        self, kind: AlertKind, min_epochs: int = 2
    ) -> set:
        """Subjects alerted in at least ``min_epochs`` distinct epochs.

        Persistent heavy hitters / attackers matter more to operators
        than one-epoch blips.
        """
        epochs_by_subject: dict[object, set[int]] = {}
        for alert in self.alerts(kind):
            epochs_by_subject.setdefault(alert.subject, set()).add(
                alert.epoch
            )
        return {
            subject
            for subject, epochs in epochs_by_subject.items()
            if len(epochs) >= min_epochs
        }
