"""Table 1 as code: which solutions serve which measurement tasks."""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.tasks.base import MeasurementTask
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.ddos import DDoSTask
from repro.tasks.distribution import FlowSizeDistributionTask
from repro.tasks.entropy import EntropyTask
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.tasks.superspreader import SuperspreaderTask

#: task name -> (task class, supported solution names) — Table 1.
TASK_REGISTRY: dict[str, tuple[type[MeasurementTask], tuple[str, ...]]] = {
    "heavy_hitter": (
        HeavyHitterTask,
        ("flowradar", "revsketch", "univmon", "deltoid"),
    ),
    "heavy_changer": (
        HeavyChangerTask,
        ("flowradar", "revsketch", "univmon", "deltoid"),
    ),
    "ddos": (DDoSTask, ("twolevel",)),
    "superspreader": (SuperspreaderTask, ("twolevel",)),
    "cardinality": (CardinalityTask, ("fm", "kmin", "lc")),
    "flow_size_distribution": (
        FlowSizeDistributionTask,
        ("flowradar", "mrac"),
    ),
    "entropy": (EntropyTask, ("flowradar", "univmon")),
}


def create_task(
    task_name: str, solution: str, **kwargs
) -> MeasurementTask:
    """Instantiate a task by name (validates against Table 1)."""
    if task_name not in TASK_REGISTRY:
        raise ConfigError(
            f"unknown task {task_name!r}; "
            f"choose from {sorted(TASK_REGISTRY)}"
        )
    task_class, solutions = TASK_REGISTRY[task_name]
    if solution not in solutions:
        raise ConfigError(
            f"task {task_name!r} supports {solutions}, got {solution!r}"
        )
    return task_class(solution=solution, **kwargs)
