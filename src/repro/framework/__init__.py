"""Top-level SketchVisor framework: data plane + control plane, wired.

:class:`~repro.framework.pipeline.SketchVisorPipeline` is the main
entry point: pick a measurement task and a sketch-based solution
(Table 1), a data-plane mode (NoFastPath / MGFastPath / SketchVisor /
Ideal) and a recovery mode (NR / LR / UR / SketchVisor), then run
traffic through per-host software switches and aggregate network-wide.
"""

from repro.framework.modes import DataPlaneMode
from repro.framework.monitor import (
    Alert,
    AlertKind,
    ContinuousMonitor,
    EpochSummary,
)
from repro.framework.pipeline import (
    EpochResult,
    PipelineConfig,
    SketchVisorPipeline,
)
from repro.framework.registry import TASK_REGISTRY, create_task

__all__ = [
    "Alert",
    "AlertKind",
    "ContinuousMonitor",
    "DataPlaneMode",
    "EpochResult",
    "EpochSummary",
    "PipelineConfig",
    "SketchVisorPipeline",
    "TASK_REGISTRY",
    "create_task",
]
