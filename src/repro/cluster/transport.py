"""Asyncio host → aggregator socket transport.

The client half (:class:`HostChannel`) delivers one host's encoded v2
frame to its aggregator over a real TCP connection: connect with a
deadline, write under kernel backpressure (bounded write buffer +
``drain()``), wait for the aggregator's one-byte ack, and retry failed
attempts on the same seeded, jittered exponential-backoff schedule the
in-process :class:`~repro.controlplane.transport.ReportCollector`
uses.  A process-wide in-flight semaphore bounds how many hosts hold
open sockets and encoded frames at once, so a 1000-host epoch runs in
bounded transport memory.

The server half (:class:`AggregatorListener`) accepts connections for
one aggregator, reassembles frames with the sans-IO
:class:`~repro.cluster.framing.FrameAssembler` under an idle deadline,
and routes every frame through the same defensive checks as the
in-process collector — stale-epoch rejection from the in-the-clear
header, CRC + restricted-unpickle decode, dedup by ``(host, epoch)``
— acking ``ACK``/``ACK_DUP`` or nacking ``NAK_STALE``/``NAK_CORRUPT``
so the client knows whether to retry.

Fault injection happens where each fault lives in a real deployment:
connection-level kinds (refused, reset, partial write, slow peer,
partition) at the socket operations, frame-level kinds (truncation,
bit-flips, stale replays, duplicates) on the bytes written — all drawn
from the same seeded :class:`~repro.faults.FaultPlan` schedules, so a
chaos run is reproducible byte for byte.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.cluster.framing import FrameAssembler
from repro.common.errors import CorruptFrameError, StaleEpochError
from repro.controlplane.transport import (
    CollectionStats,
    decode_report,
    jittered_backoff,
    peek_header,
)
from repro.faults.plan import AggregatorFault, FaultKind

#: One-byte control responses from aggregator to host.
ACK = b"\x06"
ACK_DUP = b"\x07"
NAK_STALE = b"\x15"
NAK_CORRUPT = b"\x16"

#: Acks that mean "your report is accounted for; stop retrying".
_SUCCESS_ACKS = (ACK, ACK_DUP)

#: Fault kinds that abort the whole epoch for a host before any
#: connection is attempted.
_EPOCH_FATAL = {FaultKind.CRASH, FaultKind.PARTITION}


class AggregatorListener:
    """One aggregator's listening socket.

    Frames that decode cleanly are handed to ``sink`` (an
    :class:`~repro.cluster.aggregator.Aggregator` or a plain report
    list's ``append``-style callable); every defensive outcome is
    counted into the shared :class:`CollectionStats`.  All handler
    state runs on one event loop, so no locking is needed.

    An optional scheduled :class:`~repro.faults.AggregatorFault` makes
    the listener *itself* the failure: once it has accepted
    ``fault.offset`` reports it strikes — a crash closes the server
    and RSTs the triggering connection; a hang leaves the socket open
    but swallows every subsequent byte without answering.  Either way
    its heartbeats cease, which is the only failure signal the
    controller's watchdog consumes.
    """

    def __init__(
        self,
        aggregator_id: int,
        epoch: int,
        sink,
        stats: CollectionStats,
        seen: set[tuple[int, int]],
        delivered: set[int],
        *,
        idle_timeout: float,
        max_frame_bytes: int,
        on_accept=None,
        fault: AggregatorFault | None = None,
        injector=None,
    ):
        self.aggregator_id = aggregator_id
        self.epoch = epoch
        self.sink = sink
        self.stats = stats
        self.seen = seen
        self.delivered = delivered
        self.idle_timeout = idle_timeout
        self.max_frame_bytes = max_frame_bytes
        self.on_accept = on_accept
        self.fault = fault
        self.injector = injector
        self.server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None
        self._handlers: set[asyncio.Task] = set()
        #: Hosts this aggregator has ACKed this epoch, in arrival
        #: order — the shard state that dies with it on a strike.
        self.accepted: list[int] = []
        #: The fault kind that struck, or ``None`` while healthy.
        self.struck: FaultKind | None = None
        self.struck_at: float | None = None
        self._hung = False
        self._heartbeat: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return self.struck is None

    def start_heartbeat(self, beat, interval: float) -> None:
        """Beat ``beat(aggregator_id)`` every ``interval`` seconds
        until a fault strikes; the resulting silence is how the
        controller detects the failure (no in-band error report — a
        dead process cannot send one)."""

        async def _loop() -> None:
            while self.struck is None:
                beat(self.aggregator_id)
                await asyncio.sleep(interval)

        beat(self.aggregator_id)
        self._heartbeat = asyncio.ensure_future(_loop())

    async def start(self, host: str, port: int) -> tuple[str, int]:
        self.server = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        sockname = self.server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def close(self, drain_timeout: float) -> None:
        """Stop accepting, give in-flight handlers a drain window."""
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            try:
                await self._heartbeat
            except asyncio.CancelledError:
                pass
            self._heartbeat = None
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if self._handlers:
            done, pending = await asyncio.wait(
                self._handlers, timeout=drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Listener shutdown (drain window expired, or a fail-over
            # tearing down a dead aggregator mid-read): the connection
            # dies, not the epoch.  Complete normally so the event
            # loop's stream machinery does not log the cancellation.
            if task is not None:
                task.uncancel()
        finally:
            self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        assembler = FrameAssembler(self.max_frame_bytes)
        while True:
            if self._hung:
                # A hung aggregator sits on the connection forever:
                # bytes are swallowed, nothing is acked, and no idle
                # deadline fires — the *client's* ack timeout is what
                # ends the exchange.
                try:
                    chunk = await reader.read(64 * 1024)
                except (ConnectionError, OSError):
                    return
                if not chunk:
                    return
                continue
            try:
                chunk = await asyncio.wait_for(
                    reader.read(64 * 1024), timeout=self.idle_timeout
                )
            except asyncio.TimeoutError:
                # Slow peer: mid-frame silence past the idle deadline.
                # Hang up; the client's fault bookkeeping (or its ack
                # timeout) classifies the loss.
                return
            except (ConnectionError, OSError):
                return
            if not chunk:
                # Clean EOF.  A buffered partial frame is a short
                # write (injected partial_write/truncate or a genuine
                # killed sender); the tail is discarded and the
                # *sender* attributes the loss — the server cannot
                # distinguish why the stream ended early.
                return
            try:
                frames = assembler.feed(chunk)
            except CorruptFrameError:
                # Mis-framed stream: unrecoverable for the connection.
                self.stats.corrupt_frames += 1
                await self._respond(writer, NAK_CORRUPT)
                return
            for frame in frames:
                if not await self._process_frame(writer, frame):
                    return

    async def _process_frame(self, writer, frame: bytes) -> bool:
        """Decode + account one frame; False drops the connection."""
        if self._hung:
            # Struck mid-batch: the rest of this read's frames are
            # swallowed too.
            return True
        if self.struck is not None:
            return False
        if (
            self.fault is not None
            and len(self.accepted) >= self.fault.offset
        ):
            return self._strike(writer)
        try:
            header = peek_header(frame)
            if header.epoch is not None and header.epoch != (
                self.epoch & 0xFFFF_FFFF
            ):
                raise StaleEpochError(
                    f"frame for epoch {header.epoch} during epoch "
                    f"{self.epoch}"
                )
            report = decode_report(frame)
        except StaleEpochError:
            self.stats.stale_frames += 1
            return await self._respond(writer, NAK_STALE)
        except CorruptFrameError:
            self.stats.corrupt_frames += 1
            return await self._respond(writer, NAK_CORRUPT)
        key = (report.host_id, self.epoch)
        if key in self.seen:
            self.stats.duplicates += 1
            return await self._respond(writer, ACK_DUP)
        self.seen.add(key)
        self.delivered.add(report.host_id)
        self.accepted.append(report.host_id)
        self.sink(report)
        if self.on_accept is not None:
            self.on_accept(report.host_id, frame)
        return await self._respond(writer, ACK)

    def _strike(self, writer) -> bool:
        """Fire the scheduled aggregator fault.  The frame in hand is
        never acked; whether the connection survives depends on how
        the aggregator "died"."""
        kind = self.fault.kind
        self.struck = kind
        self.struck_at = asyncio.get_running_loop().time()
        if self.injector is not None:
            self.injector.record(kind)
        if kind is FaultKind.AGG_CRASH:
            self.stats.agg_crashes += 1
            # The process is gone: no new connections, and the one
            # that tripped the fault dies with an RST.
            if self.server is not None:
                self.server.close()
            with _suppress_conn_errors():
                writer.transport.abort()
            return False
        self.stats.agg_hangs += 1
        self._hung = True
        return True

    async def _respond(self, writer, code: bytes) -> bool:
        try:
            writer.write(code)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False


class HostChannel:
    """One host's delivery loop for one epoch.

    The encoded frame is materialized lazily, per attempt, *inside*
    the in-flight semaphore window (``frame_factory``), so an epoch
    never holds more than ``max_inflight`` encoded frames at once no
    matter how many hosts it spans.

    ``address`` may be a ``(host, port)`` pair or a zero-arg callable
    resolving to one (or ``None`` when no aggregator is reachable).
    The callable form is how fail-over re-routes mid-flight: every
    *attempt* re-resolves, so a host whose aggregator died between
    retries lands its next attempt on the rendezvous survivor without
    any channel-level coordination.
    """

    def __init__(
        self,
        host_id: int,
        epoch: int,
        frame_factory,
        address,
        config,
        stats: CollectionStats,
        injector=None,
        faults: list[FaultKind] | None = None,
        inflight: asyncio.Semaphore | None = None,
    ):
        self.host_id = host_id
        self.epoch = epoch
        self.frame_factory = frame_factory
        self.address = address
        self.config = config
        self.stats = stats
        self.injector = injector
        self.faults = deque(faults or ())
        self.inflight = inflight
        #: The final ack byte received (``ACK``/``ACK_DUP``), ``None``
        #: until an attempt succeeds — lets redelivery distinguish "my
        #: copy landed" from "someone already delivered it".
        self.last_ack: bytes | None = None

    def _resolve_address(self):
        return self.address() if callable(self.address) else self.address

    # ------------------------------------------------------------------
    async def deliver(self) -> bytes | None:
        """Run the attempt/retry loop.

        Returns the acked frame bytes on success (replay fuel for the
        injector), ``None`` when every attempt failed.
        """
        cfg = self.config
        fatal = next(
            (f for f in self.faults if f in _EPOCH_FATAL), None
        )
        if fatal is not None:
            # The host is down (crash) or unreachable (partition) for
            # the whole epoch: burn the retry budget without a socket.
            self._record(fatal)
            if fatal is FaultKind.CRASH:
                self.stats.crashes += 1
            else:
                self.stats.partitions += 1
            self.stats.retries += cfg.max_retries
            self.stats.backoff_seconds += sum(
                self._backoff(a) for a in range(1, cfg.max_retries + 1)
            )
            return None
        for attempt in range(cfg.max_retries + 1):
            if attempt > 0:
                self.stats.retries += 1
                backoff = self._backoff(attempt)
                self.stats.backoff_seconds += backoff
                await asyncio.sleep(backoff)
            fault = self.faults.popleft() if self.faults else None
            frame = await self._attempt(fault, attempt)
            if frame is not None:
                return frame
        return None

    def _backoff(self, attempt: int) -> float:
        """Seeded jittered backoff (same construction as the
        in-process collector's, keyed by (epoch, host, attempt))."""
        cfg = self.config
        return jittered_backoff(
            cfg.backoff_base,
            cfg.backoff_factor,
            cfg.backoff_jitter,
            cfg.jitter_seed,
            self.epoch,
            self.host_id,
            attempt,
        )

    def _record(self, fault: FaultKind | None) -> None:
        if fault is not None and self.injector is not None:
            self.injector.record(fault)

    # ------------------------------------------------------------------
    async def _attempt(
        self, fault: FaultKind | None, attempt: int
    ) -> bytes | None:
        """One delivery attempt under an optional injected fault.

        Returns the frame bytes when the aggregator acked them,
        ``None`` on any failure.
        """
        self._record(fault)
        # Faults that never touch the wire.
        if fault is FaultKind.DROP:
            self.stats.drops += 1
            return None
        if fault is FaultKind.DELAY:
            self.stats.timeouts += 1
            return None
        if fault is FaultKind.CONN_REFUSED:
            self.stats.conn_refused += 1
            return None
        if self.inflight is not None and self.inflight.locked():
            # The bounded in-flight pool is full: this send waits for
            # a slot — the transport's backpressure signal.
            self.stats.backpressure_waits += 1
        async with self.inflight or _null_context():
            frame = self.frame_factory()
            # What goes on the wire this attempt.
            payloads = [frame]
            if fault is FaultKind.TRUNCATE:
                payloads = [
                    self.injector.truncate(
                        frame, self.epoch, self.host_id, attempt
                    )
                ]
            elif fault is FaultKind.BITFLIP:
                payloads = [
                    self.injector.bitflip(
                        frame, self.epoch, self.host_id, attempt
                    )
                ]
            elif fault is FaultKind.DUPLICATE:
                payloads = [frame, frame]
            elif fault is FaultKind.REPLAY:
                stale = self.injector.stale_frame(self.host_id)
                if stale is None:
                    # Nothing to replay: degrades to a drop.
                    self.stats.drops += 1
                    return None
                payloads = [stale]
            elif fault is FaultKind.PARTIAL_WRITE:
                payloads = [frame[: max(1, len(frame) // 2)]]
            ok = await self._attempt_connected(fault, frame, payloads)
            return frame if ok else None

    async def _attempt_connected(
        self,
        fault: FaultKind | None,
        frame: bytes,
        payloads: list[bytes],
    ) -> bool:
        cfg = self.config
        address = self._resolve_address()
        if address is None:
            # No live aggregator to route to; indistinguishable from
            # a dead listener on the host side.
            self.stats.conn_refused += 1
            return False
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address),
                timeout=cfg.connect_timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.stats.conn_refused += 1
            return False
        transport = writer.transport
        transport.set_write_buffer_limits(
            high=cfg.write_buffer_bytes
        )
        try:
            if fault is FaultKind.CONN_RESET:
                # Write a prefix, then abort (RST): the receiver's
                # stream dies mid-frame with no clean EOF.
                writer.write(frame[: max(1, len(frame) // 3)])
                with _suppress_conn_errors():
                    await writer.drain()
                transport.abort()
                self.stats.conn_resets += 1
                return False
            if fault is FaultKind.SLOW_PEER:
                # Send a sliver, then stall past the aggregator's
                # idle deadline; it hangs up on us.
                writer.write(frame[:8])
                with _suppress_conn_errors():
                    await writer.drain()
                with _suppress_conn_errors():
                    await asyncio.wait_for(
                        reader.read(1),
                        timeout=max(
                            cfg.idle_timeout * 4, cfg.idle_timeout + 0.2
                        ),
                    )
                self.stats.slow_peers += 1
                return False

            for payload in payloads:
                if (
                    transport.get_write_buffer_size()
                    >= cfg.write_buffer_bytes
                ):
                    self.stats.backpressure_waits += 1
                writer.write(payload)
                await asyncio.wait_for(
                    writer.drain(), timeout=cfg.ack_timeout
                )
            if fault in (FaultKind.TRUNCATE, FaultKind.PARTIAL_WRITE):
                # The receiver is left waiting for bytes that will
                # never come; close cleanly and classify the loss.
                if transport.can_write_eof():
                    writer.write_eof()
                if fault is FaultKind.TRUNCATE:
                    self.stats.corrupt_frames += 1
                else:
                    self.stats.partial_writes += 1
                return False

            ok = True
            for _ in payloads:
                ack = await asyncio.wait_for(
                    reader.readexactly(1), timeout=cfg.ack_timeout
                )
                ok = ok and ack in _SUCCESS_ACKS
                if ack in _SUCCESS_ACKS:
                    self.last_ack = ack
            return ok
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ):
            self.stats.conn_resets += 1
            return False
        finally:
            with _suppress_conn_errors():
                writer.close()


class _null_context:
    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        return False


class _suppress_conn_errors:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(
            exc_type,
            (ConnectionError, OSError, asyncio.TimeoutError),
        )
