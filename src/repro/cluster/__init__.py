"""Real-socket control plane: hosts → aggregators → controller.

The in-process pipeline hands each epoch's reports straight to the
controller; this package ships them over actual TCP connections
instead — same v2 wire frames, same defensive decode, same collection
stats — and inserts a hierarchical aggregator tier that merges the
(linear) sketches pairwise on arrival, so 500–1000 simulated hosts
complete an epoch in bounded controller memory with a single LENS
recovery at the root.

Opt in per run with ``repro run --cluster`` or per process with
``REPRO_CLUSTER=1``; see ``docs/robustness.md`` ("Cluster transport").
"""

from repro.cluster.aggregator import (
    Aggregator,
    PartialAggregate,
    assign_aggregator,
    rendezvous_aggregator,
    rendezvous_weight,
)
from repro.cluster.config import ClusterConfig, cluster_from_env
from repro.cluster.framing import DEFAULT_MAX_FRAME_BYTES, FrameAssembler
from repro.cluster.runner import ClusterCollector, FailoverRecord
from repro.cluster.transport import (
    ACK,
    ACK_DUP,
    NAK_CORRUPT,
    NAK_STALE,
    AggregatorListener,
    HostChannel,
)

__all__ = [
    "ACK",
    "ACK_DUP",
    "NAK_CORRUPT",
    "NAK_STALE",
    "Aggregator",
    "AggregatorListener",
    "ClusterCollector",
    "ClusterConfig",
    "DEFAULT_MAX_FRAME_BYTES",
    "FailoverRecord",
    "FrameAssembler",
    "HostChannel",
    "PartialAggregate",
    "assign_aggregator",
    "cluster_from_env",
    "rendezvous_aggregator",
    "rendezvous_weight",
]
