"""Incremental frame extraction from a TCP byte stream.

The v2 wire format (``repro.controlplane.transport``) is already
length-prefixed — ``MAGIC | version | host | epoch | length | crc |
payload`` — so a socket receiver only needs to reassemble frames from
an arbitrarily chunked byte stream.  :class:`FrameAssembler` is the
sans-IO core of that: feed it whatever ``recv`` returned, get back
every *complete* frame, keep the partial tail buffered.  It validates
only what a stream parser must (magic, version, declared length) and
leaves payload validation (CRC, restricted unpickling, host
cross-check) to :func:`~repro.controlplane.transport.decode_report`,
so a corrupted length field can never make the receiver buffer
gigabytes or mis-split every subsequent frame: the connection is
declared poisoned and dropped.

Used by the aggregator servers in ``repro.cluster.transport`` and
directly by the socket-corruption property tests.
"""

from __future__ import annotations

import struct

from repro.common.errors import CorruptFrameError

_MAGIC = b"SKVR"
_PROBE = struct.Struct(">4sB")
_HEADER_V1 = struct.Struct(">4sBI")
_HEADER_V2 = struct.Struct(">4sBIIII")

#: Hard ceiling on a single frame's declared payload size.  A bit-flip
#: in the length field must not convince the receiver to wait for (or
#: allocate) an absurd buffer.
DEFAULT_MAX_FRAME_BYTES = 64 << 20


class FrameAssembler:
    """Reassemble v2 wire frames from a chunked byte stream.

    ``feed`` returns complete frames in arrival order and buffers any
    trailing partial frame for the next call.  Malformed stream state
    (bad magic, unknown version, oversized declared length) raises
    :class:`CorruptFrameError` — once a stream mis-frames there is no
    way to resynchronize, so the caller must drop the connection.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)

    @property
    def mid_frame(self) -> bool:
        """Whether the stream ended inside a frame (truncated tail)."""
        return bool(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            frame = self._pop_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _pop_frame(self) -> bytes | None:
        buffer = self._buffer
        if len(buffer) < _PROBE.size:
            return None
        magic, version = _PROBE.unpack_from(buffer, 0)
        if magic != _MAGIC:
            raise CorruptFrameError(
                f"stream desynchronized: bad frame magic {magic!r}"
            )
        if version == 1:
            header_size = _HEADER_V1.size
            if len(buffer) < header_size:
                return None
            _, _, length = _HEADER_V1.unpack_from(buffer, 0)
        elif version == 2:
            header_size = _HEADER_V2.size
            if len(buffer) < header_size:
                return None
            _, _, _, _, length, _ = _HEADER_V2.unpack_from(buffer, 0)
        else:
            raise CorruptFrameError(
                f"stream carries unsupported frame version {version}"
            )
        if length > self.max_frame_bytes:
            raise CorruptFrameError(
                f"frame declares {length} payload bytes, above the "
                f"{self.max_frame_bytes}-byte stream ceiling "
                "(corrupt length field?)"
            )
        total = header_size + length
        if len(buffer) < total:
            return None
        frame = bytes(buffer[:total])
        del buffer[:total]
        return frame
