"""One cluster epoch, end to end: listeners up, hosts in, partials out.

:class:`ClusterCollector` is the socket-transport drop-in for the
in-process :class:`~repro.controlplane.transport.ReportCollector`: it
takes the epoch's per-host :class:`LocalReport` objects, ships each as
a v2 wire frame over a real TCP connection to its aggregator, and
returns the same :class:`CollectionResult` shape the pipeline already
feeds to quorum-gated aggregation, telemetry, and the flight recorder.

Per epoch it:

1. skips hosts the transport circuit breaker has **quarantined**
   (consecutive failed epochs — same
   :class:`~repro.durability.supervisor.CircuitBreaker` policy the
   supervisor applies to crash-looping data planes);
2. starts one :class:`AggregatorListener` per aggregator-tier member
   (``ceil(sqrt(hosts))`` by default) on an ephemeral localhost port;
3. runs every live host's :class:`HostChannel` delivery loop
   concurrently — bounded by the in-flight semaphore, retried on the
   seeded jittered backoff schedule, cut off by ``epoch_deadline``;
4. drains and closes the listeners, folds each aggregator's partial
   (hierarchical mode) or collects the decoded reports (flat mode),
   and books every host that did not get acked as missing.

Everything downstream — quorum, degraded-merge rescale, recorder —
is reused, not reimplemented: the result's ``hosts_reported`` lets
:meth:`Controller.aggregate` key its quorum math on hosts even when
``reports`` holds A partial aggregates instead of N raw reports.
"""

from __future__ import annotations

import asyncio

from repro.cluster.aggregator import Aggregator, assign_aggregator
from repro.cluster.config import ClusterConfig
from repro.cluster.transport import AggregatorListener, HostChannel
from repro.controlplane.transport import (
    CollectionResult,
    encode_report,
)
from repro.durability.supervisor import CircuitBreaker


class ClusterCollector:
    """Collect epoch reports over real sockets.

    Parameters
    ----------
    config:
        The :class:`ClusterConfig` deployment knobs.
    injector:
        Optional :class:`~repro.faults.FaultInjector`.  Its plan's
        report-path *and* connection-level schedules both apply — the
        report-path kinds produce byte-identical stats to the
        in-process collector under the same plan, the socket kinds
        (conn_refused, conn_reset, partial_write, slow_peer,
        partition) only exist here.
    """

    def __init__(self, config: ClusterConfig, injector=None):
        self.config = config
        self.injector = injector
        self._breakers: dict[int, CircuitBreaker] = {}
        #: Shape of the most recent epoch, for telemetry: aggregator
        #: count, peak sketch-objects resident per aggregator, mode.
        self.last_aggregators = 0
        self.last_peak_resident = 0

    # ------------------------------------------------------------------
    def collect(self, reports, epoch: int) -> CollectionResult:
        """Deliver one epoch's reports over TCP; block until done."""
        return asyncio.run(self.collect_async(reports, epoch))

    # ------------------------------------------------------------------
    async def collect_async(self, reports, epoch: int) -> CollectionResult:
        cfg = self.config
        result = CollectionResult(epoch=epoch)
        stats = result.stats

        by_host = {report.host_id: report for report in reports}
        quarantined: list[int] = []
        active: list[int] = []
        for host_id in sorted(by_host):
            breaker = self._breakers.setdefault(
                host_id, CircuitBreaker()
            )
            if breaker.is_open(epoch):
                quarantined.append(host_id)
            else:
                active.append(host_id)
        stats.quarantined_hosts = len(quarantined)

        num_aggregators = cfg.resolve_aggregators(len(by_host))
        self.last_aggregators = num_aggregators

        aggregators: list[Aggregator] = []
        collected: list = []
        sinks: list = []
        if cfg.hierarchical:
            for agg_id in range(num_aggregators):
                aggregator = Aggregator(agg_id)
                aggregators.append(aggregator)
                sinks.append(aggregator.add)
        else:
            # Flat baseline: every decoded report stays resident until
            # the root merge, regardless of which listener took it.
            sinks = [collected.append] * num_aggregators

        seen: set[tuple[int, int]] = set()
        delivered: set[int] = set()
        listeners = [
            AggregatorListener(
                agg_id,
                epoch,
                sinks[agg_id],
                stats,
                seen,
                delivered,
                idle_timeout=cfg.idle_timeout,
                max_frame_bytes=cfg.max_frame_bytes,
            )
            for agg_id in range(num_aggregators)
        ]
        addresses = []
        for index, listener in enumerate(listeners):
            port = (
                0 if cfg.listen_port == 0 else cfg.listen_port + index
            )
            addresses.append(
                await listener.start(cfg.listen_host, port)
            )

        inflight = asyncio.Semaphore(cfg.max_inflight)
        injector = self.injector
        try:
            tasks = []
            for host_id in active:
                report = by_host[host_id]
                faults = []
                if injector is not None:
                    faults = list(injector.schedule(epoch, host_id))
                    faults += list(
                        injector.socket_schedule(epoch, host_id)
                    )
                agg_id = assign_aggregator(host_id, num_aggregators)
                channel = HostChannel(
                    host_id,
                    epoch,
                    # Late-bound encode: the frame exists only while
                    # this host holds an in-flight slot.
                    lambda r=report: encode_report(r, epoch),
                    addresses[agg_id],
                    cfg,
                    stats,
                    injector=injector,
                    faults=faults,
                    inflight=inflight,
                )
                tasks.append(
                    asyncio.ensure_future(channel.deliver())
                )
            frames = await self._gather_with_deadline(tasks)
            if injector is not None:
                for host_id, frame in zip(active, frames):
                    if frame is not None:
                        injector.remember(host_id, frame)
        finally:
            for listener in listeners:
                await listener.close(cfg.drain_timeout)

        # Every host not acked-and-decoded is missing: quarantined
        # hosts, exhausted retriers, and deadline stragglers alike.
        result.missing_hosts = [
            host_id
            for host_id in sorted(by_host)
            if host_id not in delivered
        ]
        for host_id in active:
            breaker = self._breakers[host_id]
            if host_id in delivered:
                breaker.record_success()
            else:
                breaker.record_failure(
                    epoch,
                    cfg.quarantine_threshold,
                    cfg.quarantine_epochs,
                )

        if cfg.hierarchical:
            partials = [
                partial
                for partial in (agg.finish() for agg in aggregators)
                if partial is not None
            ]
            result.reports = partials
            result.aggregated_from = len(delivered)
            self.last_peak_resident = max(
                (agg.peak_resident for agg in aggregators), default=0
            )
        else:
            result.reports = sorted(
                collected, key=lambda report: report.host_id
            )
            self.last_peak_resident = len(collected)
        return result

    # ------------------------------------------------------------------
    async def _gather_with_deadline(self, tasks):
        """Gather channel tasks under the epoch deadline; stragglers
        are cancelled and land in the missing set."""
        if not tasks:
            return []
        done, pending = await asyncio.wait(
            tasks, timeout=self.config.epoch_deadline
        )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        frames = []
        for task in tasks:
            if task.cancelled():
                frames.append(None)
            else:
                # Network failure modes are handled inside the
                # channel; anything escaping it is a real bug and
                # must surface, not masquerade as a missing host.
                frames.append(task.result())
        return frames
