"""One cluster epoch, end to end: listeners up, hosts in, partials out.

:class:`ClusterCollector` is the socket-transport drop-in for the
in-process :class:`~repro.controlplane.transport.ReportCollector`: it
takes the epoch's per-host :class:`LocalReport` objects, ships each as
a v2 wire frame over a real TCP connection to its aggregator, and
returns the same :class:`CollectionResult` shape the pipeline already
feeds to quorum-gated aggregation, telemetry, and the flight recorder.

Per epoch it:

1. skips hosts the transport circuit breaker has **quarantined**
   (consecutive failed epochs — same
   :class:`~repro.durability.supervisor.CircuitBreaker` policy the
   supervisor applies to crash-looping data planes);
2. starts one :class:`AggregatorListener` per aggregator-tier member
   (``ceil(sqrt(hosts))`` by default) on an ephemeral localhost port;
3. runs every live host's :class:`HostChannel` delivery loop
   concurrently — bounded by the in-flight semaphore, retried on the
   seeded jittered backoff schedule, cut off by ``epoch_deadline``;
4. drains and closes the listeners, folds each aggregator's partial
   (hierarchical mode) or collects the decoded reports (flat mode),
   and books every host that did not get acked as missing.

Everything downstream — quorum, degraded-merge rescale, recorder —
is reused, not reimplemented: the result's ``hosts_reported`` lets
:meth:`Controller.aggregate` key its quorum math on hosts even when
``reports`` holds A partial aggregates instead of N raw reports.

Aggregator fail-over
--------------------
The aggregator tier itself can fail mid-epoch (``agg_crash`` /
``agg_hang`` faults, or a genuinely wedged listener).  Liveness is
heartbeat-based: every listener beats into a shared table, and a
watchdog declares an aggregator dead once its beats go stale —
crashes and hangs are detected identically, because a dead process
cannot send an error report.  Fail-over then proceeds in three steps:

* **re-shard** — the dead aggregator leaves the rendezvous candidate
  set, so only *its* hosts re-home (modulo placement would reshuffle
  nearly everyone); channels still retrying re-resolve their route on
  every attempt and land on the survivor automatically;
* **forget** — the dead shard's partial aggregate died with it, so
  the hosts it had ACKed are erased from the ``(host, epoch)`` dedup
  set and the delivered set: their redelivered copies must merge as
  first arrivals, not be dropped as duplicates;
* **redeliver** — after the main wave, a sweep re-ships every
  still-undelivered live host's report to the surviving tier (the
  sweep loops, because a redelivery wave can strike *another*
  scheduled aggregator fault).

Because partials are canonicalized and sketches are linear, an epoch
where a crashed aggregator's hosts all redelivered merges
bit-identically to the no-crash epoch.  Hosts that stay unrecovered
(no survivors, suppressed fail-over, epoch deadline) flow into the
existing quorum-gated degraded merge — a lost shard degrades the
epoch, it never silently loses it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.cluster.aggregator import (
    Aggregator,
    assign_aggregator,
    rendezvous_aggregator,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.transport import (
    ACK_DUP,
    AggregatorListener,
    HostChannel,
    _EPOCH_FATAL,
)
from repro.controlplane.transport import (
    CollectionResult,
    encode_report,
)
from repro.durability.supervisor import CircuitBreaker


@dataclass
class FailoverRecord:
    """One aggregator the heartbeat watchdog declared dead.

    ``shard_hosts`` is the shard at detection time: hosts the dead
    aggregator had ACKed (their merged state died with it) plus live
    hosts still routed to it.  After the redelivery sweep settles,
    ``redelivered_hosts`` / ``unrecovered_hosts`` split that shard by
    outcome — unrecovered hosts are exactly the ones handed to the
    degraded merge.
    """

    aggregator_id: int
    #: ``"agg_crash"`` / ``"agg_hang"``, or ``"unresponsive"`` when
    #: the watchdog fired without a scheduled fault (a false positive
    #: — safe by design, the shard is simply re-shipped).
    kind: str
    shard_hosts: tuple[int, ...]
    #: Strike → watchdog declaration latency (seconds).
    detect_seconds: float
    redelivered_hosts: tuple[int, ...] = ()
    unrecovered_hosts: tuple[int, ...] = ()
    #: Strike → last shard report re-accepted by a survivor (seconds);
    #: ``None`` when nothing was recovered.
    recovery_seconds: float | None = None

    @property
    def recovered(self) -> bool:
        return not self.unrecovered_hosts


class _Router:
    """Rendezvous routing over the live aggregator set.

    One instance per epoch; the watchdog shrinks :attr:`live` as
    aggregators die, and every :meth:`resolve` call sees the current
    set — which is the whole fail-over re-route mechanism.
    """

    def __init__(self, addresses: list[tuple[str, int]]):
        self.addresses = addresses
        self.live: set[int] = set(range(len(addresses)))

    def remove(self, aggregator_id: int) -> None:
        self.live.discard(aggregator_id)

    def target(self, host_id: int) -> int | None:
        return rendezvous_aggregator(host_id, self.live)

    def resolve(self, host_id: int) -> tuple[str, int] | None:
        target = self.target(host_id)
        return None if target is None else self.addresses[target]


class ClusterCollector:
    """Collect epoch reports over real sockets.

    Parameters
    ----------
    config:
        The :class:`ClusterConfig` deployment knobs.
    injector:
        Optional :class:`~repro.faults.FaultInjector`.  Its plan's
        report-path *and* connection-level schedules both apply — the
        report-path kinds produce byte-identical stats to the
        in-process collector under the same plan, the socket kinds
        (conn_refused, conn_reset, partial_write, slow_peer,
        partition) only exist here — and its aggregator schedule
        arms the heartbeat watchdog with per-``(epoch, aggregator)``
        crash/hang strikes.
    """

    def __init__(self, config: ClusterConfig, injector=None):
        self.config = config
        self.injector = injector
        self._breakers: dict[int, CircuitBreaker] = {}
        #: Shape of the most recent epoch, for telemetry: aggregator
        #: count, peak sketch-objects resident per aggregator, mode.
        self.last_aggregators = 0
        self.last_peak_resident = 0

    # ------------------------------------------------------------------
    def collect(self, reports, epoch: int) -> CollectionResult:
        """Deliver one epoch's reports over TCP; block until done."""
        return asyncio.run(self.collect_async(reports, epoch))

    # ------------------------------------------------------------------
    async def collect_async(self, reports, epoch: int) -> CollectionResult:
        cfg = self.config
        loop = asyncio.get_running_loop()
        deadline = loop.time() + cfg.epoch_deadline
        result = CollectionResult(epoch=epoch)
        stats = result.stats

        by_host = {report.host_id: report for report in reports}
        quarantined: list[int] = []
        active: list[int] = []
        for host_id in sorted(by_host):
            breaker = self._breakers.setdefault(
                host_id, CircuitBreaker()
            )
            if breaker.is_open(epoch):
                quarantined.append(host_id)
            else:
                active.append(host_id)
        stats.quarantined_hosts = len(quarantined)

        num_aggregators = cfg.resolve_aggregators(len(by_host))
        self.last_aggregators = num_aggregators

        aggregators: list[Aggregator] = []
        buckets: list[list] = []
        sinks: list = []
        if cfg.hierarchical:
            for agg_id in range(num_aggregators):
                aggregator = Aggregator(agg_id)
                aggregators.append(aggregator)
                sinks.append(aggregator.add)
        else:
            # Flat baseline: every decoded report stays resident until
            # the root merge — but bucketed per listener, so a dead
            # aggregator's resident reports can be discarded exactly
            # like a dead partial.
            for agg_id in range(num_aggregators):
                bucket: list = []
                buckets.append(bucket)
                sinks.append(bucket.append)

        injector = self.injector
        # Seeded aggregator strikes for this epoch.  Group size (how
        # many live hosts rendezvous onto each aggregator) bounds the
        # rate-fired strike offsets; the earliest scheduled fault wins.
        agg_faults = {}
        if injector is not None:
            group_sizes = {agg_id: 0 for agg_id in range(num_aggregators)}
            for host_id in active:
                group_sizes[
                    assign_aggregator(host_id, num_aggregators)
                ] += 1
            for agg_id in range(num_aggregators):
                schedule = injector.aggregator_schedule(
                    epoch, agg_id, group_sizes[agg_id]
                )
                if schedule:
                    agg_faults[agg_id] = schedule[0]

        seen: set[tuple[int, int]] = set()
        delivered: set[int] = set()
        accept_times: dict[int, float] = {}

        def on_accept(host_id: int, frame: bytes) -> None:
            accept_times[host_id] = loop.time()

        listeners = [
            AggregatorListener(
                agg_id,
                epoch,
                sinks[agg_id],
                stats,
                seen,
                delivered,
                idle_timeout=cfg.idle_timeout,
                max_frame_bytes=cfg.max_frame_bytes,
                on_accept=on_accept,
                fault=agg_faults.get(agg_id),
                injector=injector,
            )
            for agg_id in range(num_aggregators)
        ]
        addresses = []
        for index, listener in enumerate(listeners):
            port = (
                0 if cfg.listen_port == 0 else cfg.listen_port + index
            )
            addresses.append(
                await listener.start(cfg.listen_host, port)
            )
        router = _Router(addresses)

        # Liveness: every listener beats into this table; the watchdog
        # (armed only when the plan can actually strike an aggregator,
        # so chaos-free runs cannot flake on a loaded event loop)
        # declares death on staleness.
        last_beat: dict[int, float] = {}

        def beat(agg_id: int) -> None:
            last_beat[agg_id] = loop.time()

        for listener in listeners:
            listener.start_heartbeat(beat, cfg.heartbeat_interval)

        failed: set[int] = set()
        struck_times: dict[int, float] = {}
        failover_records: list[FailoverRecord] = []

        # Hosts down for the whole epoch (crash/partition faults burn
        # their budget before any socket): redelivery cannot help them.
        fatal_hosts: set[int] = set()
        host_faults: dict[int, list] = {}
        for host_id in active:
            faults: list = []
            if injector is not None:
                faults = list(injector.schedule(epoch, host_id))
                faults += list(injector.socket_schedule(epoch, host_id))
            host_faults[host_id] = faults
            if any(fault in _EPOCH_FATAL for fault in faults):
                fatal_hosts.add(host_id)

        async def fail_over(agg_id: int) -> None:
            listener = listeners[agg_id]
            now = loop.time()
            # The shard at detection: lost (ACKed state died with the
            # aggregator) plus live hosts still routed to it.
            lost = list(listener.accepted)
            stranded = [
                host_id
                for host_id in active
                if host_id not in delivered
                and host_id not in fatal_hosts
                and router.target(host_id) == agg_id
            ]
            router.remove(agg_id)
            failed.add(agg_id)
            # Forget the dead shard's attendance: its merged partial
            # is gone, so redelivered copies must count as first
            # arrivals, not duplicates.
            for host_id in lost:
                seen.discard((host_id, epoch))
                delivered.discard(host_id)
                accept_times.pop(host_id, None)
            if not cfg.hierarchical:
                buckets[agg_id].clear()
            await listener.close(0)
            struck_at = (
                listener.struck_at
                if listener.struck_at is not None
                else now
            )
            struck_times[agg_id] = struck_at
            stats.failovers += 1
            failover_records.append(
                FailoverRecord(
                    aggregator_id=agg_id,
                    kind=(
                        listener.struck.value
                        if listener.struck is not None
                        else "unresponsive"
                    ),
                    shard_hosts=tuple(sorted(set(lost) | set(stranded))),
                    detect_seconds=max(0.0, now - struck_at),
                )
            )

        async def watchdog_loop() -> None:
            while True:
                await asyncio.sleep(cfg.heartbeat_interval)
                now = loop.time()
                for agg_id in sorted(router.live):
                    if (
                        now - last_beat[agg_id]
                        >= cfg.aggregator_watchdog
                    ):
                        await fail_over(agg_id)

        watchdog: asyncio.Task | None = None
        if agg_faults:
            watchdog = asyncio.ensure_future(watchdog_loop())

        inflight = asyncio.Semaphore(cfg.max_inflight)

        async def redeliver(host_id: int):
            report = by_host[host_id]
            channel = HostChannel(
                host_id,
                epoch,
                lambda r=report: encode_report(r, epoch),
                lambda h=host_id: router.resolve(h),
                cfg,
                stats,
                injector=injector,
                # A fresh retry budget, no injected faults: redelivery
                # models the host's fail-over logic, not new chaos —
                # though the surviving *aggregators'* own scheduled
                # strikes still apply on arrival.
                faults=[],
                inflight=inflight,
            )
            frame = await channel.deliver()
            if frame is not None:
                stats.redeliveries += 1
                if channel.last_ack == ACK_DUP:
                    stats.redelivery_dups += 1
            return frame

        def remaining() -> float:
            return deadline - loop.time()

        async def settle() -> None:
            """Converge after the main wave: wait out watchdog
            detection of any silent aggregator, then sweep
            still-undelivered hosts onto the survivors — looping,
            because a redelivery wave can strike the next scheduled
            aggregator fault."""
            # Grace so a strike on the wave's very last frame has
            # stale heartbeats by the first staleness check.
            await asyncio.sleep(2 * cfg.heartbeat_interval)
            swept_generation = 0
            while remaining() > 0:
                now = loop.time()
                if any(
                    now - last_beat[agg_id]
                    >= 2 * cfg.heartbeat_interval
                    for agg_id in router.live
                ):
                    # Beats have gone quiet but the watchdog has not
                    # ruled yet; let it.
                    await asyncio.sleep(cfg.heartbeat_interval / 2)
                    continue
                if not failover_records or not cfg.failover:
                    break
                if len(failover_records) == swept_generation:
                    # No new failover since the last sweep: stable.
                    break
                if not router.live:
                    break
                undelivered = [
                    host_id
                    for host_id in active
                    if host_id not in delivered
                    and host_id not in fatal_hosts
                ]
                if not undelivered:
                    break
                swept_generation = len(failover_records)
                sweep = [
                    asyncio.ensure_future(redeliver(host_id))
                    for host_id in undelivered
                ]
                frames = await self._gather_with_deadline(
                    sweep, timeout=max(0.0, remaining())
                )
                if injector is not None:
                    for host_id, frame in zip(undelivered, frames):
                        if frame is not None:
                            injector.remember(host_id, frame)

        try:
            tasks = []
            for host_id in active:
                report = by_host[host_id]
                channel = HostChannel(
                    host_id,
                    epoch,
                    # Late-bound encode: the frame exists only while
                    # this host holds an in-flight slot.
                    lambda r=report: encode_report(r, epoch),
                    # Late-bound route: each attempt re-resolves over
                    # the live aggregator set.
                    lambda h=host_id: router.resolve(h),
                    cfg,
                    stats,
                    injector=injector,
                    faults=host_faults[host_id],
                    inflight=inflight,
                )
                tasks.append(
                    asyncio.ensure_future(channel.deliver())
                )
            frames = await self._gather_with_deadline(tasks)
            if injector is not None:
                for host_id, frame in zip(active, frames):
                    if frame is not None:
                        injector.remember(host_id, frame)
            if watchdog is not None:
                await settle()
        finally:
            if watchdog is not None:
                watchdog.cancel()
                try:
                    await watchdog
                except asyncio.CancelledError:
                    pass
            for listener in listeners:
                await listener.close(cfg.drain_timeout)

        # Outcome bookkeeping per failover: which of the dead shard's
        # hosts a survivor re-accepted, and how long recovery took.
        for record in failover_records:
            struck_at = struck_times[record.aggregator_id]
            recovered = tuple(
                host_id
                for host_id in record.shard_hosts
                if host_id in delivered
            )
            record.redelivered_hosts = recovered
            record.unrecovered_hosts = tuple(
                host_id
                for host_id in record.shard_hosts
                if host_id not in delivered
            )
            if recovered:
                record.recovery_seconds = max(
                    0.0,
                    max(
                        accept_times.get(host_id, struck_at)
                        for host_id in recovered
                    )
                    - struck_at,
                )
        result.failovers = failover_records

        # Every host not acked-and-decoded is missing: quarantined
        # hosts, exhausted retriers, and deadline stragglers alike.
        result.missing_hosts = [
            host_id
            for host_id in sorted(by_host)
            if host_id not in delivered
        ]
        for host_id in active:
            breaker = self._breakers[host_id]
            if host_id in delivered:
                breaker.record_success()
            else:
                breaker.record_failure(
                    epoch,
                    cfg.quarantine_threshold,
                    cfg.quarantine_epochs,
                )

        if cfg.hierarchical:
            partials = [
                partial
                for agg_id, aggregator in enumerate(aggregators)
                if agg_id not in failed
                for partial in (aggregator.finish(),)
                if partial is not None
            ]
            result.reports = partials
            result.aggregated_from = len(delivered)
            self.last_peak_resident = max(
                (agg.peak_resident for agg in aggregators), default=0
            )
        else:
            collected = [
                report for bucket in buckets for report in bucket
            ]
            result.reports = sorted(
                collected, key=lambda report: report.host_id
            )
            self.last_peak_resident = len(collected)
        return result

    # ------------------------------------------------------------------
    async def _gather_with_deadline(self, tasks, timeout=None):
        """Gather channel tasks under the epoch deadline; stragglers
        are cancelled and land in the missing set."""
        if not tasks:
            return []
        done, pending = await asyncio.wait(
            tasks,
            timeout=(
                self.config.epoch_deadline if timeout is None else timeout
            ),
        )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        frames = []
        for task in tasks:
            if task.cancelled():
                frames.append(None)
            else:
                # Network failure modes are handled inside the
                # channel; anything escaping it is a real bug and
                # must surface, not masquerade as a missing host.
                frames.append(task.result())
        return frames
