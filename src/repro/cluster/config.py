"""Deployment knobs for the real-socket control plane."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.cluster.framing import DEFAULT_MAX_FRAME_BYTES


@dataclass
class ClusterConfig:
    """How one cluster epoch moves reports from hosts to controller.

    Parameters
    ----------
    aggregators:
        Size of the aggregator tier.  ``0`` (default) auto-sizes to
        ``ceil(sqrt(num_hosts))`` — the fan-in that balances per-
        aggregator connection load against root merge width.
    hierarchical:
        ``True`` (default): each aggregator folds its group's reports
        into one partial as they arrive (bounded memory); ``False``:
        the flat baseline — every decoded report stays resident until
        the root merge, the in-process controller's exact shape.
    listen_host, listen_port:
        Bind address for the aggregator listeners.  Port ``0`` (the
        default) lets the OS pick an ephemeral port per aggregator;
        a fixed port is used for the first aggregator and incremented
        for the rest.
    max_retries:
        Delivery attempts beyond each host's first.
    backoff_base, backoff_factor, backoff_jitter, jitter_seed:
        Exponential-backoff schedule between attempts, with the same
        seeded decorrelating jitter as the in-process collector
        (thundering-herd protection; see
        :meth:`~repro.controlplane.transport.ReportCollector.backoff_for`).
    connect_timeout, ack_timeout:
        Client-side deadlines: TCP establishment, and waiting for the
        aggregator's ack after a frame is written.
    idle_timeout:
        Server-side per-connection read deadline — how long an
        aggregator tolerates a stalled peer mid-frame before hanging
        up (what a ``slow_peer`` fault runs into).
    epoch_deadline:
        Whole-epoch collection budget; hosts still undelivered when it
        expires are marked missing (degraded merge input).
    drain_timeout:
        Grace period for in-flight connections when shutting the
        listeners down.
    max_inflight:
        Bound on concurrently connected hosts — the transport's send
        queue.  Hosts beyond it wait for a slot (counted as
        backpressure) so a 1000-host epoch never holds 1000 open
        sockets or encoded frames at once.
    write_buffer_bytes:
        Per-connection socket write-buffer high-watermark; writes past
        it block in ``drain()`` (kernel backpressure, also counted).
    max_frame_bytes:
        Stream-level ceiling on a declared frame length.
    quarantine_threshold, quarantine_epochs:
        Transport circuit breaker: hosts whose report fails this many
        consecutive epochs sit out the next ``quarantine_epochs``
        epochs entirely (no connection churn, straight to the
        degraded merge) — the same policy the durability supervisor
        applies to crash-looping data planes.
    failover:
        ``True`` (default): when an aggregator's heartbeats go stale
        the runner declares it dead, re-shards its hosts onto
        survivors via rendezvous hashing, and redelivers the lost
        reports.  ``False``: a dead shard's hosts go missing and the
        epoch resolves through the quorum-gated degraded merge —
        the pre-failover behaviour, kept for directed tests.
    heartbeat_interval:
        How often each live aggregator beats into the controller's
        liveness table.
    aggregator_watchdog:
        Heartbeat staleness at which an aggregator is declared dead.
        Must be at least twice the heartbeat interval; a false
        positive (a live aggregator declared dead under load) is
        safe — its shard is re-shipped to survivors and the dedup
        set makes the merge count every host exactly once.
    """

    aggregators: int = 0
    hierarchical: bool = True
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    max_retries: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    jitter_seed: int = 0
    connect_timeout: float = 2.0
    ack_timeout: float = 5.0
    idle_timeout: float = 0.25
    epoch_deadline: float = 30.0
    drain_timeout: float = 2.0
    max_inflight: int = 64
    write_buffer_bytes: int = 1 << 16
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    quarantine_threshold: int = 3
    quarantine_epochs: int = 2
    failover: bool = True
    heartbeat_interval: float = 0.05
    aggregator_watchdog: float = 0.4

    def __post_init__(self) -> None:
        if self.aggregators < 0:
            raise ConfigError("aggregators must be >= 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigError(
                f"backoff_jitter must be in [0, 1), "
                f"got {self.backoff_jitter}"
            )
        for name in (
            "connect_timeout",
            "ack_timeout",
            "idle_timeout",
            "epoch_deadline",
            "drain_timeout",
            "heartbeat_interval",
            "aggregator_watchdog",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.aggregator_watchdog < 2 * self.heartbeat_interval:
            raise ConfigError(
                "aggregator_watchdog must be >= 2x heartbeat_interval "
                "(one missed beat is jitter, not death)"
            )

    def resolve_aggregators(self, num_hosts: int) -> int:
        """The actual tier size for ``num_hosts`` hosts."""
        if self.aggregators:
            return min(self.aggregators, max(1, num_hosts))
        return max(1, math.ceil(math.sqrt(max(1, num_hosts))))


def cluster_from_env() -> ClusterConfig | None:
    """A default :class:`ClusterConfig` when ``REPRO_CLUSTER`` is set.

    ``REPRO_CLUSTER=1`` (or any non-empty value except ``0``) routes
    every pipeline epoch's reports over real localhost sockets with
    the auto-sized hierarchical aggregator tier; a numeric value other
    than ``1`` fixes the aggregator count instead.  Returns ``None``
    otherwise — cluster transport stays strictly opt-in (mirrors
    ``REPRO_CHAOS``).
    """
    flag = os.environ.get("REPRO_CLUSTER", "")
    if not flag or flag == "0":
        return None
    try:
        value = int(flag)
    except ValueError:
        value = 1
    return ClusterConfig(aggregators=0 if value == 1 else value)
