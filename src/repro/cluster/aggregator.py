"""The hierarchical aggregator tier: pairwise merge before recovery.

Sketches are *linear* — counter matrices that merge by addition — so
per-host reports need not all reach the controller before merging can
start.  Each :class:`Aggregator` owns a group of hosts and folds their
reports into one running partial the moment they arrive (eager
pairwise merge), holding at most the accumulator plus the report in
flight.  The controller then merges the A partial aggregates and runs
LENS recovery *once*, exactly as it would over raw reports.

This is what makes a 500–1000-host epoch complete in bounded memory:
the flat path keeps all N decoded reports resident until the merge
(O(N) sketches), the hierarchical path keeps O(A + 1) — the "recovery-
aware hierarchical merging" shape of Distributed Recoverable Sketches
(see PAPERS.md), with SketchVisor's single network-wide recovery at
the root.

Merging is exact: sketch counters and fast-path ``(e, r, d)`` entries
are integer-valued, so pairwise-then-root addition is bit-identical to
the flat all-at-once merge regardless of arrival order.  Fast-path
entries are canonicalized (sorted by flow key) in :meth:`finish` so a
partial's downstream iteration order is independent of socket timing.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.controlplane.merge import merge_fastpath_snapshots
from repro.dataplane.host import LocalReport
from repro.fastpath.topk import FastPathSnapshot
from repro.sketches.base import Sketch


@dataclass
class PartialAggregate:
    """One aggregator group's merged epoch state.

    Duck-compatible with :class:`~repro.dataplane.host.LocalReport`
    where the controller cares (``sketch`` / ``fastpath``), so the
    root merge treats partials exactly like reports; ``host_ids``
    carries the provenance the flat path would have had one report per
    entry for.
    """

    aggregator_id: int
    sketch: Sketch
    fastpath: FastPathSnapshot | None
    host_ids: tuple[int, ...]

    @property
    def host_id(self) -> int:
        """Aggregator id, in the report slot (labels, debugging)."""
        return self.aggregator_id

    @property
    def num_hosts(self) -> int:
        return len(self.host_ids)


class Aggregator:
    """Eagerly merge one group's reports into a single partial."""

    def __init__(self, aggregator_id: int):
        self.aggregator_id = aggregator_id
        self._sketch: Sketch | None = None
        self._fastpath: FastPathSnapshot | None = None
        self._any_fastpath = False
        self._host_ids: list[int] = []
        #: Most sketch-carrying objects resident at once (accumulator
        #: plus the in-flight report) — the bounded-memory invariant
        #: the cluster bench gates on.
        self.peak_resident = 0

    @property
    def num_hosts(self) -> int:
        return len(self._host_ids)

    def add(self, report: LocalReport) -> None:
        """Fold one host report into the running partial and drop it."""
        self.peak_resident = max(
            self.peak_resident, (1 if self._sketch is not None else 0) + 1
        )
        if self._sketch is None:
            self._sketch = report.sketch.clone_empty()
        self._sketch.merge(report.sketch)
        if report.fastpath is not None:
            self._any_fastpath = True
            self._fastpath = merge_fastpath_snapshots(
                [self._fastpath, report.fastpath]
            )
        self._host_ids.append(report.host_id)

    def finish(self) -> PartialAggregate | None:
        """The group's partial, or ``None`` when no report arrived."""
        if self._sketch is None:
            return None
        fastpath = self._fastpath if self._any_fastpath else None
        if fastpath is not None and fastpath.entries:
            # Canonical entry order: socket arrival order must not
            # leak into downstream float-summation order.
            entries = dict(
                sorted(
                    fastpath.entries.items(),
                    key=lambda item: item[0].key64,
                )
            )
            fastpath = FastPathSnapshot(
                entries=entries,
                total_bytes=fastpath.total_bytes,
                total_decremented=fastpath.total_decremented,
                insert_count=fastpath.insert_count,
                evict_count=fastpath.evict_count,
                update_count=fastpath.update_count,
                hit_count=fastpath.hit_count,
                kickout_count=fastpath.kickout_count,
                reject_count=fastpath.reject_count,
            )
        return PartialAggregate(
            aggregator_id=self.aggregator_id,
            sketch=self._sketch,
            fastpath=fastpath,
            host_ids=tuple(sorted(self._host_ids)),
        )


_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def _mix64(value: int) -> int:
    """64-bit finalizer (murmur3's) — full avalanche, so per-pair
    weights behave like independent uniform draws."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xFF51_AFD7_ED55_8CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CE_B9FE_1A85_EC53) & _MASK64
    value ^= value >> 33
    return value


def rendezvous_weight(host_id: int, aggregator_id: int) -> int:
    """The seeded 64-bit weight of placing ``host_id`` on
    ``aggregator_id`` — a pure function of the pair."""
    return _mix64(
        ((host_id & 0xFFFF_FFFF) << 32) | (aggregator_id & 0xFFFF_FFFF)
    )


def rendezvous_aggregator(
    host_id: int, candidates: Iterable[int]
) -> int | None:
    """Highest-random-weight (rendezvous) choice among ``candidates``.

    The property fail-over rests on: removing an aggregator from the
    candidate set only re-homes the hosts that were *on* it — every
    other host keeps its placement, because each (host, aggregator)
    weight is independent of the set.  Modulo placement has no such
    stability: shrinking the divisor reshuffles nearly everyone.

    Ties (already ~2^-64) break toward the lowest aggregator id.
    Returns ``None`` when no candidate survives.
    """
    best: int | None = None
    best_weight = -1
    for aggregator_id in sorted(candidates):
        weight = rendezvous_weight(host_id, aggregator_id)
        if weight > best_weight:
            best = aggregator_id
            best_weight = weight
    return best


def assign_aggregator(host_id: int, num_aggregators: int) -> int:
    """Deterministic host → aggregator placement over a full tier of
    ``num_aggregators`` (rendezvous hashing; degenerate tiers of zero
    or one aggregator always place on 0)."""
    if num_aggregators <= 1:
        return 0
    choice = rendezvous_aggregator(host_id, range(num_aggregators))
    return 0 if choice is None else choice
