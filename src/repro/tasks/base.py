"""Task interface shared by all measurement tasks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.sketches.base import Sketch
from repro.traffic.groundtruth import GroundTruth


@dataclass
class TaskScore:
    """Accuracy metrics of one task run (§7.1).

    Detection tasks fill recall/precision/relative error; estimation
    tasks fill only relative error (or MRD for distributions).  Unused
    metrics stay ``None``.
    """

    recall: float | None = None
    precision: float | None = None
    relative_error: float | None = None
    mrd: float | None = None
    extra: dict = field(default_factory=dict)


class MeasurementTask(ABC):
    """One network measurement task bound to a sketch-based solution.

    Parameters
    ----------
    solution:
        Name of the sketch-based solution (see :attr:`solutions`).
    """

    #: Task identifier used in reports.
    name: str = "task"
    #: Solution names accepted by this task (Table 1).
    solutions: tuple[str, ...] = ()

    def __init__(self, solution: str):
        if solution not in self.solutions:
            raise ConfigError(
                f"{type(self).__name__} supports {self.solutions}, "
                f"got {solution!r}"
            )
        self.solution = solution

    @abstractmethod
    def create_sketch(self, seed: int = 1) -> Sketch:
        """Build this task's sketch (same seed across all hosts)."""

    @abstractmethod
    def answer(self, sketch: Sketch):
        """Extract the task answer from a (recovered) sketch."""

    @abstractmethod
    def score(self, answer, truth: GroundTruth) -> TaskScore:
        """Score an answer against exact ground truth."""
