"""Cardinality estimation: the number of distinct flows in an epoch.

Solutions: FM [20], kMin [2], Linear Counting [55] (Table 1).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.metrics import scalar_relative_error
from repro.sketches.base import Sketch
from repro.sketches.cardinality import (
    FMSketch,
    HyperLogLog,
    KMinSketch,
    LinearCounting,
)
from repro.tasks.base import MeasurementTask, TaskScore
from repro.traffic.groundtruth import GroundTruth

DEFAULT_PARAMS = {
    "fm": {"num_registers": 1024, "depth": 4},
    "kmin": {"k": 1024, "depth": 4},
    "lc": {"width": 10_000, "depth": 4},
    "hll": {"num_registers": 1024, "depth": 2},
}

PAPER_PARAMS = {
    "fm": {"num_registers": 65_536, "depth": 4},
    "kmin": {"k": 65_536, "depth": 4},
    "lc": {"width": 10_000, "depth": 4},
    "hll": {"num_registers": 1024, "depth": 2},
}

_CLASSES = {
    "fm": FMSketch,
    "kmin": KMinSketch,
    "lc": LinearCounting,
    "hll": HyperLogLog,
}


class CardinalityTask(MeasurementTask):
    """Estimate the number of distinct 5-tuple flows.

    ``fm`` / ``kmin`` / ``lc`` are the paper's Table 1 solutions;
    ``hll`` is this repo's extension (not in the Table 1 registry).
    """

    name = "cardinality"
    solutions = ("fm", "kmin", "lc", "hll")

    def __init__(
        self,
        solution: str,
        sketch_params: dict | None = None,
        paper_params: bool = False,
    ):
        super().__init__(solution)
        params = sketch_params
        if params is None:
            params = (PAPER_PARAMS if paper_params else DEFAULT_PARAMS)[
                solution
            ]
        self.sketch_params = params

    def create_sketch(self, seed: int = 1) -> Sketch:
        return _CLASSES[self.solution](seed=seed, **self.sketch_params)

    def answer(self, sketch: Sketch) -> float:
        if isinstance(
            sketch,
            (FMSketch, KMinSketch, LinearCounting, HyperLogLog),
        ):
            return float(sketch.estimate())
        raise ConfigError(f"unsupported sketch {type(sketch).__name__}")

    def score(self, answer: float, truth: GroundTruth) -> TaskScore:
        return TaskScore(
            relative_error=scalar_relative_error(
                answer, truth.cardinality
            ),
            extra={"estimate": answer, "true": truth.cardinality},
        )
