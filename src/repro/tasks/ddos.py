"""DDoS detection: destinations contacted by too many distinct sources.

Solution: TwoLevel [56] in volume form (§4.2).  The threshold is an
absolute distinct-source count (the paper uses 0.5% of the total number
of IP addresses).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.metrics import precision, recall, relative_error
from repro.sketches.base import Sketch
from repro.sketches.twolevel import TwoLevelSketch
from repro.tasks.base import MeasurementTask, TaskScore
from repro.traffic.groundtruth import GroundTruth

DEFAULT_PARAMS = {
    "outer_width": 2048,
    "outer_depth": 2,
    "inner_width": 128,
    "inner_depth": 2,
}


class DDoSTask(MeasurementTask):
    """Detect destination IPs with more than ``threshold`` sources."""

    name = "ddos"
    solutions = ("twolevel",)
    _mode = "ddos"

    def __init__(
        self,
        solution: str = "twolevel",
        threshold: float = 50,
        sketch_params: dict | None = None,
    ):
        super().__init__(solution)
        if threshold <= 0:
            raise ConfigError("threshold must be positive")
        self.threshold = float(threshold)
        self.sketch_params = dict(DEFAULT_PARAMS)
        if sketch_params:
            self.sketch_params.update(sketch_params)

    def create_sketch(self, seed: int = 1) -> Sketch:
        return TwoLevelSketch(
            mode=self._mode, seed=seed, **self.sketch_params
        )

    def answer(self, sketch: Sketch) -> dict[int, float]:
        """``{destination IP: estimated distinct sources}``."""
        if not isinstance(sketch, TwoLevelSketch):
            raise ConfigError(
                f"unsupported sketch {type(sketch).__name__}"
            )
        return sketch.detect(self.threshold)

    def _truth(self, truth: GroundTruth) -> dict[int, float]:
        return {
            dst: float(count)
            for dst, count in truth.ddos_victims(
                int(self.threshold)
            ).items()
        }

    def score(self, answer: dict, truth: GroundTruth) -> TaskScore:
        true_victims = self._truth(truth)
        return TaskScore(
            recall=recall(answer, true_victims),
            precision=precision(answer, true_victims),
            relative_error=relative_error(answer, true_victims),
            extra={"reported": len(answer), "true": len(true_victims)},
        )
