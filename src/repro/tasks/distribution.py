"""Flow size distribution: how many flows have each packet count.

Solutions: MRAC [26] (counter-array deconvolution) and FlowRadar [28]
(exact decode, in packet-counting mode).  Scored by MRD (§7.1).
"""

from __future__ import annotations

from collections import Counter

from repro.common.errors import ConfigError
from repro.metrics import mean_relative_difference
from repro.sketches.base import Sketch
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.tasks.base import MeasurementTask, TaskScore
from repro.traffic.groundtruth import GroundTruth

DEFAULT_PARAMS = {
    "mrac": {"width": 4000},
    "flowradar": {
        "bloom_bits": 60_000,
        "num_cells": 24_000,
        "count_packets": True,
    },
}


class FlowSizeDistributionTask(MeasurementTask):
    """Estimate ``{packet count: number of flows}`` for an epoch."""

    name = "flow_size_distribution"
    solutions = ("mrac", "flowradar")

    def __init__(self, solution: str, sketch_params: dict | None = None):
        super().__init__(solution)
        self.sketch_params = sketch_params or DEFAULT_PARAMS[solution]

    def create_sketch(self, seed: int = 1) -> Sketch:
        if self.solution == "mrac":
            return MRAC(seed=seed, **self.sketch_params)
        return FlowRadar(seed=seed, **self.sketch_params)

    def answer(self, sketch: Sketch) -> dict[int, float]:
        if isinstance(sketch, MRAC):
            return sketch.decode()
        if isinstance(sketch, FlowRadar):
            decoded, _complete = sketch.decode()
            histogram: Counter[int] = Counter()
            for packets in decoded.values():
                histogram[max(1, int(round(packets)))] += 1
            return dict(histogram)
        raise ConfigError(f"unsupported sketch {type(sketch).__name__}")

    def score(self, answer: dict, truth: GroundTruth) -> TaskScore:
        true_distribution = {
            size: float(count)
            for size, count in truth.flow_size_distribution().items()
        }
        return TaskScore(
            mrd=mean_relative_difference(answer, true_distribution),
            extra={
                "estimated_flows": sum(answer.values()),
                "true_flows": truth.cardinality,
            },
        )
