"""Measurement tasks (§2.1) and their sketch-based solutions (Table 1).

Each task knows how to (a) build its sketch for a given solution name,
(b) extract its answer from a (recovered) sketch, and (c) score that
answer against exact ground truth with the §7.1 metrics.

==================  =============================================
Task                Solutions
==================  =============================================
heavy hitter        flowradar, revsketch, univmon, deltoid
heavy changer       flowradar, revsketch, univmon, deltoid
DDoS                twolevel
superspreader       twolevel
cardinality         fm, kmin, lc
flow size dist.     flowradar, mrac
entropy             flowradar, univmon
==================  =============================================
"""

from repro.tasks.base import MeasurementTask, TaskScore
from repro.tasks.cardinality import CardinalityTask
from repro.tasks.ddos import DDoSTask
from repro.tasks.distribution import FlowSizeDistributionTask
from repro.tasks.entropy import EntropyTask
from repro.tasks.heavy_changer import HeavyChangerTask
from repro.tasks.heavy_hitter import HeavyHitterTask
from repro.tasks.superspreader import SuperspreaderTask

__all__ = [
    "CardinalityTask",
    "DDoSTask",
    "EntropyTask",
    "FlowSizeDistributionTask",
    "HeavyChangerTask",
    "HeavyHitterTask",
    "MeasurementTask",
    "SuperspreaderTask",
    "TaskScore",
]
