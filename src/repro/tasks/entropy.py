"""Entropy estimation: Shannon entropy of the flow size distribution.

Solutions: FlowRadar (decode flows, compute entropy exactly over the
decoded sizes) and UnivMon (universal ``g``-sum with
``g(v) = v log2 v``).
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError
from repro.metrics import scalar_relative_error
from repro.sketches.base import Sketch
from repro.sketches.flowradar import FlowRadar
from repro.sketches.univmon import UnivMon
from repro.tasks.base import MeasurementTask, TaskScore
from repro.traffic.groundtruth import GroundTruth

DEFAULT_PARAMS = {
    "flowradar": {"bloom_bits": 60_000, "num_cells": 24_000},
    "univmon": {
        "level_widths": (2048, 1024, 512, 256, 256, 256),
        "depth": 5,
        "heap_size": 500,
    },
}


class EntropyTask(MeasurementTask):
    """Estimate the entropy (bits) of the per-flow byte distribution."""

    name = "entropy"
    solutions = ("flowradar", "univmon")

    def __init__(self, solution: str, sketch_params: dict | None = None):
        super().__init__(solution)
        self.sketch_params = sketch_params or DEFAULT_PARAMS[solution]

    def create_sketch(self, seed: int = 1) -> Sketch:
        if self.solution == "flowradar":
            return FlowRadar(seed=seed, **self.sketch_params)
        return UnivMon(seed=seed, **self.sketch_params)

    def answer(self, sketch: Sketch) -> float:
        if isinstance(sketch, FlowRadar):
            decoded, _complete = sketch.decode()
            total = sum(decoded.values())
            if total <= 0:
                return 0.0
            entropy = 0.0
            for size in decoded.values():
                if size > 0:
                    p = size / total
                    entropy -= p * math.log2(p)
            return entropy
        if isinstance(sketch, UnivMon):
            # Total volume from the universal estimator with g(v) = v.
            total = sketch.g_sum(lambda value: value)
            return sketch.entropy(total)
        raise ConfigError(f"unsupported sketch {type(sketch).__name__}")

    def score(self, answer: float, truth: GroundTruth) -> TaskScore:
        return TaskScore(
            relative_error=scalar_relative_error(answer, truth.entropy),
            extra={"estimate": answer, "true": truth.entropy},
        )
