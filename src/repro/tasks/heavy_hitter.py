"""Heavy hitter detection: flows whose byte count exceeds a threshold.

Solutions: Deltoid, Reversible Sketch, FlowRadar, UnivMon (Table 1).
The Reversible Sketch operates on 32-bit flow fingerprints (see
:mod:`repro.sketches.revsketch`); ground truth is mapped through the
same fingerprint, so scoring compares like with like.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey
from repro.metrics import precision, recall, relative_error
from repro.sketches.base import Sketch
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.revsketch import ReversibleSketch, flow_fingerprint
from repro.sketches.univmon import UnivMon
from repro.tasks.base import MeasurementTask, TaskScore
from repro.traffic.groundtruth import GroundTruth

#: Default sketch parameters, scaled for laptop-sized traces; the
#: paper's §7.1 configurations are available via ``paper_params=True``.
DEFAULT_PARAMS = {
    "deltoid": {"width": 1024, "depth": 4},
    # depth 6 keeps reverse-hashing phantom candidates rare (each extra
    # row multiplies a phantom's survival odds by heavy-buckets/width).
    "revsketch": {
        "word_bits": 8,
        "num_words": 4,
        "subindex_bits": 3,
        "depth": 6,
    },
    "flowradar": {"bloom_bits": 60_000, "num_cells": 24_000},
    "univmon": {
        "level_widths": (2048, 1024, 512, 256, 256, 256),
        "depth": 5,
        "heap_size": 500,
    },
}

PAPER_PARAMS = {
    "deltoid": {"width": 4000, "depth": 4},
    "revsketch": {
        "word_bits": 8,
        "num_words": 4,
        "subindex_bits": 3,
        "depth": 4,
    },
    "flowradar": {"bloom_bits": 100_000, "num_cells": 40_000},
    "univmon": {
        "level_widths": (4000, 2000, 1000, 500, 500, 500, 500, 500),
        "depth": 5,
        "heap_size": 500,
    },
}

_CLASSES = {
    "deltoid": Deltoid,
    "revsketch": ReversibleSketch,
    "flowradar": FlowRadar,
    "univmon": UnivMon,
}


def build_hh_sketch(
    solution: str,
    seed: int = 1,
    sketch_params: dict | None = None,
    paper_params: bool = False,
) -> Sketch:
    """Construct a heavy-hitter-capable sketch by solution name."""
    if solution not in _CLASSES:
        raise ConfigError(f"unknown HH solution {solution!r}")
    params = sketch_params
    if params is None:
        params = (PAPER_PARAMS if paper_params else DEFAULT_PARAMS)[
            solution
        ]
    return _CLASSES[solution](seed=seed, **params)


class HeavyHitterTask(MeasurementTask):
    """Detect flows above ``threshold`` bytes in an epoch.

    Parameters
    ----------
    solution:
        One of ``deltoid``, ``revsketch``, ``flowradar``, ``univmon``.
    threshold:
        Absolute byte threshold (the paper uses 0.05% of NIC capacity
        times the epoch length).
    """

    name = "heavy_hitter"
    solutions = ("deltoid", "revsketch", "flowradar", "univmon")

    def __init__(
        self,
        solution: str,
        threshold: float,
        sketch_params: dict | None = None,
        paper_params: bool = False,
    ):
        super().__init__(solution)
        if threshold <= 0:
            raise ConfigError("threshold must be positive")
        self.threshold = float(threshold)
        self.sketch_params = sketch_params
        self.paper_params = paper_params

    def create_sketch(self, seed: int = 1) -> Sketch:
        return build_hh_sketch(
            self.solution, seed, self.sketch_params, self.paper_params
        )

    # ------------------------------------------------------------------
    def answer(self, sketch: Sketch) -> dict[object, float]:
        """``{flow key: estimated bytes}`` for flows above threshold."""
        threshold = self.threshold
        if isinstance(sketch, Deltoid):
            return dict(sketch.decode(threshold))
        if isinstance(sketch, ReversibleSketch):
            return dict(sketch.decode(threshold))
        if isinstance(sketch, FlowRadar):
            decoded, _complete = sketch.decode()
            return {
                flow: size
                for flow, size in decoded.items()
                if size > threshold
            }
        if isinstance(sketch, UnivMon):
            return dict(sketch.heavy_hitters(threshold))
        raise ConfigError(f"unsupported sketch {type(sketch).__name__}")

    def truth_key(self, flow: FlowKey):
        """Map a ground-truth flow to the key space answers use."""
        if self.solution == "revsketch":
            return flow_fingerprint(flow)
        return flow

    def score(self, answer: dict, truth: GroundTruth) -> TaskScore:
        true_hh = {
            self.truth_key(flow): float(size)
            for flow, size in truth.heavy_hitters(self.threshold).items()
        }
        return TaskScore(
            recall=recall(answer, true_hh),
            precision=precision(answer, true_hh),
            relative_error=relative_error(answer, true_hh),
            extra={"reported": len(answer), "true": len(true_hh)},
        )
