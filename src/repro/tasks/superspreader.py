"""Superspreader detection: sources contacting too many destinations.

The mirror image of DDoS detection (§2.1), using the same TwoLevel
sketch with the aggregate/spread roles swapped (§7.1: "the same setting
as DDoS detection").
"""

from __future__ import annotations

from repro.metrics import precision, recall, relative_error
from repro.tasks.base import TaskScore
from repro.tasks.ddos import DDoSTask
from repro.traffic.groundtruth import GroundTruth


class SuperspreaderTask(DDoSTask):
    """Detect source IPs with more than ``threshold`` destinations."""

    name = "superspreader"
    solutions = ("twolevel",)
    _mode = "superspreader"

    def _truth(self, truth: GroundTruth) -> dict[int, float]:
        return {
            src: float(count)
            for src, count in truth.superspreaders(
                int(self.threshold)
            ).items()
        }

    def score(self, answer: dict, truth: GroundTruth) -> TaskScore:
        true_spreaders = self._truth(truth)
        return TaskScore(
            recall=recall(answer, true_spreaders),
            precision=precision(answer, true_spreaders),
            relative_error=relative_error(answer, true_spreaders),
            extra={
                "reported": len(answer),
                "true": len(true_spreaders),
            },
        )
