"""Heavy changer detection: flows whose byte count changes across epochs.

A heavy changer's |delta| between two consecutive epochs exceeds a
threshold (§2.1).  Linear sketches (Deltoid, RevSketch) decode the
*difference* of the two epoch sketches in both directions; FlowRadar
decodes each epoch and differences the flows; UnivMon differences its
tracked estimates.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.metrics import precision, recall, relative_error
from repro.sketches.base import Sketch
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.univmon import UnivMon
from repro.tasks.base import MeasurementTask, TaskScore
from repro.tasks.heavy_hitter import HeavyHitterTask, build_hh_sketch
from repro.traffic.groundtruth import GroundTruth


class HeavyChangerTask(MeasurementTask):
    """Detect flows whose across-epoch change exceeds ``threshold`` bytes.

    Uses the same sketches and configurations as heavy hitter detection
    (§7.1: "the same sketch settings as in HH detection").
    """

    name = "heavy_changer"
    solutions = ("deltoid", "revsketch", "flowradar", "univmon")

    def __init__(
        self,
        solution: str,
        threshold: float,
        sketch_params: dict | None = None,
        paper_params: bool = False,
    ):
        super().__init__(solution)
        if threshold <= 0:
            raise ConfigError("threshold must be positive")
        self.threshold = float(threshold)
        self.sketch_params = sketch_params
        self.paper_params = paper_params
        # Key mapping is shared with the HH task.
        self._hh = HeavyHitterTask(
            solution, threshold, sketch_params, paper_params
        )

    def create_sketch(self, seed: int = 1) -> Sketch:
        return build_hh_sketch(
            self.solution, seed, self.sketch_params, self.paper_params
        )

    # ------------------------------------------------------------------
    def answer(self, sketch: Sketch):
        raise ConfigError(
            "heavy changer needs two epochs; use answer_pair(a, b)"
        )

    def answer_pair(
        self, epoch_a: Sketch, epoch_b: Sketch
    ) -> dict[object, float]:
        """``{flow key: |delta| bytes}`` for changes above threshold."""
        threshold = self.threshold
        if isinstance(epoch_a, (Deltoid, ReversibleSketch)):
            return self._answer_linear(epoch_a, epoch_b)
        if isinstance(epoch_a, FlowRadar):
            decoded_a, _ = epoch_a.decode()
            decoded_b, _ = epoch_b.decode()
            changes = {}
            for flow in set(decoded_a) | set(decoded_b):
                delta = abs(
                    decoded_a.get(flow, 0.0) - decoded_b.get(flow, 0.0)
                )
                if delta > threshold:
                    changes[flow] = delta
            return changes
        if isinstance(epoch_a, UnivMon):
            candidates = set()
            for sketch in (epoch_a, epoch_b):
                for _flow, key64, _est in sketch._top_flows(0):
                    candidates.add(key64)
            key_to_flow = {}
            for sketch in (epoch_a, epoch_b):
                for key64, (flow, _est) in sketch.trackers[0].items():
                    key_to_flow[key64] = flow
            changes = {}
            cs_a = epoch_a.sketches[0]
            cs_b = epoch_b.sketches[0]
            for key64 in candidates:
                delta = abs(
                    cs_a.estimate_key64(key64)
                    - cs_b.estimate_key64(key64)
                )
                if delta > threshold:
                    changes[key_to_flow[key64]] = delta
            return changes
        raise ConfigError(f"unsupported sketch {type(epoch_a).__name__}")

    def _answer_linear(
        self, epoch_a: Sketch, epoch_b: Sketch
    ) -> dict[object, float]:
        """Decode |A - B| via difference sketches in both directions.

        Linearity makes the difference of two same-seed sketches a
        valid sketch of the per-flow deltas; decoding it in both signs
        finds growers and shrinkers.  Candidates are re-estimated from
        the direction they were found in.
        """
        matrix_a = epoch_a.to_matrix()
        matrix_b = epoch_b.to_matrix()
        changes: dict[object, float] = {}
        for forward in (matrix_a - matrix_b, matrix_b - matrix_a):
            diff = epoch_a.clone_empty()
            diff.load_matrix(forward)
            for key, estimate in diff.decode(self.threshold).items():
                if estimate > changes.get(key, 0.0):
                    changes[key] = estimate
        return changes

    # ------------------------------------------------------------------
    def score_pair(
        self,
        answer: dict,
        truth_a: GroundTruth,
        truth_b: GroundTruth,
    ) -> TaskScore:
        true_changes = {
            self._hh.truth_key(flow): float(delta)
            for flow, delta in truth_a.heavy_changers(
                truth_b, self.threshold
            ).items()
        }
        return TaskScore(
            recall=recall(answer, true_changes),
            precision=precision(answer, true_changes),
            relative_error=relative_error(answer, true_changes),
            extra={"reported": len(answer), "true": len(true_changes)},
        )

    def score(self, answer, truth: GroundTruth) -> TaskScore:
        raise ConfigError(
            "heavy changer needs two ground truths; use score_pair"
        )
