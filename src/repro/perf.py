"""The ``repro perf`` observatory: bench trajectories → HTML dashboard.

The benchmarks append one entry per run to committed trajectory files
(``BENCH_dataplane.json``, ``BENCH_checkpoint.json``,
``BENCH_cluster.json``).  This module
turns that history into a regression dashboard: per-metric sparklines
across commits, the latest run's per-stage wall-time breakdown with
deltas against the previous run, and gate-violation annotations
(speedup floors, overhead ceilings) rendered with an icon + label —
never colour alone.  Everything is server-side SVG in a
self-contained HTML page; no external dependencies.

Entries are schema-validated on load; runs without a ``git_sha``
stamp are surfaced as warnings (provenance satellite) instead of
silently charting as anonymous points.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dash import _html_escape

#: Fixed overhead ceilings mirrored from ``check_regression.py``.
ACCURACY_OVERHEAD_CEILING_PCT = 5.0
PROFILING_OVERHEAD_CEILING_PCT = 10.0
CHECKPOINT_OVERHEAD_CEILING = 0.10
CLUSTER_RSS_RATIO_CEILING = 0.8
CLUSTER_RSS_EXPONENT_CEILING = 0.75
FAILOVER_UNACCOUNTED_CEILING = 0.0
FAILOVER_REDELIVERY_OVERHEAD_CEILING = 0.5
#: Recovery latency is watchdog-interval-bound, so the ceiling is a
#: coarse are-we-still-sane bound rather than a tight perf target.
FAILOVER_RECOVERY_P95_CEILING_SECONDS = 10.0
#: Allowed fractional drop below the best prior non-smoke speedup.
SPEEDUP_DROP_TOLERANCE = 0.15


# ----------------------------------------------------------------------
# Loading & validation
# ----------------------------------------------------------------------
@dataclass
class Trajectory:
    """One trajectory file: validated runs plus load diagnostics."""

    name: str
    path: Path
    runs: list[dict] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)


def validate_entry(entry, index: int) -> tuple[list[str], list[str]]:
    """Schema-check one trajectory entry.

    Returns ``(problems, warnings)``: problems make the entry
    unusable; warnings (missing ``git_sha`` provenance, missing
    timestamp) keep the entry but flag it.
    """
    problems: list[str] = []
    warnings: list[str] = []
    if not isinstance(entry, dict):
        return [f"run[{index}] is not an object"], []
    timestamp = entry.get("timestamp")
    if not isinstance(timestamp, str) or not timestamp:
        warnings.append(f"run[{index}] has no timestamp")
    sha = entry.get("git_sha")
    if not isinstance(sha, str) or not sha or sha == "unknown":
        warnings.append(
            f"run[{index}] is unstamped (no git_sha) — provenance "
            "unknown"
        )
    if "smoke" in entry and not isinstance(entry["smoke"], bool):
        problems.append(f"run[{index}].smoke is not a boolean")
    return problems, warnings


def load_trajectory(path: str | Path) -> Trajectory:
    """Load + validate one ``BENCH_*.json`` trajectory file."""
    path = Path(path)
    trajectory = Trajectory(name=path.stem, path=path)
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        trajectory.problems.append(f"cannot read {path}: {exc}")
        return trajectory
    runs = loaded.get("runs") if isinstance(loaded, dict) else None
    if not isinstance(runs, list):
        trajectory.problems.append(f"{path} has no 'runs' list")
        return trajectory
    for index, entry in enumerate(runs):
        problems, warnings = validate_entry(entry, index)
        trajectory.warnings.extend(warnings)
        if problems:
            trajectory.problems.extend(problems)
        else:
            trajectory.runs.append(entry)
    return trajectory


def discover_trajectories(root: str | Path) -> list[Trajectory]:
    """Load every ``BENCH_*.json`` under ``root`` (sorted by name)."""
    root = Path(root)
    return [
        load_trajectory(path)
        for path in sorted(root.glob("BENCH_*.json"))
    ]


# ----------------------------------------------------------------------
# Series extraction & gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriesSpec:
    """One charted metric: where it lives and how it is gated."""

    key: str
    label: str
    unit: str
    path: tuple[str, ...]
    #: "speedup" gates a drop below the best prior non-smoke value;
    #: "ceiling" gates values above ``limit``; None is ungated.
    gate: str | None = None
    limit: float | None = None


SERIES_BY_FILE: dict[str, tuple[SeriesSpec, ...]] = {
    "BENCH_dataplane": (
        SeriesSpec(
            "ideal_speedup", "Ideal batch speedup", "x",
            ("switch", "ideal", "speedup"), gate="speedup",
        ),
        SeriesSpec(
            "sketchvisor_speedup", "SketchVisor batch speedup", "x",
            ("switch", "sketchvisor", "speedup"), gate="speedup",
        ),
        SeriesSpec(
            "parallel_speedup", "Multi-host parallel speedup", "x",
            ("parallel", "speedup"), gate="speedup",
        ),
        SeriesSpec(
            "accuracy_overhead", "Accuracy telemetry overhead", "%",
            ("accuracy_overhead", "overhead_pct"),
            gate="ceiling", limit=ACCURACY_OVERHEAD_CEILING_PCT,
        ),
        SeriesSpec(
            "profiling_overhead", "Profiling overhead", "%",
            ("profiling", "overhead_pct"),
            gate="ceiling", limit=PROFILING_OVERHEAD_CEILING_PCT,
        ),
    ),
    "BENCH_checkpoint": (
        SeriesSpec(
            "checkpoint_overhead", "Checkpoint overhead (default)",
            "frac", ("default_overhead",),
            gate="ceiling", limit=CHECKPOINT_OVERHEAD_CEILING,
        ),
    ),
    "BENCH_cluster": (
        SeriesSpec(
            "cluster_rss_ratio", "Cluster hier/flat peak RSS ratio",
            "frac", ("summary", "rss_ratio"),
            gate="ceiling", limit=CLUSTER_RSS_RATIO_CEILING,
        ),
        SeriesSpec(
            "cluster_rss_exponent", "Cluster RSS growth exponent",
            "", ("summary", "rss_growth_exponent"),
            gate="ceiling", limit=CLUSTER_RSS_EXPONENT_CEILING,
        ),
    ),
    "BENCH_failover": (
        SeriesSpec(
            "failover_unaccounted", "Failover unaccounted host-epochs",
            "", ("summary", "unaccounted_host_epochs"),
            gate="ceiling", limit=FAILOVER_UNACCOUNTED_CEILING,
        ),
        SeriesSpec(
            "failover_redelivery_overhead",
            "Failover redelivery overhead",
            "frac", ("summary", "redelivery_overhead"),
            gate="ceiling",
            limit=FAILOVER_REDELIVERY_OVERHEAD_CEILING,
        ),
        SeriesSpec(
            "failover_recovery_p95", "Failover recovery p95",
            "s", ("summary", "recovery_p95_seconds"),
            gate="ceiling",
            limit=FAILOVER_RECOVERY_P95_CEILING_SECONDS,
        ),
    ),
}


@dataclass
class Point:
    """One run's value for one series."""

    run_index: int
    value: float
    sha: str
    smoke: bool
    violation: str | None = None  # human-readable gate breach


def extract(entry: dict, path: tuple[str, ...]) -> float | None:
    node = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def series_points(runs: list[dict], spec: SeriesSpec) -> list[Point]:
    """Extract + gate one series across a trajectory's runs."""
    points: list[Point] = []
    best_prior: float | None = None
    for index, entry in enumerate(runs):
        value = extract(entry, spec.path)
        if value is None:
            continue
        sha = entry.get("git_sha") or "unstamped"
        smoke = bool(entry.get("smoke"))
        violation = None
        if spec.gate == "ceiling" and spec.limit is not None:
            if value > spec.limit and not smoke:
                violation = (
                    f"{value:.3g}{spec.unit} exceeds the "
                    f"{spec.limit:.3g}{spec.unit} ceiling"
                )
        elif spec.gate == "speedup" and best_prior is not None:
            floor = best_prior * (1.0 - SPEEDUP_DROP_TOLERANCE)
            if value < floor and not smoke:
                violation = (
                    f"{value:.2f}x fell below the "
                    f"{floor:.2f}x floor "
                    f"({SPEEDUP_DROP_TOLERANCE:.0%} under the "
                    f"prior best {best_prior:.2f}x)"
                )
        if spec.gate == "speedup" and not smoke:
            best_prior = (
                value if best_prior is None
                else max(best_prior, value)
            )
        points.append(Point(index, value, sha, smoke, violation))
    return points


def stage_breakdown(
    runs: list[dict],
) -> tuple[dict[str, dict], dict[str, float]]:
    """Latest run's per-stage wall seconds + delta vs previous run.

    Bench entries carry a ``profiling.stages`` map
    (``stage -> {"wall_seconds": …, "cpu_seconds": …, "count": …}``).
    Returns ``(latest_stages, delta_pct_by_stage)``; both empty when
    no run recorded a breakdown.
    """
    staged = [
        entry["profiling"]["stages"]
        for entry in runs
        if isinstance(entry.get("profiling"), dict)
        and isinstance(entry["profiling"].get("stages"), dict)
    ]
    if not staged:
        return {}, {}
    latest = staged[-1]
    deltas: dict[str, float] = {}
    if len(staged) > 1:
        previous = staged[-2]
        for name, row in latest.items():
            prev = previous.get(name)
            if (
                isinstance(prev, dict)
                and prev.get("wall_seconds")
                and row.get("wall_seconds") is not None
            ):
                deltas[name] = (
                    (row["wall_seconds"] - prev["wall_seconds"])
                    / prev["wall_seconds"] * 100.0
                )
    return latest, deltas


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_SPARK_W, _SPARK_H = 320, 96
_SPARK_PAD = 14


def _fmt(value: float) -> str:
    return (
        f"{value:.0f}" if float(value).is_integer()
        else f"{value:.3g}"
    )


def sparkline_svg(points: list[Point], spec: SeriesSpec) -> str:
    """One metric's history as an inline SVG sparkline.

    Points carry native ``<title>`` tooltips (run, sha, value); gate
    violations get the serious-status colour *plus* a warning glyph,
    and smoke runs render as hollow markers.
    """
    if not points:
        return (
            '<svg class="spark" width="320" height="40" role="img" '
            f'aria-label="{_html_escape(spec.label)}: no data">'
            '<text class="axis-text" x="4" y="24">no data</text>'
            "</svg>"
        )
    values = [p.value for p in points]
    lo, hi = min(values), max(values)
    if spec.gate == "ceiling" and spec.limit is not None:
        hi = max(hi, spec.limit)
        lo = min(lo, 0.0)
    span = (hi - lo) or 1.0
    inner_w = _SPARK_W - 2 * _SPARK_PAD
    inner_h = _SPARK_H - 2 * _SPARK_PAD
    n = len(points)

    def x(i: int) -> float:
        return _SPARK_PAD + (
            inner_w / 2 if n == 1 else i / (n - 1) * inner_w
        )

    def y(v: float) -> float:
        return _SPARK_PAD + inner_h - (v - lo) / span * inner_h

    parts = [
        f'<svg class="spark" width="{_SPARK_W}" '
        f'height="{_SPARK_H}" role="img" '
        f'aria-label="{_html_escape(spec.label)} per bench run">'
    ]
    if spec.gate == "ceiling" and spec.limit is not None:
        gy = y(spec.limit)
        parts.append(
            f'<line class="gate-line" x1="{_SPARK_PAD}" '
            f'x2="{_SPARK_W - _SPARK_PAD}" y1="{gy:.1f}" '
            f'y2="{gy:.1f}"><title>gate ceiling '
            f"{_fmt(spec.limit)}{spec.unit}</title></line>"
        )
    if len(points) > 1:
        d = "".join(
            f"{'M' if i == 0 else 'L'}{x(i):.1f} "
            f"{y(p.value):.1f}"
            for i, p in enumerate(points)
        )
        parts.append(f'<path class="spark-line" d="{d}"/>')
    for i, p in enumerate(points):
        cls = "spark-dot"
        if p.violation:
            cls += " viol"
        if p.smoke:
            cls += " smoke"
        tooltip = (
            f"run {p.run_index} · {p.sha}"
            f"{' · smoke' if p.smoke else ''} · "
            f"{_fmt(p.value)}{spec.unit}"
            + (f" · GATE: {p.violation}" if p.violation else "")
        )
        parts.append(
            f'<circle class="{cls}" cx="{x(i):.1f}" '
            f'cy="{y(p.value):.1f}" r="4">'
            f"<title>{_html_escape(tooltip)}</title></circle>"
        )
        if p.violation:
            parts.append(
                f'<text class="viol-glyph" x="{x(i):.1f}" '
                f'y="{y(p.value) - 7:.1f}" '
                'text-anchor="middle">&#9888;</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


_PERF_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3e0;
  --series-1: #2a78d6;
  --status-serious: #ec835a;
  --status-warning: #fab219;
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #33332f;
    --series-1: #3987e5;
    --status-serious: #f09b7b;
    --status-warning: #fbc14a;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
section { margin-top: 28px; }
section h2 { font-size: 15px; margin-bottom: 8px; }
.charts { display: flex; flex-wrap: wrap; gap: 24px; }
.chart { width: 320px; }
.chart h3 { font-size: 13px; font-weight: 600; margin: 0; }
.chart .latest { color: var(--text-secondary); font-size: 12px;
  margin: 0 0 4px; }
svg { display: block; overflow: visible; }
.spark-line { stroke: var(--series-1); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
.spark-dot { fill: var(--series-1); stroke: var(--surface-1);
  stroke-width: 2; }
.spark-dot.smoke { fill: var(--surface-1);
  stroke: var(--series-1); }
.spark-dot.viol { fill: var(--status-serious); }
.viol-glyph { fill: var(--status-serious); font-size: 11px; }
.gate-line { stroke: var(--status-serious); stroke-width: 1;
  stroke-dasharray: 4 3; }
.axis-text { fill: var(--text-secondary); font-size: 10px; }
table { border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 3px 10px;
  border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.badge { font-weight: 600; }
.badge.serious { color: var(--status-serious); }
.badge.warning { color: var(--status-warning); }
ul.notes { color: var(--text-secondary); font-size: 13px;
  padding-left: 20px; }
</style>
</head>
<body class="viz-root">
<h1>__TITLE__</h1>
<p class="sub">__SUBTITLE__</p>
__BODY__
</body>
</html>
"""


def _chart_card(spec: SeriesSpec, points: list[Point]) -> str:
    latest = (
        f"latest: {_fmt(points[-1].value)}{spec.unit} "
        f"@ {_html_escape(points[-1].sha)}"
        if points else "no data"
    )
    return (
        '<div class="chart">'
        f"<h3>{_html_escape(spec.label)}"
        f"{f' ({spec.unit})' if spec.unit else ''}</h3>"
        f'<p class="latest">{latest}</p>'
        f"{sparkline_svg(points, spec)}</div>"
    )


def _violations_section(
    violations: list[tuple[str, SeriesSpec, Point]],
) -> str:
    if not violations:
        return (
            "<section><h2>Gate violations</h2>"
            '<p class="sub">&#10003; none — every non-smoke run is '
            "within its gates.</p></section>"
        )
    rows = "".join(
        "<tr>"
        f'<td><span class="badge serious">&#9888; GATE</span></td>'
        f"<td>{_html_escape(name)}</td>"
        f"<td>{_html_escape(spec.label)}</td>"
        f"<td>run {point.run_index} @ {_html_escape(point.sha)}</td>"
        f"<td>{_html_escape(point.violation or '')}</td></tr>"
        for name, spec, point in violations
    )
    return (
        "<section><h2>Gate violations</h2><table><thead><tr>"
        '<th scope="col">Status</th><th scope="col">File</th>'
        '<th scope="col">Metric</th><th scope="col">Run</th>'
        '<th scope="col">Detail</th>'
        f"</tr></thead><tbody>{rows}</tbody></table></section>"
    )


def _stages_section(
    latest: dict[str, dict], deltas: dict[str, float]
) -> str:
    if not latest:
        return ""
    total = sum(
        row.get("wall_seconds", 0.0) for row in latest.values()
    ) or 1.0
    ordered = sorted(
        latest.items(),
        key=lambda item: -item[1].get("wall_seconds", 0.0),
    )
    rows = []
    for name, row in ordered:
        wall = row.get("wall_seconds", 0.0)
        delta = deltas.get(name)
        delta_cell = (
            "–" if delta is None else f"{delta:+.1f}%"
        )
        rows.append(
            f"<tr><td>{_html_escape(name)}</td>"
            f"<td>{wall:.4f}</td>"
            f"<td>{wall / total * 100:.1f}%</td>"
            f"<td>{row.get('cpu_seconds', 0.0):.4f}</td>"
            f"<td>{row.get('count', 0)}</td>"
            f"<td>{delta_cell}</td></tr>"
        )
    return (
        "<section><h2>Per-stage breakdown (latest bench run)</h2>"
        '<table><thead><tr><th scope="col">Stage</th>'
        '<th scope="col">Wall s</th><th scope="col">Share</th>'
        '<th scope="col">CPU s</th><th scope="col">Calls</th>'
        '<th scope="col">&Delta; wall vs prev run</th>'
        f"</tr></thead><tbody>{''.join(rows)}</tbody>"
        "</table></section>"
    )


def _notes_section(trajectories: list[Trajectory]) -> str:
    notes = []
    for trajectory in trajectories:
        for problem in trajectory.problems:
            notes.append(
                f'<li><span class="badge serious">&#9888; '
                f"schema</span> {_html_escape(trajectory.name)}: "
                f"{_html_escape(problem)}</li>"
            )
        for warning in trajectory.warnings:
            notes.append(
                f'<li><span class="badge warning">&#9888; '
                f"provenance</span> "
                f"{_html_escape(trajectory.name)}: "
                f"{_html_escape(warning)}</li>"
            )
    if not notes:
        return ""
    return (
        "<section><h2>Load diagnostics</h2>"
        f'<ul class="notes">{"".join(notes)}</ul></section>'
    )


def perf_dashboard_html(
    trajectories: list[Trajectory],
    title: str = "SketchVisor performance trajectory",
) -> str:
    """Render the committed bench history as a regression dashboard."""
    cards: list[str] = []
    violations: list[tuple[str, SeriesSpec, Point]] = []
    stage_latest: dict[str, dict] = {}
    stage_deltas: dict[str, float] = {}
    total_runs = 0
    for trajectory in trajectories:
        total_runs += len(trajectory.runs)
        for spec in SERIES_BY_FILE.get(trajectory.name, ()):
            points = series_points(trajectory.runs, spec)
            cards.append(_chart_card(spec, points))
            violations.extend(
                (trajectory.name, spec, p)
                for p in points if p.violation
            )
        if trajectory.name == "BENCH_dataplane":
            stage_latest, stage_deltas = stage_breakdown(
                trajectory.runs
            )
    body = (
        "<section><h2>Metric trajectories</h2>"
        f'<div class="charts">{"".join(cards)}</div></section>'
        + _violations_section(violations)
        + _stages_section(stage_latest, stage_deltas)
        + _notes_section(trajectories)
    )
    subtitle = (
        f"{len(trajectories)} trajectory file(s), "
        f"{total_runs} committed run(s); hollow markers are smoke "
        "runs, &#9888; marks gate violations."
    )
    return (
        _PERF_TEMPLATE.replace("__TITLE__", _html_escape(title))
        .replace("__SUBTITLE__", subtitle)
        .replace("__BODY__", body)
    )


def write_perf_dashboard(
    path: str | Path,
    trajectories: list[Trajectory],
    title: str = "SketchVisor performance trajectory",
) -> Path:
    destination = Path(path)
    destination.write_text(
        perf_dashboard_html(trajectories, title=title)
    )
    return destination


def perf_text_summary(trajectories: list[Trajectory]) -> str:
    """Terminal rendering of the same dashboard (``repro perf``)."""
    lines: list[str] = []
    for trajectory in trajectories:
        lines.append(
            f"{trajectory.name} ({len(trajectory.runs)} runs)"
        )
        for spec in SERIES_BY_FILE.get(trajectory.name, ()):
            points = series_points(trajectory.runs, spec)
            if not points:
                lines.append(f"  {spec.label}: no data")
                continue
            last = points[-1]
            trail = " ".join(
                _fmt(p.value) for p in points[-6:]
            )
            flag = "  [GATE VIOLATION]" if last.violation else ""
            lines.append(
                f"  {spec.label}: {trail} {spec.unit}"
                f" (latest @ {last.sha}){flag}"
            )
        for warning in trajectory.warnings:
            lines.append(f"  warning: {warning}")
        for problem in trajectory.problems:
            lines.append(f"  problem: {problem}")
    if not trajectories:
        lines.append("no BENCH_*.json trajectory files found")
    return "\n".join(lines)
