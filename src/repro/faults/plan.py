"""Seeded, deterministic fault schedules for chaos testing.

A :class:`FaultPlan` describes *what goes wrong, where, and when* on
the host → controller report path: per-epoch, per-host fault draws
(report drop, delivery delay beyond the deadline, frame truncation,
bit-flip corruption, host crash, duplicate delivery, stale-epoch
replay) sampled from per-kind rates, plus explicitly pinned
:class:`FaultSpec` entries for directed tests.

Determinism is the whole point: the schedule for ``(epoch, host)`` is
a pure function of ``(plan.seed, epoch, host)``, independent of call
order, process layout, or how many other hosts exist — so identical
seeds reproduce identical fault schedules (and therefore identical
degraded results) across runs, machines, and worker counts.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError


class FaultKind(Enum):
    """One way a host's per-epoch report can fail to arrive cleanly."""

    #: The frame is silently lost; a retry succeeds.
    DROP = "drop"
    #: The frame arrives after the per-host deadline (ReportTimeout).
    DELAY = "delay"
    #: The frame is cut short mid-payload (CRC / length mismatch).
    TRUNCATE = "truncate"
    #: A single bit is flipped somewhere in the frame (header or
    #: payload, chosen by the schedule's RNG).
    BITFLIP = "bitflip"
    #: The host is down for the whole epoch: every attempt fails.
    CRASH = "crash"
    #: The frame is delivered twice (dedup by ``(host_id, epoch)``).
    DUPLICATE = "duplicate"
    #: The previous epoch's frame is delivered instead (stale replay);
    #: degrades to a drop when no earlier frame exists.
    REPLAY = "replay"


#: Fixed sampling order so rate draws are reproducible.
_KIND_ORDER = (
    FaultKind.CRASH,
    FaultKind.DROP,
    FaultKind.DELAY,
    FaultKind.TRUNCATE,
    FaultKind.BITFLIP,
    FaultKind.DUPLICATE,
    FaultKind.REPLAY,
)

#: Kinds that consume one delivery attempt and then clear on retry.
RETRIABLE_KINDS = frozenset(
    {
        FaultKind.DROP,
        FaultKind.DELAY,
        FaultKind.TRUNCATE,
        FaultKind.BITFLIP,
        FaultKind.REPLAY,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One pinned fault: ``kind`` hits ``host`` in ``epoch``.

    ``epoch`` / ``host`` may be ``None`` to match every epoch / host
    (a standing fault), which is how directed tests express "host 2 is
    always down".
    """

    kind: FaultKind
    epoch: int | None = None
    host: int | None = None

    def matches(self, epoch: int, host: int) -> bool:
        return (self.epoch is None or self.epoch == epoch) and (
            self.host is None or self.host == host
        )


@dataclass
class FaultPlan:
    """A complete, seeded chaos schedule.

    Parameters
    ----------
    seed:
        Root seed; the per-``(epoch, host)`` draw derives from it alone.
    rates:
        Per-kind independent probabilities (``{"drop": 0.1, ...}``);
        each kind is drawn once per ``(epoch, host)``.
    specs:
        Explicitly pinned faults, applied *in addition to* rate draws.
    """

    seed: int = 0
    rates: dict[FaultKind, float] = field(default_factory=dict)
    specs: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        normalized: dict[FaultKind, float] = {}
        for kind, rate in self.rates.items():
            kind = FaultKind(kind)
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {kind.value!r} must be in [0, 1], "
                    f"got {rate}"
                )
            normalized[kind] = rate
        self.rates = normalized

    # ------------------------------------------------------------------
    def schedule_for(self, epoch: int, host: int) -> list[FaultKind]:
        """The faults hitting ``(epoch, host)``, in delivery order.

        A pure function of ``(seed, epoch, host)`` — calling it twice,
        in any order, from any process, yields the same list.
        """
        faults: list[FaultKind] = []
        if self.rates:
            rng = self.rng_for(epoch, host)
            for kind in _KIND_ORDER:
                rate = self.rates.get(kind, 0.0)
                if rate > 0.0 and rng.random() < rate:
                    faults.append(kind)
        # Pinned specs stack: each matching spec consumes one delivery
        # attempt, so listing the same spec n times injects it n times
        # (how directed tests exhaust the retry budget).
        for spec in self.specs:
            if spec.matches(epoch, host):
                faults.append(spec.kind)
        # A crashed host never answers: every other fault is moot.
        if FaultKind.CRASH in faults:
            return [FaultKind.CRASH]
        return faults

    def rng_for(self, epoch: int, host: int) -> random.Random:
        """Dedicated RNG for one ``(epoch, host)`` cell (also used to
        pick corruption offsets, so bit-flips are reproducible too)."""
        return random.Random(
            (self.seed & 0xFFFF_FFFF) << 32
            ^ (epoch & 0xFFFF) << 16
            ^ (host & 0xFFFF)
        )

    @property
    def active(self) -> bool:
        """Whether this plan can ever inject anything."""
        return bool(self.specs) or any(
            rate > 0.0 for rate in self.rates.values()
        )

    # ------------------------------------------------------------------
    # JSON persistence (the ``repro run --chaos plan.json`` format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rates": {
                kind.value: rate for kind, rate in self.rates.items()
            },
            "specs": [
                {
                    "kind": spec.kind.value,
                    "epoch": spec.epoch,
                    "host": spec.host,
                }
                for spec in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            specs = [
                FaultSpec(
                    kind=FaultKind(item["kind"]),
                    epoch=item.get("epoch"),
                    host=item.get("host"),
                )
                for item in data.get("specs", ())
            ]
            return cls(
                seed=int(data.get("seed", 0)),
                rates={
                    FaultKind(kind): float(rate)
                    for kind, rate in data.get("rates", {}).items()
                },
                specs=specs,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def moderate_plan(seed: int = 0) -> FaultPlan:
    """The default chaos mix: 10% per-host fault pressure, all
    *recoverable* kinds (no crashes), for soak runs that must still
    collect every report after retries."""
    return FaultPlan(
        seed=seed,
        rates={
            FaultKind.DROP: 0.04,
            FaultKind.DELAY: 0.02,
            FaultKind.TRUNCATE: 0.01,
            FaultKind.BITFLIP: 0.01,
            FaultKind.DUPLICATE: 0.01,
            FaultKind.REPLAY: 0.01,
        },
    )


def faults_from_env() -> FaultPlan | None:
    """A moderate :class:`FaultPlan` when ``REPRO_CHAOS`` is set.

    ``REPRO_CHAOS=1`` (or any non-empty value except ``0``) enables the
    :func:`moderate_plan` mix — recoverable faults only, so the suite
    still produces full-quorum results; a numeric value other than
    ``1`` is used as the plan seed.  Returns ``None`` otherwise,
    keeping fault injection strictly opt-in (mirrors
    ``REPRO_TELEMETRY``).
    """
    flag = os.environ.get("REPRO_CHAOS", "")
    if not flag or flag == "0":
        return None
    try:
        seed = int(flag)
    except ValueError:
        seed = 0
    return moderate_plan(seed=0 if seed == 1 else seed)
