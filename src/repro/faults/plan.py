"""Seeded, deterministic fault schedules for chaos testing.

A :class:`FaultPlan` describes *what goes wrong, where, and when* on
the host → controller report path: per-epoch, per-host fault draws
(report drop, delivery delay beyond the deadline, frame truncation,
bit-flip corruption, host crash, duplicate delivery, stale-epoch
replay) sampled from per-kind rates, plus explicitly pinned
:class:`FaultSpec` entries for directed tests.

Determinism is the whole point: the schedule for ``(epoch, host)`` is
a pure function of ``(plan.seed, epoch, host)``, independent of call
order, process layout, or how many other hosts exist — so identical
seeds reproduce identical fault schedules (and therefore identical
degraded results) across runs, machines, and worker counts.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError


class FaultKind(Enum):
    """One way a host's per-epoch report can fail to arrive cleanly."""

    #: The frame is silently lost; a retry succeeds.
    DROP = "drop"
    #: The frame arrives after the per-host deadline (ReportTimeout).
    DELAY = "delay"
    #: The frame is cut short mid-payload (CRC / length mismatch).
    TRUNCATE = "truncate"
    #: A single bit is flipped somewhere in the frame (header or
    #: payload, chosen by the schedule's RNG).
    BITFLIP = "bitflip"
    #: The host is down for the whole epoch: every attempt fails.
    CRASH = "crash"
    #: The frame is delivered twice (dedup by ``(host_id, epoch)``).
    DUPLICATE = "duplicate"
    #: The previous epoch's frame is delivered instead (stale replay);
    #: degrades to a drop when no earlier frame exists.
    REPLAY = "replay"
    #: The host's data-plane worker dies *mid-epoch* at a packet
    #: offset.  Recoverable via checkpoint/replay when durability is
    #: enabled; forfeits the epoch (degraded merge) otherwise.
    DATAPLANE_CRASH = "dp_crash"
    #: The host's data-plane worker stops making progress mid-epoch
    #: (hung syscall, livelock): heartbeats cease and the supervisor's
    #: watchdog must detect it before a restart can happen.
    HANG = "hang"
    #: The controller/aggregator refuses the host's TCP connection
    #: (listener down, backlog full); the connect attempt fails fast.
    CONN_REFUSED = "conn_refused"
    #: The connection is torn down abruptly (RST) mid-transfer; any
    #: partially sent frame is discarded by the receiver.
    CONN_RESET = "conn_reset"
    #: The sender's socket closes cleanly after writing only a prefix
    #: of the frame (short write at the OS boundary).
    PARTIAL_WRITE = "partial_write"
    #: The peer stalls mid-frame longer than the receiver's idle
    #: deadline; the receiver hangs up and the attempt is lost.
    SLOW_PEER = "slow_peer"
    #: The host is network-partitioned from the controller for the
    #: whole epoch: every connection attempt fails (socket CRASH).
    PARTITION = "partition"
    #: An *aggregator* process dies mid-epoch: its listener closes, its
    #: partial aggregate (every report it had merged) is lost, and its
    #: heartbeats cease.  Hosts re-shard to survivors via rendezvous
    #: hashing and redeliver.
    AGG_CRASH = "agg_crash"
    #: An aggregator stops making progress mid-epoch: the listener
    #: stays connectable but swallows frames without ACKing, and its
    #: heartbeats cease.  Detected identically to a crash by the
    #: controller's heartbeat watchdog.
    AGG_HANG = "agg_hang"


#: Fixed sampling order so rate draws are reproducible.  New kinds are
#: appended at the END: a draw is only consumed when a kind's rate is
#: positive, so older plans' schedules are unchanged by the addition.
_KIND_ORDER = (
    FaultKind.CRASH,
    FaultKind.DROP,
    FaultKind.DELAY,
    FaultKind.TRUNCATE,
    FaultKind.BITFLIP,
    FaultKind.DUPLICATE,
    FaultKind.REPLAY,
    FaultKind.DATAPLANE_CRASH,
    FaultKind.HANG,
    FaultKind.PARTITION,
    FaultKind.CONN_REFUSED,
    FaultKind.CONN_RESET,
    FaultKind.PARTIAL_WRITE,
    FaultKind.SLOW_PEER,
    FaultKind.AGG_CRASH,
    FaultKind.AGG_HANG,
)

#: Kinds that strike the data plane mid-epoch rather than the report
#: path; they are scheduled by :meth:`FaultPlan.dataplane_schedule_for`
#: with a packet offset and never appear in :meth:`schedule_for`.
DATAPLANE_KINDS = frozenset(
    {FaultKind.DATAPLANE_CRASH, FaultKind.HANG}
)

#: Kinds that strike the *socket layer* of the cluster transport
#: (``repro.cluster``): connection establishment and stream transfer
#: rather than frame contents.  They are scheduled by
#: :meth:`FaultPlan.socket_schedule_for` and never appear in
#: :meth:`schedule_for`, so an existing in-process plan is untouched
#: by socket rates and vice versa.
SOCKET_KINDS = frozenset(
    {
        FaultKind.CONN_REFUSED,
        FaultKind.CONN_RESET,
        FaultKind.PARTIAL_WRITE,
        FaultKind.SLOW_PEER,
        FaultKind.PARTITION,
    }
)

#: Kinds that strike an *aggregator* rather than a host.  They are
#: scheduled per ``(epoch, aggregator)`` by
#: :meth:`FaultPlan.aggregator_schedule_for` from their own salted RNG
#: stream and never appear in any host schedule, so adding aggregator
#: rates to an existing plan leaves every host draw stream untouched.
AGGREGATOR_KINDS = frozenset(
    {FaultKind.AGG_CRASH, FaultKind.AGG_HANG}
)

#: Kinds a :class:`FaultSpec.packet_offset` may be attached to.  A
#: report-path ``CRASH`` spec pinned to an offset is *promoted* to a
#: data-plane crash: the historical crash fault only ever fired at
#: report-send time, which made mid-epoch crash tests meaningless.
#: For aggregator kinds the offset counts *accepted reports* instead
#: of packets: the aggregator strikes once it has ACKed that many.
_OFFSET_KINDS = frozenset(
    {FaultKind.CRASH, FaultKind.DATAPLANE_CRASH, FaultKind.HANG}
    | AGGREGATOR_KINDS
)

#: Salt separating the packet-offset draw stream from the schedule's
#: rate draws (same construction as the injector's corruption salt).
_OFFSET_SALT = 0x0FF5_E7D0

#: Salt for the aggregator fault stream — keyed by ``(epoch,
#: aggregator)`` rather than ``(epoch, host)``, and salted so it can
#: never collide with (or shift) a host cell's draws.
_AGG_SALT = 0xA66F_A117

#: Kinds that consume one delivery attempt and then clear on retry.
RETRIABLE_KINDS = frozenset(
    {
        FaultKind.DROP,
        FaultKind.DELAY,
        FaultKind.TRUNCATE,
        FaultKind.BITFLIP,
        FaultKind.REPLAY,
        FaultKind.CONN_REFUSED,
        FaultKind.CONN_RESET,
        FaultKind.PARTIAL_WRITE,
        FaultKind.SLOW_PEER,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One pinned fault: ``kind`` hits ``host`` in ``epoch``.

    ``epoch`` / ``host`` may be ``None`` to match every epoch / host
    (a standing fault), which is how directed tests express "host 2 is
    always down".

    ``packet_offset`` pins a crash/hang to an intra-epoch packet index:
    the data plane stops after processing exactly that many packets of
    its shard.  It is only valid for ``CRASH`` / ``DATAPLANE_CRASH`` /
    ``HANG``; a ``CRASH`` spec carrying an offset is treated as a
    data-plane crash (the offset is where it strikes).

    For aggregator kinds (``AGG_CRASH`` / ``AGG_HANG``) the ``host``
    field names the *aggregator* id and ``packet_offset`` counts
    accepted reports: the aggregator strikes once it has ACKed that
    many host reports (``0`` = before the first ACK).
    """

    kind: FaultKind
    epoch: int | None = None
    host: int | None = None
    packet_offset: int | None = None

    def __post_init__(self) -> None:
        if self.packet_offset is None:
            return
        if self.kind not in _OFFSET_KINDS:
            raise ConfigError(
                f"packet_offset only applies to crash/hang faults, "
                f"not {self.kind.value!r}"
            )
        if self.packet_offset < 0:
            raise ConfigError("packet_offset must be >= 0")

    def matches(self, epoch: int, host: int) -> bool:
        return (self.epoch is None or self.epoch == epoch) and (
            self.host is None or self.host == host
        )


@dataclass(frozen=True)
class DataPlaneFault:
    """One scheduled mid-epoch fault: ``kind`` strikes after the host
    has processed ``offset`` packets of its shard."""

    kind: FaultKind
    offset: int


@dataclass(frozen=True)
class AggregatorFault:
    """One scheduled aggregator fault: ``kind`` strikes aggregator
    once it has *accepted* (ACKed) ``offset`` host reports this
    epoch — ``offset=0`` strikes before the first ACK."""

    kind: FaultKind
    offset: int


@dataclass
class FaultPlan:
    """A complete, seeded chaos schedule.

    Parameters
    ----------
    seed:
        Root seed; the per-``(epoch, host)`` draw derives from it alone.
    rates:
        Per-kind independent probabilities (``{"drop": 0.1, ...}``);
        each kind is drawn once per ``(epoch, host)``.
    specs:
        Explicitly pinned faults, applied *in addition to* rate draws.
    """

    seed: int = 0
    rates: dict[FaultKind, float] = field(default_factory=dict)
    specs: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        normalized: dict[FaultKind, float] = {}
        for kind, rate in self.rates.items():
            kind = FaultKind(kind)
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {kind.value!r} must be in [0, 1], "
                    f"got {rate}"
                )
            normalized[kind] = rate
        self.rates = normalized

    # ------------------------------------------------------------------
    def _rate_draws(self, epoch: int, host: int) -> list[FaultKind]:
        """Every rate-fired kind for one cell, in ``_KIND_ORDER``.

        Shared by the report-path and data-plane schedules so both
        consume the cell RNG's draw stream identically — a draw happens
        exactly when a kind's rate is positive, regardless of which
        schedule asks.
        """
        fired: list[FaultKind] = []
        if self.rates:
            rng = self.rng_for(epoch, host)
            for kind in _KIND_ORDER:
                # Aggregator kinds are drawn per (epoch, aggregator)
                # from their own salted stream; they never consume a
                # host cell draw.
                if kind in AGGREGATOR_KINDS:
                    continue
                rate = self.rates.get(kind, 0.0)
                if rate > 0.0 and rng.random() < rate:
                    fired.append(kind)
        return fired

    def schedule_for(self, epoch: int, host: int) -> list[FaultKind]:
        """The report-path faults hitting ``(epoch, host)``, in
        delivery order.

        A pure function of ``(seed, epoch, host)`` — calling it twice,
        in any order, from any process, yields the same list.  Data-
        plane kinds (and specs pinned to a packet offset) are excluded:
        they strike mid-epoch via :meth:`dataplane_schedule_for`.
        """
        faults = [
            kind
            for kind in self._rate_draws(epoch, host)
            if kind not in DATAPLANE_KINDS
            and kind not in SOCKET_KINDS
        ]
        # Pinned specs stack: each matching spec consumes one delivery
        # attempt, so listing the same spec n times injects it n times
        # (how directed tests exhaust the retry budget).
        for spec in self.specs:
            if (
                spec.matches(epoch, host)
                and spec.kind not in DATAPLANE_KINDS
                and spec.kind not in SOCKET_KINDS
                and spec.kind not in AGGREGATOR_KINDS
                and spec.packet_offset is None
            ):
                faults.append(spec.kind)
        # A crashed host never answers: every other fault is moot.
        if FaultKind.CRASH in faults:
            return [FaultKind.CRASH]
        return faults

    def socket_schedule_for(
        self, epoch: int, host: int
    ) -> list[FaultKind]:
        """The socket-layer faults hitting ``(epoch, host)``, in
        connection-attempt order.

        Same determinism contract as :meth:`schedule_for` — a pure
        function of ``(seed, epoch, host)``.  Only consulted by the
        cluster transport (``repro.cluster``); the in-process report
        path never sees these kinds.
        """
        faults = [
            kind
            for kind in self._rate_draws(epoch, host)
            if kind in SOCKET_KINDS
        ]
        for spec in self.specs:
            if spec.matches(epoch, host) and spec.kind in SOCKET_KINDS:
                faults.append(spec.kind)
        # A partitioned host cannot reach the controller at all this
        # epoch: every other socket fault is moot.
        if FaultKind.PARTITION in faults:
            return [FaultKind.PARTITION]
        return faults

    def dataplane_schedule_for(
        self, epoch: int, host: int, num_packets: int
    ) -> list[DataPlaneFault]:
        """Mid-epoch faults for ``(epoch, host)``, sorted by offset.

        Rate-fired data-plane kinds strike at a seeded offset within
        ``[0, num_packets)``; specs may pin the offset explicitly
        (clamped to the shard length).  Offsets come from a *salted*
        RNG, so adding or removing data-plane rates never perturbs the
        report-path draw stream of an existing plan.
        """
        events: list[DataPlaneFault] = []
        rng = self.offset_rng_for(epoch, host)
        for kind in self._rate_draws(epoch, host):
            if kind in DATAPLANE_KINDS:
                events.append(
                    DataPlaneFault(
                        kind,
                        rng.randrange(num_packets) if num_packets else 0,
                    )
                )
        for spec in self.specs:
            if not spec.matches(epoch, host):
                continue
            if spec.kind in AGGREGATOR_KINDS:
                continue
            if spec.packet_offset is not None:
                kind = (
                    FaultKind.DATAPLANE_CRASH
                    if spec.kind is FaultKind.CRASH
                    else spec.kind
                )
                events.append(
                    DataPlaneFault(
                        kind, min(spec.packet_offset, num_packets)
                    )
                )
            elif spec.kind in DATAPLANE_KINDS:
                events.append(
                    DataPlaneFault(
                        spec.kind,
                        rng.randrange(num_packets) if num_packets else 0,
                    )
                )
        events.sort(key=lambda event: event.offset)
        return events

    def aggregator_schedule_for(
        self, epoch: int, aggregator: int, group_size: int
    ) -> list[AggregatorFault]:
        """Faults striking ``aggregator`` in ``epoch``, sorted by
        accept-offset (the earliest strike wins; an aggregator only
        dies once per epoch).

        A pure function of ``(seed, epoch, aggregator)`` plus the
        shard's ``group_size`` (how many hosts route to it), which
        bounds the seeded strike offset so rate-fired faults land
        while reports are actually arriving.  Drawn from a dedicated
        salted stream: aggregator rates never perturb host schedules.

        Specs reuse the ``host`` field as the aggregator id and
        ``packet_offset`` as the accept-count offset.
        """
        events: list[AggregatorFault] = []
        rng = self.aggregator_rng_for(epoch, aggregator)
        for kind in _KIND_ORDER:
            if kind not in AGGREGATOR_KINDS:
                continue
            rate = self.rates.get(kind, 0.0)
            if rate > 0.0 and rng.random() < rate:
                events.append(
                    AggregatorFault(
                        kind,
                        rng.randrange(group_size) if group_size else 0,
                    )
                )
        for spec in self.specs:
            if spec.kind not in AGGREGATOR_KINDS:
                continue
            if not spec.matches(epoch, aggregator):
                continue
            if spec.packet_offset is not None:
                offset = min(spec.packet_offset, max(0, group_size))
            else:
                offset = rng.randrange(group_size) if group_size else 0
            events.append(AggregatorFault(spec.kind, offset))
        events.sort(key=lambda event: event.offset)
        return events

    def rng_for(self, epoch: int, host: int) -> random.Random:
        """Dedicated RNG for one ``(epoch, host)`` cell (also used to
        pick corruption offsets, so bit-flips are reproducible too)."""
        return random.Random(
            (self.seed & 0xFFFF_FFFF) << 32
            ^ (epoch & 0xFFFF) << 16
            ^ (host & 0xFFFF)
        )

    def offset_rng_for(self, epoch: int, host: int) -> random.Random:
        """Salted RNG for a cell's packet-offset draws, deliberately
        separate from :meth:`rng_for` so data-plane scheduling never
        consumes (or shifts) the report-path draw stream."""
        return random.Random(
            (self.seed & 0xFFFF_FFFF) << 40
            ^ (_OFFSET_SALT & 0xFFFF_FFFF) << 32
            ^ (epoch & 0xFFFF) << 16
            ^ (host & 0xFFFF)
        )

    def aggregator_rng_for(
        self, epoch: int, aggregator: int
    ) -> random.Random:
        """Salted RNG for an ``(epoch, aggregator)`` cell's fault
        draws, deliberately separate from every host stream."""
        return random.Random(
            (self.seed & 0xFFFF_FFFF) << 40
            ^ (_AGG_SALT & 0xFFFF_FFFF) << 32
            ^ (epoch & 0xFFFF) << 16
            ^ (aggregator & 0xFFFF)
        )

    @property
    def active(self) -> bool:
        """Whether this plan can ever inject anything."""
        return bool(self.specs) or any(
            rate > 0.0 for rate in self.rates.values()
        )

    # ------------------------------------------------------------------
    # JSON persistence (the ``repro run --chaos plan.json`` format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rates": {
                kind.value: rate for kind, rate in self.rates.items()
            },
            "specs": [
                {
                    "kind": spec.kind.value,
                    "epoch": spec.epoch,
                    "host": spec.host,
                    "packet_offset": spec.packet_offset,
                }
                for spec in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            specs = [
                FaultSpec(
                    kind=FaultKind(item["kind"]),
                    epoch=item.get("epoch"),
                    host=item.get("host"),
                    packet_offset=item.get("packet_offset"),
                )
                for item in data.get("specs", ())
            ]
            return cls(
                seed=int(data.get("seed", 0)),
                rates={
                    FaultKind(kind): float(rate)
                    for kind, rate in data.get("rates", {}).items()
                },
                specs=specs,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def moderate_plan(seed: int = 0) -> FaultPlan:
    """The default chaos mix: 10% per-host fault pressure, all
    *recoverable* kinds (no crashes), for soak runs that must still
    collect every report after retries."""
    return FaultPlan(
        seed=seed,
        rates={
            FaultKind.DROP: 0.04,
            FaultKind.DELAY: 0.02,
            FaultKind.TRUNCATE: 0.01,
            FaultKind.BITFLIP: 0.01,
            FaultKind.DUPLICATE: 0.01,
            FaultKind.REPLAY: 0.01,
        },
    )


def socket_plan(seed: int = 0) -> FaultPlan:
    """The default *socket* chaos mix for cluster runs: ~10% per-host
    connection-level pressure (refusals, resets, short writes, stalls)
    plus a thin partition rate, layered on a light frame-level mix.

    Partitions are the only non-recoverable kind here, so most epochs
    still reach full quorum and the rest land a ``DegradedEpoch`` —
    exactly the envelope the CI cluster leg asserts.
    """
    return FaultPlan(
        seed=seed,
        rates={
            FaultKind.CONN_REFUSED: 0.03,
            FaultKind.CONN_RESET: 0.03,
            FaultKind.PARTIAL_WRITE: 0.02,
            FaultKind.SLOW_PEER: 0.01,
            FaultKind.PARTITION: 0.02,
            FaultKind.DROP: 0.02,
            FaultKind.BITFLIP: 0.01,
            FaultKind.DUPLICATE: 0.01,
        },
    )


def failover_plan(seed: int = 0) -> FaultPlan:
    """Sustained aggregator-failure chaos for fail-over soaks: per
    epoch each aggregator carries a 15% crash / 5% hang chance, over a
    light connection-reset mix on the host side.

    With a ``ceil(sqrt(N))`` tier this kills roughly one aggregator
    every few epochs at 256 hosts — every soak run exercises detection,
    re-sharding, and redelivery, while surviving aggregators absorb the
    dead shard so no epoch is lost.
    """
    return FaultPlan(
        seed=seed,
        rates={
            FaultKind.AGG_CRASH: 0.15,
            FaultKind.AGG_HANG: 0.05,
            FaultKind.CONN_RESET: 0.03,
        },
    )


def faults_from_env() -> FaultPlan | None:
    """A moderate :class:`FaultPlan` when ``REPRO_CHAOS`` is set.

    ``REPRO_CHAOS=1`` (or any non-empty value except ``0``) enables the
    :func:`moderate_plan` mix — recoverable faults only, so the suite
    still produces full-quorum results; a numeric value other than
    ``1`` is used as the plan seed.  Returns ``None`` otherwise,
    keeping fault injection strictly opt-in (mirrors
    ``REPRO_TELEMETRY``).
    """
    flag = os.environ.get("REPRO_CHAOS", "")
    if not flag or flag == "0":
        return None
    try:
        seed = int(flag)
    except ValueError:
        seed = 0
    return moderate_plan(seed=0 if seed == 1 else seed)
