"""Seeded fault injection for the host → controller path.

SketchVisor promises *robust* measurement, so the reproduction must
survive the failure envelope a real deployment sees: lost, delayed,
truncated, bit-flipped, duplicated, and replayed reports, plus hosts
that crash mid-epoch.  This package supplies the chaos side of that
contract:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, deterministic
  schedule of per-epoch, per-host faults (rate-sampled and/or pinned),
  serializable to JSON for ``repro run --chaos plan.json``;
* :class:`~repro.faults.injector.FaultInjector` — applies the plan to
  wire frames (truncation, bit-flips, stale replays) and counts what
  it injected.

The defence side lives where the attacks land:
:class:`~repro.controlplane.transport.ReportCollector` (retry /
backoff / dedup), the controller's degraded-mode merge, and the
pipeline's worker-crash fallback.  With no plan configured the whole
subsystem is inert — zero-fault runs are bit-identical to a build
without it.  See ``docs/robustness.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    AGGREGATOR_KINDS,
    DATAPLANE_KINDS,
    RETRIABLE_KINDS,
    SOCKET_KINDS,
    AggregatorFault,
    DataPlaneFault,
    FaultKind,
    FaultPlan,
    FaultSpec,
    failover_plan,
    faults_from_env,
    moderate_plan,
    socket_plan,
)

__all__ = [
    "AGGREGATOR_KINDS",
    "AggregatorFault",
    "DATAPLANE_KINDS",
    "DataPlaneFault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RETRIABLE_KINDS",
    "SOCKET_KINDS",
    "failover_plan",
    "faults_from_env",
    "moderate_plan",
    "socket_plan",
]
