"""Applying a :class:`~repro.faults.plan.FaultPlan` to wire frames.

The injector sits between ``encode_report`` and the collector's decode
loop and perturbs *bytes on the wire* — it never touches sketches or
reports, so the layers it attacks must defend themselves exactly as
they would against a flaky network.  Everything it does is derived
from the plan's seeded RNG: the same plan corrupts the same bit of the
same frame every run.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.faults.plan import AggregatorFault, FaultKind, FaultPlan

#: Salt mixed into the corruption RNG so byte/bit choices do not reuse
#: the schedule's draw stream.
_CORRUPT_SALT = 0xC0DE_FA17


class FaultInjector:
    """Stateful executor for one :class:`FaultPlan`.

    The only state it keeps is the last successfully delivered frame
    per host (fuel for stale-epoch replays) and counters of what it
    actually injected (exposed as :attr:`injected` for telemetry and
    soak assertions).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Counter[str] = Counter()
        self._last_frames: dict[int, bytes] = {}

    # ------------------------------------------------------------------
    def schedule(self, epoch: int, host: int) -> list[FaultKind]:
        """The plan's fault list for one ``(epoch, host)`` cell."""
        return self.plan.schedule_for(epoch, host)

    def socket_schedule(self, epoch: int, host: int) -> list[FaultKind]:
        """The plan's connection-level fault list for one cell (empty
        for pre-cluster plans; see
        :meth:`~repro.faults.plan.FaultPlan.socket_schedule_for`)."""
        return self.plan.socket_schedule_for(epoch, host)

    def aggregator_schedule(
        self, epoch: int, aggregator: int, group_size: int
    ) -> list[AggregatorFault]:
        """The plan's aggregator fault list for one ``(epoch,
        aggregator)`` cell (empty for pre-failover plans; see
        :meth:`~repro.faults.plan.FaultPlan.aggregator_schedule_for`)."""
        return self.plan.aggregator_schedule_for(
            epoch, aggregator, group_size
        )

    def record(self, kind: FaultKind) -> None:
        """Count one injected fault (called by the collector as each
        fault actually fires)."""
        self.injected[kind.value] += 1

    # ------------------------------------------------------------------
    # Frame perturbations
    # ------------------------------------------------------------------
    def _rng(self, epoch: int, host: int, attempt: int) -> random.Random:
        return random.Random(
            (self.plan.seed & 0xFFFF_FFFF) << 48
            ^ (epoch & 0xFFFF) << 32
            ^ (host & 0xFFFF) << 16
            ^ (attempt & 0xFF) << 8
            ^ _CORRUPT_SALT
        )

    def truncate(
        self, frame: bytes, epoch: int, host: int, attempt: int = 0
    ) -> bytes:
        """Cut the frame short at a seeded offset (at least 1 byte
        lost, possibly the whole payload)."""
        rng = self._rng(epoch, host, attempt)
        if len(frame) <= 1:
            return b""
        return frame[: rng.randrange(1, len(frame))]

    def bitflip(
        self, frame: bytes, epoch: int, host: int, attempt: int = 0
    ) -> bytes:
        """Flip one seeded bit anywhere in the frame — header fields
        and payload are equally fair game."""
        rng = self._rng(epoch, host, attempt)
        corrupted = bytearray(frame)
        position = rng.randrange(len(corrupted))
        corrupted[position] ^= 1 << rng.randrange(8)
        return bytes(corrupted)

    # ------------------------------------------------------------------
    # Stale-epoch replay support
    # ------------------------------------------------------------------
    def remember(self, host: int, frame: bytes) -> None:
        """Cache a host's delivered frame as replay fuel for later
        epochs (the collector calls this on every clean delivery)."""
        self._last_frames[host] = frame

    def stale_frame(self, host: int) -> bytes | None:
        """A previous epoch's frame for ``host``, or ``None`` when the
        host has never delivered (replay then degrades to a drop)."""
        return self._last_frames.get(host)
