"""The ``repro dash`` surfaces: live epoch dashboard + HTML report.

Two renderings of the same per-epoch history:

* a **live terminal view** — one frame per epoch (sparkline trends,
  accuracy gauge digest, SLO breach count) painted in place on a TTY
  and appended plainly when piped;
* a **self-contained HTML report** for post-run analysis — inline SVG
  trend charts (one metric per chart, crosshair + tooltip, dark-mode
  aware, no external dependencies) over the full epoch table.

Both consume ``epoch_row`` dicts distilled from
:class:`~repro.framework.pipeline.EpochResult` objects, so any driver
(the CLI's generated epoch stream, a notebook loop) can feed them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.reporting import dashboard_frame, metrics_summary

#: Fields of one epoch row, in display order: key, label, unit format.
EPOCH_FIELDS: tuple[tuple[str, str, str], ...] = (
    ("throughput_gbps", "Throughput", "Gbps"),
    ("relative_error", "Relative error", ""),
    ("recall", "Recall", ""),
    ("precision", "Precision", ""),
    ("fastpath_byte_fraction", "Fast-path byte share", ""),
    ("slo_breaches", "SLO breaches", ""),
    ("missing_hosts", "Missing hosts", ""),
)


def epoch_row(result) -> dict[str, float]:
    """Distil one :class:`EpochResult` into a numeric dashboard row."""
    score = result.score
    degraded = result.network.degraded
    return {
        "throughput_gbps": result.throughput_gbps,
        "relative_error": (
            score.relative_error
            if score.relative_error is not None
            else None
        ),
        "recall": score.recall,
        "precision": score.precision,
        "fastpath_byte_fraction": result.fastpath_byte_fraction,
        "slo_breaches": float(len(result.slo_breaches)),
        "missing_hosts": float(
            len(degraded.missing_hosts) if degraded is not None else 0
        ),
    }


def paint_live_frame(
    rows, registry=None, stream=None, repaint: bool | None = None
) -> None:
    """Print one dashboard frame; repaint in place on a TTY."""
    stream = stream or sys.stdout
    if repaint is None:
        repaint = stream.isatty()
    frame = dashboard_frame(
        [
            {k: v for k, v in row.items() if v is not None}
            for row in rows
        ],
        registry,
    )
    if repaint:
        # Home the cursor and clear below, so the frame redraws in
        # place instead of scrolling.
        stream.write("\x1b[H\x1b[J")
    stream.write(frame + "\n")
    if not repaint:
        stream.write("\n")
    stream.flush()


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3e0;
  --series-1: #2a78d6;
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #33332f;
    --series-1: #3987e5;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.charts { display: flex; flex-wrap: wrap; gap: 24px; }
.chart { width: 360px; }
.chart h2 {
  font-size: 13px; font-weight: 600; margin: 0 0 2px;
}
.chart .latest { color: var(--text-secondary); font-size: 12px;
  margin: 0 0 6px; }
svg { display: block; overflow: visible; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.axis-text { fill: var(--text-secondary); font-size: 10px;
  font-variant-numeric: tabular-nums; }
.series-line { stroke: var(--series-1); stroke-width: 2;
  fill: none; stroke-linejoin: round; stroke-linecap: round; }
.series-area { fill: var(--series-1); opacity: 0.1; }
.series-dot { fill: var(--series-1); stroke: var(--surface-1);
  stroke-width: 2; }
.series-bar { fill: var(--series-1); }
.series-bar.hover { opacity: 0.75; }
.crosshair { stroke: var(--grid); stroke-width: 1;
  visibility: hidden; }
.tooltip {
  position: fixed; pointer-events: none; visibility: hidden;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--grid); border-radius: 4px;
  padding: 4px 8px; font-size: 12px; z-index: 2;
}
.tooltip .value { font-weight: 600; }
.tooltip .label { color: var(--text-secondary); margin-left: 6px; }
section { margin-top: 28px; }
section h2 { font-size: 15px; }
pre.summary {
  color: var(--text-secondary); font-size: 12px; overflow-x: auto;
}
table { border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 3px 10px;
  border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
</style>
</head>
<body class="viz-root">
<h1>__TITLE__</h1>
<p class="sub">__SUBTITLE__</p>
<div class="charts" id="charts"></div>
<section>
<h2>Accuracy &amp; telemetry digest</h2>
<pre class="summary">__SUMMARY__</pre>
</section>
<section>
<h2>Per-epoch table</h2>
__TABLE__
</section>
<div class="tooltip" id="tooltip"></div>
<script type="application/json" id="dash-data">__DATA__</script>
<script>
"use strict";
const DATA = JSON.parse(
  document.getElementById("dash-data").textContent);
const tooltip = document.getElementById("tooltip");
const W = 360, H = 160, PAD = {top: 8, right: 14, bottom: 22, left: 44};
const SVGNS = "http://www.w3.org/2000/svg";

function el(tag, attrs, parent) {
  const node = document.createElementNS(SVGNS, tag);
  for (const [k, v] of Object.entries(attrs)) {
    node.setAttribute(k, v);
  }
  if (parent) parent.appendChild(node);
  return node;
}

function fmt(value) {
  if (value === null || value === undefined) return "–";
  if (Math.abs(value) >= 1000) {
    return value.toLocaleString(undefined,
      {maximumFractionDigits: 0});
  }
  return Number.isInteger(value) ? String(value)
    : value.toPrecision(3);
}

function ticks(max) {
  if (max <= 0) return [0, 1];
  const step = Math.pow(10, Math.floor(Math.log10(max)));
  const scaled = max / step;
  const unit = scaled <= 2 ? step / 2 : scaled <= 5 ? step : 2 * step;
  const out = [];
  for (let v = 0; v <= max + 1e-9; v += unit) out.push(v);
  return out.length > 1 ? out : [0, max];
}

function showTooltip(event, valueText, labelText) {
  tooltip.textContent = "";
  const value = document.createElement("span");
  value.className = "value";
  value.textContent = valueText;
  const label = document.createElement("span");
  label.className = "label";
  label.textContent = labelText;
  tooltip.append(value, label);
  tooltip.style.visibility = "visible";
  tooltip.style.left = (event.clientX + 14) + "px";
  tooltip.style.top = (event.clientY - 10) + "px";
}

function hideTooltip() { tooltip.style.visibility = "hidden"; }

function buildChart(metric) {
  const values = DATA.rows.map(r => r[metric.key]);
  if (!values.some(v => v !== null && v !== undefined)) return;
  const card = document.createElement("div");
  card.className = "chart";
  const title = document.createElement("h2");
  title.textContent = metric.label +
    (metric.unit ? " (" + metric.unit + ")" : "");
  const latest = document.createElement("p");
  latest.className = "latest";
  latest.textContent = "latest: " +
    fmt(values[values.length - 1]);
  card.append(title, latest);
  const svg = el("svg", {
    width: W, height: H, role: "img",
    "aria-label": metric.label + " per epoch",
  }, null);
  card.appendChild(svg);
  document.getElementById("charts").appendChild(card);

  const n = values.length;
  const innerW = W - PAD.left - PAD.right;
  const innerH = H - PAD.top - PAD.bottom;
  const max = Math.max(...values.filter(v => v !== null), 0);
  const yTicks = ticks(max);
  const yMax = yTicks[yTicks.length - 1] || 1;
  const x = i => PAD.left +
    (n > 1 ? (i / (n - 1)) * innerW : innerW / 2);
  const y = v => PAD.top + innerH - (v / yMax) * innerH;

  for (const tick of yTicks) {
    el("line", {class: "gridline", x1: PAD.left, x2: W - PAD.right,
      y1: y(tick), y2: y(tick)}, svg);
    const text = el("text", {class: "axis-text", x: PAD.left - 6,
      y: y(tick) + 3, "text-anchor": "end"}, svg);
    text.textContent = fmt(tick);
  }
  const xStep = Math.max(1, Math.ceil(n / 6));
  for (let i = 0; i < n; i += xStep) {
    const text = el("text", {class: "axis-text", x: x(i),
      y: H - 6, "text-anchor": "middle"}, svg);
    text.textContent = String(i);
  }

  if (metric.kind === "bar") {
    const band = n > 0 ? innerW / n : innerW;
    const width = Math.min(24, Math.max(2, band - 2));
    values.forEach((v, i) => {
      if (v === null || v === undefined) return;
      const cx = x(i), top = y(v), bottom = y(0);
      const h = Math.max(bottom - top, 0);
      const r = Math.min(4, width / 2, h);
      const bar = el("path", {
        class: "series-bar",
        d: "M" + (cx - width / 2) + " " + bottom +
           "V" + (top + r) +
           "Q" + (cx - width / 2) + " " + top + " " +
           (cx - width / 2 + r) + " " + top +
           "H" + (cx + width / 2 - r) +
           "Q" + (cx + width / 2) + " " + top + " " +
           (cx + width / 2) + " " + (top + r) +
           "V" + bottom + "Z",
      }, svg);
      const hit = el("rect", {
        x: cx - Math.max(width, 24) / 2, y: PAD.top,
        width: Math.max(width, 24), height: innerH,
        fill: "transparent",
      }, svg);
      hit.addEventListener("pointermove", e => {
        bar.classList.add("hover");
        showTooltip(e, fmt(v), metric.label + " · epoch " + i);
      });
      hit.addEventListener("pointerleave", () => {
        bar.classList.remove("hover");
        hideTooltip();
      });
    });
    return;
  }

  const points = values
    .map((v, i) => (v === null || v === undefined)
      ? null : [x(i), y(v)])
    .filter(Boolean);
  if (points.length > 1) {
    const lineD = points.map((p, i) =>
      (i ? "L" : "M") + p[0] + " " + p[1]).join("");
    el("path", {class: "series-area",
      d: lineD + "L" + points[points.length - 1][0] + " " + y(0) +
         "L" + points[0][0] + " " + y(0) + "Z"}, svg);
    el("path", {class: "series-line", d: lineD}, svg);
  }
  const last = points[points.length - 1];
  el("circle", {class: "series-dot", cx: last[0], cy: last[1],
    r: 4}, svg);

  const crosshair = el("line", {class: "crosshair", y1: PAD.top,
    y2: PAD.top + innerH, x1: 0, x2: 0}, svg);
  const focusDot = el("circle", {class: "series-dot", r: 4,
    visibility: "hidden"}, svg);
  svg.addEventListener("pointermove", e => {
    const rect = svg.getBoundingClientRect();
    const px = e.clientX - rect.left;
    let best = 0;
    for (let i = 1; i < n; i++) {
      if (Math.abs(x(i) - px) < Math.abs(x(best) - px)) best = i;
    }
    const v = values[best];
    if (v === null || v === undefined) return;
    crosshair.setAttribute("x1", x(best));
    crosshair.setAttribute("x2", x(best));
    crosshair.style.visibility = "visible";
    focusDot.setAttribute("cx", x(best));
    focusDot.setAttribute("cy", y(v));
    focusDot.style.visibility = "visible";
    showTooltip(e, fmt(v), metric.label + " · epoch " + best);
  });
  svg.addEventListener("pointerleave", () => {
    crosshair.style.visibility = "hidden";
    focusDot.style.visibility = "hidden";
    hideTooltip();
  });
}

for (const metric of DATA.metrics) buildChart(metric);
</script>
</body>
</html>
"""


def _html_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _epoch_table(rows) -> str:
    columns = [
        (key, label)
        for key, label, _unit in EPOCH_FIELDS
        if any(row.get(key) is not None for row in rows)
    ]
    header = "".join(
        f"<th scope=\"col\">{_html_escape(label)}</th>"
        for _key, label in columns
    )
    body = []
    for index, row in enumerate(rows):
        cells = "".join(
            "<td>{}</td>".format(
                "–"
                if row.get(key) is None
                else f"{row[key]:.4g}"
            )
            for key, _label in columns
        )
        body.append(f"<tr><td>{index}</td>{cells}</tr>")
    return (
        "<table><thead><tr><th scope=\"col\">Epoch</th>"
        + header
        + "</tr></thead><tbody>"
        + "".join(body)
        + "</tbody></table>"
    )


def html_report(
    rows,
    registry=None,
    title: str = "SketchVisor run report",
    subtitle: str = "",
) -> str:
    """Render the epoch history as a self-contained HTML document."""
    metrics = [
        {
            "key": key,
            "label": label,
            "unit": unit,
            "kind": (
                "bar"
                if key in ("slo_breaches", "missing_hosts")
                else "line"
            ),
        }
        for key, label, unit in EPOCH_FIELDS
    ]
    data = {
        "metrics": metrics,
        "rows": [
            {
                key: (None if row.get(key) is None else row[key])
                for key, _label, _unit in EPOCH_FIELDS
            }
            for row in rows
        ],
    }
    summary = (
        metrics_summary(registry) if registry is not None else ""
    )
    # The JSON payload lives inside a <script> element: escape the
    # only sequence that could terminate it early.
    payload = json.dumps(data).replace("</", "<\\/")
    return (
        _HTML_TEMPLATE.replace("__TITLE__", _html_escape(title))
        .replace("__SUBTITLE__", _html_escape(subtitle))
        .replace("__SUMMARY__", _html_escape(summary))
        .replace("__TABLE__", _epoch_table(rows))
        .replace("__DATA__", payload)
    )


def write_html_report(
    path: str | Path,
    rows,
    registry=None,
    title: str = "SketchVisor run report",
    subtitle: str = "",
) -> Path:
    destination = Path(path)
    destination.write_text(
        html_report(rows, registry, title=title, subtitle=subtitle)
    )
    return destination


# ----------------------------------------------------------------------
# Flamegraph (profiler folded stacks → dependency-free SVG/HTML)
# ----------------------------------------------------------------------
#: Sequential single-hue blue ramp, light→dark, cycled by frame depth.
#: Each step pairs the rect fill with the ink that stays readable on
#: it; the dark-mode ramp is its own selection against the dark
#: surface, not an automatic flip.
_FLAME_LIGHT = (
    ("#dce9f9", "#0b0b0b"),
    ("#bcd5f3", "#0b0b0b"),
    ("#9ac0ec", "#0b0b0b"),
    ("#76a9e4", "#0b0b0b"),
    ("#4d90dc", "#ffffff"),
    ("#2a78d6", "#ffffff"),
)
_FLAME_DARK = (
    ("#21405f", "#ffffff"),
    ("#2a5580", "#ffffff"),
    ("#336aa5", "#ffffff"),
    ("#3c80c8", "#ffffff"),
    ("#3987e5", "#ffffff"),
    ("#79abee", "#0b0b0b"),
)

_FLAME_ROW_H = 18
_FLAME_CHAR_W = 6.6  # approximate glyph advance at font-size 11


def _flame_tree(folded: dict[str, int]) -> tuple[dict, int]:
    """Merge ``"a;b;c" -> count`` folded stacks into a frame trie."""
    root: dict = {"name": "all", "value": 0, "children": {}}
    for stack, count in folded.items():
        if count <= 0:
            continue
        root["value"] += count
        node = root
        for frame in stack.split(";"):
            child = node["children"].setdefault(
                frame, {"name": frame, "value": 0, "children": {}}
            )
            child["value"] += count
            node = child
    return root, root["value"]


def _flame_depth(node: dict) -> int:
    if not node["children"]:
        return 1
    return 1 + max(
        _flame_depth(child) for child in node["children"].values()
    )


def _flame_rects(
    node: dict,
    x: float,
    depth: int,
    total: int,
    width: float,
    out: list[str],
) -> None:
    px = node["value"] / total * width
    if px < 1.0:  # sub-pixel frames are noise, not signal
        return
    share = node["value"] / total * 100.0
    y = depth * _FLAME_ROW_H
    step = depth % len(_FLAME_LIGHT)
    name = _html_escape(node["name"])
    tooltip = (
        f"{name} — {node['value']:,} samples ({share:.1f}%)"
    )
    out.append(
        f'<g class="frame"><rect class="fg-d{step}" '
        f'x="{x:.2f}" y="{y}" width="{px:.2f}" '
        f'height="{_FLAME_ROW_H - 1}" rx="2">'
        f"<title>{tooltip}</title></rect>"
    )
    budget = int((px - 6) / _FLAME_CHAR_W)
    if budget >= 3:
        label = node["name"]
        if len(label) > budget:
            label = label[: max(budget - 1, 1)] + "…"
        out.append(
            f'<text class="fg-t{step}" x="{x + 3:.2f}" '
            f'y="{y + _FLAME_ROW_H - 6}">'
            f"{_html_escape(label)}</text>"
        )
    out.append("</g>")
    child_x = x
    children = sorted(
        node["children"].values(),
        key=lambda c: (-c["value"], c["name"]),
    )
    for child in children:
        _flame_rects(child, child_x, depth + 1, total, width, out)
        child_x += child["value"] / total * width


def flamegraph_svg(
    folded: dict[str, int],
    title: str = "CPU flamegraph",
    width: int = 1184,
) -> str:
    """Render profiler folded stacks as a self-contained SVG.

    ``folded`` maps ``"stage;frame;…;leaf"`` stacks to sample counts
    (:attr:`repro.telemetry.profiling.Profiler.folded`).  Frame width
    is the stack's share of all samples; depth cycles a sequential
    single-hue blue ramp; every frame carries a native ``<title>``
    hover tooltip with name, samples, and percentage.  The SVG embeds
    its own stylesheet (dark-mode aware), so it is equally readable
    saved standalone or inlined into an HTML page.
    """
    root, total = _flame_tree(folded)
    if total == 0:
        height = 2 * _FLAME_ROW_H
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" role="img" '
            f'width="{width}" height="{height}" '
            f'aria-label="{_html_escape(title)}: no samples">'
            f"{_flame_style()}"
            f'<text class="fg-empty" x="4" y="{_FLAME_ROW_H}">'
            "No profile samples recorded (is profiling enabled and "
            "the workload long enough to sample?)</text></svg>"
        )
    depth = _flame_depth(root)
    height = depth * _FLAME_ROW_H + 4
    rects: list[str] = []
    _flame_rects(root, 0.0, 0, total, float(width), rects)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" role="img" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'aria-label="{_html_escape(title)}">'
        f"{_flame_style()}" + "".join(rects) + "</svg>"
    )


def _flame_style() -> str:
    rules = ["svg { font: 11px system-ui, sans-serif; }"]
    for i, (fill, ink) in enumerate(_FLAME_LIGHT):
        rules.append(f".fg-d{i} {{ fill: {fill}; }}")
        rules.append(
            f".fg-t{i} {{ fill: {ink}; pointer-events: none; }}"
        )
    rules.append(".fg-empty { fill: #52514e; }")
    dark = ["@media (prefers-color-scheme: dark) {"]
    for i, (fill, ink) in enumerate(_FLAME_DARK):
        dark.append(f".fg-d{i} {{ fill: {fill}; }}")
        dark.append(f".fg-t{i} {{ fill: {ink}; }}")
    dark.append(".fg-empty { fill: #c3c2b7; }")
    dark.append("}")
    return "<style>" + "\n".join(rules + dark) + "</style>"


_FLAME_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3e0;
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #33332f;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.flame { overflow-x: auto; }
section { margin-top: 28px; }
section h2 { font-size: 15px; }
table { border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 3px 10px;
  border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
</style>
</head>
<body class="viz-root">
<h1>__TITLE__</h1>
<p class="sub">__SUBTITLE__</p>
<div class="flame">__SVG__</div>
__STAGES__
</body>
</html>
"""


def _stage_section(stage_table: dict[str, dict] | None) -> str:
    if not stage_table:
        return ""
    rows = []
    for name, row in stage_table.items():
        rows.append(
            f"<tr><td>{_html_escape(name)}</td>"
            f"<td>{row['wall_seconds']:.4f}</td>"
            f"<td>{row['cpu_seconds']:.4f}</td>"
            f"<td>{row['count']}</td></tr>"
        )
    return (
        "<section><h2>Stage totals</h2>"
        "<table><thead><tr><th scope=\"col\">Stage</th>"
        "<th scope=\"col\">Wall s</th><th scope=\"col\">CPU s</th>"
        "<th scope=\"col\">Calls</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table></section>"
    )


def flamegraph_html(
    folded: dict[str, int],
    title: str = "CPU flamegraph",
    subtitle: str = "",
    stage_table: dict[str, dict] | None = None,
) -> str:
    """Wrap :func:`flamegraph_svg` in a standalone HTML page.

    ``stage_table`` (from
    :meth:`~repro.telemetry.profiling.Profiler.stage_table`) adds a
    wall/CPU/calls table under the graph.
    """
    return (
        _FLAME_HTML_TEMPLATE.replace(
            "__TITLE__", _html_escape(title)
        )
        .replace("__SUBTITLE__", _html_escape(subtitle))
        .replace("__SVG__", flamegraph_svg(folded, title=title))
        .replace("__STAGES__", _stage_section(stage_table))
    )


def write_flamegraph(
    path: str | Path,
    folded: dict[str, int],
    title: str = "CPU flamegraph",
    subtitle: str = "",
    stage_table: dict[str, dict] | None = None,
) -> Path:
    """Write the flamegraph; ``.svg`` suffix → bare SVG, else HTML."""
    destination = Path(path)
    if destination.suffix == ".svg":
        destination.write_text(flamegraph_svg(folded, title=title))
    else:
        destination.write_text(
            flamegraph_html(
                folded,
                title=title,
                subtitle=subtitle,
                stage_table=stage_table,
            )
        )
    return destination
