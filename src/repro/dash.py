"""The ``repro dash`` surfaces: live epoch dashboard + HTML report.

Two renderings of the same per-epoch history:

* a **live terminal view** — one frame per epoch (sparkline trends,
  accuracy gauge digest, SLO breach count) painted in place on a TTY
  and appended plainly when piped;
* a **self-contained HTML report** for post-run analysis — inline SVG
  trend charts (one metric per chart, crosshair + tooltip, dark-mode
  aware, no external dependencies) over the full epoch table.

Both consume ``epoch_row`` dicts distilled from
:class:`~repro.framework.pipeline.EpochResult` objects, so any driver
(the CLI's generated epoch stream, a notebook loop) can feed them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.reporting import dashboard_frame, metrics_summary

#: Fields of one epoch row, in display order: key, label, unit format.
EPOCH_FIELDS: tuple[tuple[str, str, str], ...] = (
    ("throughput_gbps", "Throughput", "Gbps"),
    ("relative_error", "Relative error", ""),
    ("recall", "Recall", ""),
    ("precision", "Precision", ""),
    ("fastpath_byte_fraction", "Fast-path byte share", ""),
    ("slo_breaches", "SLO breaches", ""),
    ("missing_hosts", "Missing hosts", ""),
)


def epoch_row(result) -> dict[str, float]:
    """Distil one :class:`EpochResult` into a numeric dashboard row."""
    score = result.score
    degraded = result.network.degraded
    return {
        "throughput_gbps": result.throughput_gbps,
        "relative_error": (
            score.relative_error
            if score.relative_error is not None
            else None
        ),
        "recall": score.recall,
        "precision": score.precision,
        "fastpath_byte_fraction": result.fastpath_byte_fraction,
        "slo_breaches": float(len(result.slo_breaches)),
        "missing_hosts": float(
            len(degraded.missing_hosts) if degraded is not None else 0
        ),
    }


def paint_live_frame(
    rows, registry=None, stream=None, repaint: bool | None = None
) -> None:
    """Print one dashboard frame; repaint in place on a TTY."""
    stream = stream or sys.stdout
    if repaint is None:
        repaint = stream.isatty()
    frame = dashboard_frame(
        [
            {k: v for k, v in row.items() if v is not None}
            for row in rows
        ],
        registry,
    )
    if repaint:
        # Home the cursor and clear below, so the frame redraws in
        # place instead of scrolling.
        stream.write("\x1b[H\x1b[J")
    stream.write(frame + "\n")
    if not repaint:
        stream.write("\n")
    stream.flush()


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3e0;
  --series-1: #2a78d6;
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #33332f;
    --series-1: #3987e5;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.charts { display: flex; flex-wrap: wrap; gap: 24px; }
.chart { width: 360px; }
.chart h2 {
  font-size: 13px; font-weight: 600; margin: 0 0 2px;
}
.chart .latest { color: var(--text-secondary); font-size: 12px;
  margin: 0 0 6px; }
svg { display: block; overflow: visible; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.axis-text { fill: var(--text-secondary); font-size: 10px;
  font-variant-numeric: tabular-nums; }
.series-line { stroke: var(--series-1); stroke-width: 2;
  fill: none; stroke-linejoin: round; stroke-linecap: round; }
.series-area { fill: var(--series-1); opacity: 0.1; }
.series-dot { fill: var(--series-1); stroke: var(--surface-1);
  stroke-width: 2; }
.series-bar { fill: var(--series-1); }
.series-bar.hover { opacity: 0.75; }
.crosshair { stroke: var(--grid); stroke-width: 1;
  visibility: hidden; }
.tooltip {
  position: fixed; pointer-events: none; visibility: hidden;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--grid); border-radius: 4px;
  padding: 4px 8px; font-size: 12px; z-index: 2;
}
.tooltip .value { font-weight: 600; }
.tooltip .label { color: var(--text-secondary); margin-left: 6px; }
section { margin-top: 28px; }
section h2 { font-size: 15px; }
pre.summary {
  color: var(--text-secondary); font-size: 12px; overflow-x: auto;
}
table { border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 3px 10px;
  border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
</style>
</head>
<body class="viz-root">
<h1>__TITLE__</h1>
<p class="sub">__SUBTITLE__</p>
<div class="charts" id="charts"></div>
<section>
<h2>Accuracy &amp; telemetry digest</h2>
<pre class="summary">__SUMMARY__</pre>
</section>
<section>
<h2>Per-epoch table</h2>
__TABLE__
</section>
<div class="tooltip" id="tooltip"></div>
<script type="application/json" id="dash-data">__DATA__</script>
<script>
"use strict";
const DATA = JSON.parse(
  document.getElementById("dash-data").textContent);
const tooltip = document.getElementById("tooltip");
const W = 360, H = 160, PAD = {top: 8, right: 14, bottom: 22, left: 44};
const SVGNS = "http://www.w3.org/2000/svg";

function el(tag, attrs, parent) {
  const node = document.createElementNS(SVGNS, tag);
  for (const [k, v] of Object.entries(attrs)) {
    node.setAttribute(k, v);
  }
  if (parent) parent.appendChild(node);
  return node;
}

function fmt(value) {
  if (value === null || value === undefined) return "–";
  if (Math.abs(value) >= 1000) {
    return value.toLocaleString(undefined,
      {maximumFractionDigits: 0});
  }
  return Number.isInteger(value) ? String(value)
    : value.toPrecision(3);
}

function ticks(max) {
  if (max <= 0) return [0, 1];
  const step = Math.pow(10, Math.floor(Math.log10(max)));
  const scaled = max / step;
  const unit = scaled <= 2 ? step / 2 : scaled <= 5 ? step : 2 * step;
  const out = [];
  for (let v = 0; v <= max + 1e-9; v += unit) out.push(v);
  return out.length > 1 ? out : [0, max];
}

function showTooltip(event, valueText, labelText) {
  tooltip.textContent = "";
  const value = document.createElement("span");
  value.className = "value";
  value.textContent = valueText;
  const label = document.createElement("span");
  label.className = "label";
  label.textContent = labelText;
  tooltip.append(value, label);
  tooltip.style.visibility = "visible";
  tooltip.style.left = (event.clientX + 14) + "px";
  tooltip.style.top = (event.clientY - 10) + "px";
}

function hideTooltip() { tooltip.style.visibility = "hidden"; }

function buildChart(metric) {
  const values = DATA.rows.map(r => r[metric.key]);
  if (!values.some(v => v !== null && v !== undefined)) return;
  const card = document.createElement("div");
  card.className = "chart";
  const title = document.createElement("h2");
  title.textContent = metric.label +
    (metric.unit ? " (" + metric.unit + ")" : "");
  const latest = document.createElement("p");
  latest.className = "latest";
  latest.textContent = "latest: " +
    fmt(values[values.length - 1]);
  card.append(title, latest);
  const svg = el("svg", {
    width: W, height: H, role: "img",
    "aria-label": metric.label + " per epoch",
  }, null);
  card.appendChild(svg);
  document.getElementById("charts").appendChild(card);

  const n = values.length;
  const innerW = W - PAD.left - PAD.right;
  const innerH = H - PAD.top - PAD.bottom;
  const max = Math.max(...values.filter(v => v !== null), 0);
  const yTicks = ticks(max);
  const yMax = yTicks[yTicks.length - 1] || 1;
  const x = i => PAD.left +
    (n > 1 ? (i / (n - 1)) * innerW : innerW / 2);
  const y = v => PAD.top + innerH - (v / yMax) * innerH;

  for (const tick of yTicks) {
    el("line", {class: "gridline", x1: PAD.left, x2: W - PAD.right,
      y1: y(tick), y2: y(tick)}, svg);
    const text = el("text", {class: "axis-text", x: PAD.left - 6,
      y: y(tick) + 3, "text-anchor": "end"}, svg);
    text.textContent = fmt(tick);
  }
  const xStep = Math.max(1, Math.ceil(n / 6));
  for (let i = 0; i < n; i += xStep) {
    const text = el("text", {class: "axis-text", x: x(i),
      y: H - 6, "text-anchor": "middle"}, svg);
    text.textContent = String(i);
  }

  if (metric.kind === "bar") {
    const band = n > 0 ? innerW / n : innerW;
    const width = Math.min(24, Math.max(2, band - 2));
    values.forEach((v, i) => {
      if (v === null || v === undefined) return;
      const cx = x(i), top = y(v), bottom = y(0);
      const h = Math.max(bottom - top, 0);
      const r = Math.min(4, width / 2, h);
      const bar = el("path", {
        class: "series-bar",
        d: "M" + (cx - width / 2) + " " + bottom +
           "V" + (top + r) +
           "Q" + (cx - width / 2) + " " + top + " " +
           (cx - width / 2 + r) + " " + top +
           "H" + (cx + width / 2 - r) +
           "Q" + (cx + width / 2) + " " + top + " " +
           (cx + width / 2) + " " + (top + r) +
           "V" + bottom + "Z",
      }, svg);
      const hit = el("rect", {
        x: cx - Math.max(width, 24) / 2, y: PAD.top,
        width: Math.max(width, 24), height: innerH,
        fill: "transparent",
      }, svg);
      hit.addEventListener("pointermove", e => {
        bar.classList.add("hover");
        showTooltip(e, fmt(v), metric.label + " · epoch " + i);
      });
      hit.addEventListener("pointerleave", () => {
        bar.classList.remove("hover");
        hideTooltip();
      });
    });
    return;
  }

  const points = values
    .map((v, i) => (v === null || v === undefined)
      ? null : [x(i), y(v)])
    .filter(Boolean);
  if (points.length > 1) {
    const lineD = points.map((p, i) =>
      (i ? "L" : "M") + p[0] + " " + p[1]).join("");
    el("path", {class: "series-area",
      d: lineD + "L" + points[points.length - 1][0] + " " + y(0) +
         "L" + points[0][0] + " " + y(0) + "Z"}, svg);
    el("path", {class: "series-line", d: lineD}, svg);
  }
  const last = points[points.length - 1];
  el("circle", {class: "series-dot", cx: last[0], cy: last[1],
    r: 4}, svg);

  const crosshair = el("line", {class: "crosshair", y1: PAD.top,
    y2: PAD.top + innerH, x1: 0, x2: 0}, svg);
  const focusDot = el("circle", {class: "series-dot", r: 4,
    visibility: "hidden"}, svg);
  svg.addEventListener("pointermove", e => {
    const rect = svg.getBoundingClientRect();
    const px = e.clientX - rect.left;
    let best = 0;
    for (let i = 1; i < n; i++) {
      if (Math.abs(x(i) - px) < Math.abs(x(best) - px)) best = i;
    }
    const v = values[best];
    if (v === null || v === undefined) return;
    crosshair.setAttribute("x1", x(best));
    crosshair.setAttribute("x2", x(best));
    crosshair.style.visibility = "visible";
    focusDot.setAttribute("cx", x(best));
    focusDot.setAttribute("cy", y(v));
    focusDot.style.visibility = "visible";
    showTooltip(e, fmt(v), metric.label + " · epoch " + best);
  });
  svg.addEventListener("pointerleave", () => {
    crosshair.style.visibility = "hidden";
    focusDot.style.visibility = "hidden";
    hideTooltip();
  });
}

for (const metric of DATA.metrics) buildChart(metric);
</script>
</body>
</html>
"""


def _html_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _epoch_table(rows) -> str:
    columns = [
        (key, label)
        for key, label, _unit in EPOCH_FIELDS
        if any(row.get(key) is not None for row in rows)
    ]
    header = "".join(
        f"<th scope=\"col\">{_html_escape(label)}</th>"
        for _key, label in columns
    )
    body = []
    for index, row in enumerate(rows):
        cells = "".join(
            "<td>{}</td>".format(
                "–"
                if row.get(key) is None
                else f"{row[key]:.4g}"
            )
            for key, _label in columns
        )
        body.append(f"<tr><td>{index}</td>{cells}</tr>")
    return (
        "<table><thead><tr><th scope=\"col\">Epoch</th>"
        + header
        + "</tr></thead><tbody>"
        + "".join(body)
        + "</tbody></table>"
    )


def html_report(
    rows,
    registry=None,
    title: str = "SketchVisor run report",
    subtitle: str = "",
) -> str:
    """Render the epoch history as a self-contained HTML document."""
    metrics = [
        {
            "key": key,
            "label": label,
            "unit": unit,
            "kind": (
                "bar"
                if key in ("slo_breaches", "missing_hosts")
                else "line"
            ),
        }
        for key, label, unit in EPOCH_FIELDS
    ]
    data = {
        "metrics": metrics,
        "rows": [
            {
                key: (None if row.get(key) is None else row[key])
                for key, _label, _unit in EPOCH_FIELDS
            }
            for row in rows
        ],
    }
    summary = (
        metrics_summary(registry) if registry is not None else ""
    )
    # The JSON payload lives inside a <script> element: escape the
    # only sequence that could terminate it early.
    payload = json.dumps(data).replace("</", "<\\/")
    return (
        _HTML_TEMPLATE.replace("__TITLE__", _html_escape(title))
        .replace("__SUBTITLE__", _html_escape(subtitle))
        .replace("__SUMMARY__", _html_escape(summary))
        .replace("__TABLE__", _epoch_table(rows))
        .replace("__DATA__", payload)
    )


def write_html_report(
    path: str | Path,
    rows,
    registry=None,
    title: str = "SketchVisor run report",
    subtitle: str = "",
) -> Path:
    destination = Path(path)
    destination.write_text(
        html_report(rows, registry, title=title, subtitle=subtitle)
    )
    return destination
